"""Tests for the bounded verifier, equivalence helpers, and NVP executor."""

import pytest

from repro.api import OpResult, OpenFlags, op
from repro.errors import Errno
from repro.spec import (
    BoundedVerifier,
    NVPExecutor,
    SpecFilesystem,
    capture_state,
    check_refinement,
    outcomes_equivalent,
    states_equivalent,
)
from repro.spec.verifier import fresh_shadow


class TestEquivalence:
    def build(self, fs, seq):
        fs.mkdir("/d", opseq=seq())
        fd = fs.open("/d/f", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"content", opseq=seq())
        fs.close(fd, opseq=seq())
        fs.symlink("/d/f", "/s", opseq=seq())
        fs.link("/d/f", "/hard", opseq=seq())

    def test_identical_histories_equivalent(self, shadow, spec, seq):
        self.build(shadow, seq)
        seq.value = 10
        self.build(spec, seq)
        report = states_equivalent(capture_state(spec), capture_state(shadow))
        assert report.equivalent, str(report)

    def test_content_divergence_detected(self, shadow, spec, seq):
        self.build(shadow, seq)
        seq.value = 10
        self.build(spec, seq)
        fd = shadow.open("/d/f", opseq=seq())
        shadow.lseek(fd, 0, 0, opseq=seq())
        shadow.write(fd, b"tampere", opseq=seq())
        shadow.close(fd, opseq=seq())
        report = states_equivalent(capture_state(spec), capture_state(shadow))
        assert not report.equivalent
        assert any("content differs" in p or "mtime" in p for p in report.problems)

    def test_missing_path_detected(self, shadow, spec, seq):
        self.build(shadow, seq)
        seq.value = 10
        self.build(spec, seq)
        shadow.unlink("/s", opseq=99)
        report = states_equivalent(capture_state(spec), capture_state(shadow))
        assert any("only in A" in p for p in report.problems)

    def test_hardlink_partition_checked(self, shadow, spec, seq):
        # spec: /a and /b are the same file; shadow: distinct files.
        fd = spec.open("/a", OpenFlags.CREAT, opseq=1)
        spec.close(fd, opseq=2)
        spec.link("/a", "/b", opseq=3)
        fd = shadow.open("/a", OpenFlags.CREAT, opseq=1)
        shadow.close(fd, opseq=2)
        fd = shadow.open("/b", OpenFlags.CREAT, opseq=3)
        shadow.close(fd, opseq=3)
        report = states_equivalent(capture_state(spec), capture_state(shadow))
        assert not report.equivalent

    def test_outcome_equivalence_ino_bijection(self):
        ino_map = {}
        assert outcomes_equivalent(OpResult(value=None, ino=10), OpResult(value=None, ino=3), ino_map)
        assert outcomes_equivalent(OpResult(value=None, ino=10), OpResult(value=None, ino=3), ino_map)
        # A different reference ino may not map to an already-used target.
        assert not outcomes_equivalent(OpResult(value=None, ino=11), OpResult(value=None, ino=3), ino_map)

    def test_outcome_equivalence_errno(self):
        assert outcomes_equivalent(OpResult(errno=Errno.ENOENT), OpResult(errno=Errno.ENOENT))
        assert not outcomes_equivalent(OpResult(errno=Errno.ENOENT), OpResult(errno=Errno.EEXIST))
        assert not outcomes_equivalent(OpResult(errno=Errno.ENOENT), OpResult(value=5))


class TestBoundedVerifier:
    def test_depth_one_clean(self):
        result = BoundedVerifier(max_depth=1).run()
        assert result.ok
        assert result.sequences_checked == len(BoundedVerifier().alphabet)

    def test_check_refinement_single_sequence(self):
        problems = check_refinement(
            [
                op("mkdir", path="/d"),
                op("open", path="/f", flags=int(OpenFlags.CREAT)),
                op("write", fd=3, data=b"abc"),
                op("close", fd=3),
                op("rename", src="/f", dst="/d/f"),
                op("stat", path="/d/f"),
            ]
        )
        assert problems == []

    def test_verifier_catches_a_broken_shadow(self):
        class LyingShadow:
            """A 'shadow' that misreports mkdir as EEXIST."""

            def __getattr__(self, name):
                real = fresh_shadow()
                return getattr(real, name)

        def broken_factory():
            shadow = fresh_shadow()
            original = shadow.mkdir

            def lying_mkdir(path, perms=0o755, opseq=0):
                from repro.errors import FsError

                raise FsError(Errno.EEXIST, path)

            shadow.mkdir = lying_mkdir
            return shadow

        problems = check_refinement([op("mkdir", path="/d")], shadow_factory=broken_factory)
        assert problems


class TestNVP:
    def build_versions(self):
        return [SpecFilesystem(), fresh_shadow(), fresh_shadow()]

    def test_vote_agreement(self):
        nvp = NVPExecutor(self.build_versions())
        result = nvp.apply(op("mkdir", path="/d"), opseq=1)
        assert result.votes == 3 and not result.dissenting_versions
        assert nvp.stats.executions == 3

    def test_masks_minority_fault(self):
        versions = self.build_versions()
        broken = versions[2]
        original = broken.readdir
        broken.readdir = lambda path: ["phantom"]
        nvp = NVPExecutor(versions)
        nvp.apply(op("mkdir", path="/d"), opseq=1)
        result = nvp.apply(op("readdir", path="/"), opseq=2)
        assert result.winning.value == ["d"]
        assert result.dissenting_versions == [2]
        assert nvp.stats.disagreements == 1

    def test_crashed_member_is_retired(self):
        versions = self.build_versions()

        def crash(path, perms=0o755, opseq=0):
            raise RuntimeError("member crash")

        versions[1].mkdir = crash
        nvp = NVPExecutor(versions)
        nvp.apply(op("mkdir", path="/d"), opseq=1)
        assert nvp.faulted == {1}
        # Subsequent ops run on the two survivors only.
        nvp.apply(op("readdir", path="/"), opseq=2)
        assert nvp.stats.executions == 3 + 2

    def test_requires_two_versions(self):
        with pytest.raises(ValueError):
            NVPExecutor([SpecFilesystem()])

    def test_overhead_is_n_times(self):
        nvp = NVPExecutor(self.build_versions())
        for i in range(10):
            nvp.apply(op("mkdir", path=f"/d{i}"), opseq=i + 1)
        assert nvp.stats.executions == 30
