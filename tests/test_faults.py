"""Tests for the fault package: catalog, injector, crafted images."""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.blockdev.device import MemoryBlockDevice
from repro.errors import Errno, FsError, KernelBug, KernelWarning
from repro.faults import (
    BugSpec,
    Consequence,
    Determinism,
    Injector,
    make_alloc_accounting_bug,
    make_close_use_after_free_bug,
    make_dir_insert_crash_bug,
    make_freeze_bug,
    make_lockdep_warn_bug,
    make_truncate_warn_bug,
    standard_catalog,
)
from repro.faults.crafted import craft_deep_tree, craft_poisoned_name_image, craft_symlink_maze
from repro.fsck import Fsck
from repro.shadowfs.filesystem import ShadowFilesystem


class TestBugSpec:
    def test_nocrash_requires_payload(self):
        with pytest.raises(ValueError, match="payload"):
            BugSpec(
                bug_id="x",
                title="x",
                hook="mount",
                determinism=Determinism.DETERMINISTIC,
                consequence=Consequence.NOCRASH,
                trigger=lambda ctx: True,
            )

    def test_deterministic_cannot_be_probabilistic(self):
        with pytest.raises(ValueError):
            BugSpec(
                bug_id="x",
                title="x",
                hook="mount",
                determinism=Determinism.DETERMINISTIC,
                consequence=Consequence.CRASH,
                trigger=lambda ctx: True,
                probability=0.5,
            )

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            BugSpec(
                bug_id="x",
                title="x",
                hook="mount",
                determinism=Determinism.NONDETERMINISTIC,
                consequence=Consequence.CRASH,
                trigger=lambda ctx: True,
                probability=0.0,
            )

    def test_standard_catalog_well_formed(self):
        specs = standard_catalog()
        assert len(specs) >= 5
        assert len({s.bug_id for s in specs}) == len(specs)


class TestInjector:
    def test_crash_bug_fires_on_trigger(self, device, hooks, seq):
        injector = Injector(hooks)
        injector.arm(make_dir_insert_crash_bug(substring="bad"))
        fs = BaseFilesystem(device, hooks=hooks)
        injector.retarget(fs)
        fs.mkdir("/good", opseq=seq())
        with pytest.raises(KernelBug) as e:
            fs.mkdir("/bad-dir", opseq=seq())
        assert e.value.bug_id == "dirent-null-deref"
        assert injector.stats.total_fires == 1

    def test_nth_trigger_counts_invocations(self, device, hooks, seq):
        injector = Injector(hooks)
        injector.arm(make_close_use_after_free_bug(nth=2))
        fs = BaseFilesystem(device, hooks=hooks)
        injector.retarget(fs)
        fd1 = fs.open("/a", OpenFlags.CREAT, opseq=seq())
        fd2 = fs.open("/b", OpenFlags.CREAT, opseq=seq())
        fs.close(fd1, opseq=seq())  # close #1: fine
        with pytest.raises(KernelBug):
            fs.close(fd2, opseq=seq())  # close #2: UAF

    @pytest.mark.parametrize("warn_raises", (True, False))
    def test_warn_raises_or_counts_by_policy(self, warn_raises, seq):
        from tests.conftest import formatted_device

        hooks = HookPoints()
        injector = Injector(hooks, warn_raises=warn_raises)
        armed = injector.arm(make_truncate_warn_bug(threshold=10))
        fs = BaseFilesystem(formatted_device(), hooks=hooks)
        injector.retarget(fs)
        fd = fs.open("/f", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"z" * 1000, opseq=seq())
        fs.close(fd, opseq=seq())
        if warn_raises:
            with pytest.raises(KernelWarning):
                fs.truncate("/f", 0, opseq=seq())
        else:
            fs.truncate("/f", 0, opseq=seq())
            assert armed.warn_logs == 1

    def test_nondeterministic_probability_seeded(self, hooks):
        injector_a = Injector(HookPoints(), seed=1)
        injector_b = Injector(HookPoints(), seed=1)
        spec = make_lockdep_warn_bug(probability=0.5)
        armed_a = injector_a.arm(spec)
        armed_b = injector_b.arm(make_lockdep_warn_bug(probability=0.5))
        fires_a = fires_b = 0
        for _ in range(200):
            try:
                injector_a.hooks.fire("lock.acquire", ino=1)
            except KernelWarning:
                fires_a += 1
            try:
                injector_b.hooks.fire("lock.acquire", ino=1)
            except KernelWarning:
                fires_b += 1
        assert fires_a == fires_b  # same seed, same schedule
        assert 50 < fires_a < 150  # roughly p=0.5

    def test_max_fires_caps(self, hooks):
        injector = Injector(hooks)
        spec = make_dir_insert_crash_bug(substring="x")
        spec.max_fires = 1
        injector.arm(spec)
        with pytest.raises(KernelBug):
            hooks.fire("dir.insert", name="x1")
        hooks.fire("dir.insert", name="x2")  # capped: no raise

    def test_disarm(self, hooks):
        injector = Injector(hooks)
        injector.arm(make_dir_insert_crash_bug(substring="x"))
        injector.disarm("dirent-null-deref")
        hooks.fire("dir.insert", name="x1")  # no raise

    def test_duplicate_arm_rejected(self, hooks):
        injector = Injector(hooks)
        injector.arm(make_dir_insert_crash_bug())
        with pytest.raises(ValueError):
            injector.arm(make_dir_insert_crash_bug())

    def test_freeze_is_watchdog_bug(self, device, hooks, seq):
        injector = Injector(hooks)
        injector.arm(make_freeze_bug(substring="whatever"))
        fs = BaseFilesystem(device, hooks=hooks)
        injector.retarget(fs)
        fs.mkdir("/a", opseq=seq())
        with pytest.raises(KernelBug, match="watchdog"):
            fs.commit()

    def test_alloc_accounting_payload_corrupts(self, device, hooks, seq):
        injector = Injector(hooks)
        injector.arm(make_alloc_accounting_bug(nth=1))
        fs = BaseFilesystem(device, hooks=hooks)
        injector.retarget(fs)
        fs.mkdir("/a", opseq=seq())  # first allocation fires the payload
        from repro.errors import InvariantViolation

        with pytest.raises(InvariantViolation, match="free_blocks"):
            fs.commit()


class TestCraftedImages:
    def test_poisoned_image_passes_fsck_but_crashes_buggy_base(self, raw_device, seq):
        traps = craft_poisoned_name_image(raw_device, trigger_substring=" evil")
        assert Fsck(raw_device).run().clean  # bypasses FSCK (§2.1)
        hooks = HookPoints()
        injector = Injector(hooks)
        injector.arm(make_dir_insert_crash_bug(substring=" evil"))
        from repro.faults.catalog import make_lookup_crash_bug

        injector.arm(make_lookup_crash_bug(substring=" evil"))
        fs = BaseFilesystem(raw_device, hooks=hooks)
        injector.retarget(fs)
        with pytest.raises(KernelBug):
            fs.stat(traps[0])

    def test_poisoned_image_fine_on_shadow(self, raw_device):
        traps = craft_poisoned_name_image(raw_device, trigger_substring=" evil")
        shadow = ShadowFilesystem(raw_device)
        st = shadow.stat(traps[0])
        assert st.size > 0  # the shadow just... works

    def test_symlink_maze(self, raw_device):
        expectations = craft_symlink_maze(raw_device)
        assert Fsck(raw_device).run().clean
        shadow = ShadowFilesystem(raw_device)
        fd = shadow.open("/maze/hop0")
        assert shadow.read(fd, 100) == b"found it\n"
        shadow.close(fd)
        with pytest.raises(FsError) as e:
            shadow.stat("/maze/loopA")
        assert e.value.errno == Errno.ELOOP

    def test_deep_tree(self, raw_device):
        deepest = craft_deep_tree(raw_device, depth=24)
        assert Fsck(raw_device).run().clean
        shadow = ShadowFilesystem(raw_device)
        assert shadow.stat(deepest).nlink == 2
