"""Tests for the background integrity scrubber."""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.core.scrubber import Scrubber
from repro.ondisk.image import read_inode, write_inode
from repro.ondisk.layout import INODE_SIZE, ROOT_INO, DiskLayout
from repro.shadowfs.checks import CheckLevel
from tests.conftest import formatted_device


def populated():
    device = formatted_device()
    fs = BaseFilesystem(device)
    fs.mkdir("/d", opseq=1)
    fd = fs.open("/d/f", OpenFlags.CREAT, opseq=2)
    fs.write(fd, b"scrub me" * 500, opseq=3)
    fs.close(fd, opseq=4)
    fs.symlink("/d/f", "/s", opseq=5)
    fs.unmount()
    return device, DiskLayout(block_count=device.block_count)


class TestCleanImage:
    def test_full_pass_finds_nothing(self):
        device, layout = populated()
        scrubber = Scrubber(device, layout)
        assert scrubber.full_pass() == []
        assert scrubber.stats.inodes_scanned >= layout.inode_count - 1
        assert scrubber.stats.dir_blocks_scanned >= 1

    def test_incremental_steps_wrap(self):
        device, layout = populated()
        scrubber = Scrubber(device, layout)
        total_steps = 0
        while scrubber.stats.passes == 0:
            scrubber.step(64)
            total_steps += 1
        assert total_steps >= layout.inode_count // 64
        assert not scrubber.stats.findings

    def test_scrubber_never_writes(self):
        device, layout = populated()
        image = device.snapshot()
        Scrubber(device, layout, check_level=CheckLevel.FULL).full_pass()
        assert device.snapshot() == image


class TestCorruptionDetection:
    def test_checksum_corruption_found(self):
        device, layout = populated()
        block, offset = layout.inode_location(ROOT_INO)
        raw = bytearray(device.read_block(block))
        raw[offset + 8] ^= 0x01
        device.write_block(block, bytes(raw))
        findings = Scrubber(device, layout).full_pass()
        assert any("unparseable" in str(f) for f in findings)

    def test_bitmap_skew_found(self):
        device, layout = populated()
        from repro.ondisk.bitmap import Bitmap

        bitmap_block = layout.inode_bitmap_block(0)
        bitmap = Bitmap.from_block(layout.inodes_per_group, device.read_block(bitmap_block))
        bitmap.clear(1)  # the root inode's bit
        device.write_block(bitmap_block, bitmap.to_block())
        findings = Scrubber(device, layout).full_pass()
        assert any("free in the bitmap" in str(f) for f in findings)

    def test_referenced_free_block_found_at_full_level(self):
        device, layout = populated()
        root = read_inode(device, layout, ROOT_INO)
        root.direct[1] = layout.data_start(2) + 9  # unallocated block
        write_inode(device, layout, ROOT_INO, root)
        findings = Scrubber(device, layout, check_level=CheckLevel.FULL).full_pass()
        assert any("free in the block bitmap" in str(f) for f in findings)

    def test_dir_block_damage_found(self):
        device, layout = populated()
        root = read_inode(device, layout, ROOT_INO)
        raw = bytearray(device.read_block(root.direct[0]))
        raw[4:6] = (2).to_bytes(2, "little")  # corrupt rec_len
        device.write_block(root.direct[0], bytes(raw))
        findings = Scrubber(device, layout).full_pass()
        assert any("malformed" in str(f) for f in findings)

    def test_stale_allocated_bit_found(self):
        device, layout = populated()
        from repro.ondisk.bitmap import Bitmap

        bitmap_block = layout.inode_bitmap_block(1)
        bitmap = Bitmap.from_block(layout.inodes_per_group, device.read_block(bitmap_block))
        bitmap.set(40)  # claims an inode whose slot is free
        device.write_block(bitmap_block, bitmap.to_block())
        findings = Scrubber(device, layout).full_pass()
        assert any("slot is free" in str(f) for f in findings)


class TestScrubThenRecover:
    def test_scrub_finding_triggers_early_recovery(self, hooks):
        """The deployment pattern: scrub in the background, raise on a
        finding, let RAE recover before any application trips on it."""
        from repro.core.supervisor import RAEConfig, RAEFilesystem
        from repro.errors import InvariantViolation

        device = formatted_device()
        fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        fs.mkdir("/d")
        fd = fs.open("/d/f", OpenFlags.CREAT)
        fs.fsync(fd)
        fs.close(fd)

        # Corrupt a committed inode on disk (the journal still has it).
        layout = DiskLayout(block_count=device.block_count)
        ino = fs.stat("/d/f").ino
        block, offset = layout.inode_location(ino)
        raw = bytearray(device.read_block(block))
        raw[offset + 8] ^= 0x01
        device.write_block(block, bytes(raw))

        scrubber = Scrubber(device, layout)
        findings = scrubber.full_pass()
        assert findings
        # Engage RAE proactively: recovery's journal replay repairs it.
        detected = fs.detector.classify(InvariantViolation(str(findings[0]), check="scrub"))
        fs._recover(detected, inflight=None)
        assert Scrubber(device, layout).full_pass() == []
        assert fs.stat("/d/f").ino == ino
