"""Tests for repro.ondisk.superblock."""

import pytest

from repro.ondisk.layout import BLOCK_SIZE, DiskLayout
from repro.ondisk.superblock import (
    STATE_CLEAN,
    STATE_DIRTY,
    SUPERBLOCK_MAGIC,
    Superblock,
)


def make(**overrides) -> Superblock:
    fields = dict(
        block_size=BLOCK_SIZE,
        block_count=4096,
        blocks_per_group=1024,
        inodes_per_group=256,
        journal_blocks=64,
        free_blocks=3000,
        free_inodes=900,
        root_ino=2,
    )
    fields.update(overrides)
    return Superblock(**fields)


def test_pack_unpack_roundtrip():
    sb = make(mount_state=STATE_DIRTY, mount_count=7, write_generation=99)
    restored = Superblock.unpack(sb.pack())
    assert restored == sb
    assert len(sb.pack()) == BLOCK_SIZE


def test_bad_magic_rejected():
    raw = bytearray(make().pack())
    raw[0] ^= 0xFF
    with pytest.raises(ValueError, match="magic|checksum"):
        Superblock.unpack(bytes(raw))


def test_checksum_detects_field_corruption():
    raw = bytearray(make().pack())
    raw[20] ^= 0x01  # somewhere in the middle of the fields
    with pytest.raises(ValueError, match="checksum"):
        Superblock.unpack(bytes(raw))


def test_verify_false_skips_validation():
    raw = bytearray(make().pack())
    raw[20] ^= 0x01
    Superblock.unpack(bytes(raw), verify=False)  # no raise


def test_short_block_rejected():
    with pytest.raises(ValueError):
        Superblock.unpack(b"tiny")


def test_layout_reconstruction():
    sb = make()
    layout = sb.layout()
    assert isinstance(layout, DiskLayout)
    assert layout.block_count == 4096
    assert layout.journal_blocks == 64


def test_group_count_derived():
    assert make(block_count=2500).group_count == 3


def test_validate_against_catches_mismatches():
    sb = make(free_blocks=999999)
    layout = DiskLayout(block_count=4096, journal_blocks=64)
    problems = sb.validate_against(layout)
    assert any("free_blocks" in p for p in problems)

    sb2 = make(root_ino=0)
    assert any("root_ino" in p for p in sb2.validate_against(layout))

    assert make().validate_against(layout) == []
    assert any(
        "journal_blocks" in p
        for p in make().validate_against(DiskLayout(block_count=4096, journal_blocks=128))
    )


def test_bad_mount_state_rejected():
    sb = make()
    sb.mount_state = 42
    with pytest.raises(ValueError, match="mount_state"):
        Superblock.unpack(sb.pack())


def test_magic_value_stable():
    assert SUPERBLOCK_MAGIC == 0x5AD0_F54E
    assert make().mount_state == STATE_CLEAN
