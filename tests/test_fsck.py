"""Tests for fsck: detection of each corruption class, and repair."""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.fsck import Fsck, Severity, repair_image
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.directory import DirBlock
from repro.ondisk.image import read_inode, read_superblock, write_inode
from repro.ondisk.inode import FileType
from repro.ondisk.layout import BLOCK_SIZE, ROOT_INO, DiskLayout
from tests.conftest import formatted_device


def layout_of(device) -> DiskLayout:
    return read_superblock(device).layout()


def populated(seq):
    device = formatted_device()
    fs = BaseFilesystem(device)
    fs.mkdir("/docs", opseq=seq())
    fd = fs.open("/docs/a.txt", OpenFlags.CREAT, opseq=seq())
    fs.write(fd, b"text" * 3000, opseq=seq())
    fs.close(fd, opseq=seq())
    fs.symlink("/docs/a.txt", "/link", opseq=seq())
    fs.link("/docs/a.txt", "/docs/b.txt", opseq=seq())
    fs.unmount()
    return device


def codes(report):
    return {f.code for f in report.findings}


class TestDetection:
    def test_clean_image(self, seq):
        device = populated(seq)
        report = Fsck(device).run()
        assert report.clean and not report.warnings
        assert report.inodes_scanned == 4  # root, docs, a.txt, link

    def test_garbage_superblock(self):
        device = formatted_device()
        device.write_block(0, b"\xde\xad" * 2048)
        report = Fsck(device).run()
        assert not report.clean and "sb-parse" in codes(report)

    def test_wrong_free_counts(self, seq):
        device = populated(seq)
        sb = read_superblock(device)
        sb.free_blocks -= 3
        device.write_block(0, sb.pack())
        report = Fsck(device).run()
        assert "sb-counts" in codes(report)

    def test_corrupt_inode_checksum(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        block, offset = layout.inode_location(ROOT_INO)
        raw = bytearray(device.read_block(block))
        raw[offset + 4] ^= 0x01
        device.write_block(block, bytes(raw))
        report = Fsck(device).run()
        assert "inode-parse" in codes(report)

    def test_inode_in_use_but_free_in_bitmap(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        bitmap_block = layout.inode_bitmap_block(0)
        bitmap = Bitmap.from_block(layout.inodes_per_group, device.read_block(bitmap_block))
        bitmap.clear(2)  # ino 3, the first allocated beyond root
        device.write_block(bitmap_block, bitmap.to_block())
        report = Fsck(device).run()
        assert "inode-bitmap" in codes(report) or "sb-counts" in codes(report)

    def test_block_double_reference(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        # Point the symlink inode's block at the root directory's block.
        root = read_inode(device, layout, ROOT_INO)
        for ino in range(1, layout.inode_count + 1):
            inode = read_inode(device, layout, ino, verify=False)
            if inode.is_symlink:
                inode.direct[0] = root.direct[0]
                write_inode(device, layout, ino, inode)
                break
        report = Fsck(device).run()
        assert "block-shared" in codes(report)

    def test_dangling_dirent(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        root = read_inode(device, layout, ROOT_INO)
        block = root.direct[0]
        dir_block = DirBlock(device.read_block(block))
        dir_block.insert(900, "phantom", FileType.REGULAR)
        device.write_block(block, dir_block.to_block())
        report = Fsck(device).run()
        assert "dir-ref" in codes(report)

    def test_wrong_nlink(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        root = read_inode(device, layout, ROOT_INO)
        root.nlink = 9
        write_inode(device, layout, ROOT_INO, root)
        report = Fsck(device).run()
        assert "nlink" in codes(report)

    def test_leaked_block_is_warning(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        bitmap_block = layout.block_bitmap_block(1)
        bitmap = Bitmap.from_block(layout.blocks_per_group, device.read_block(bitmap_block))
        free_bit = bitmap.find_free()
        bitmap.set(free_bit)
        device.write_block(bitmap_block, bitmap.to_block())
        sb = read_superblock(device)
        sb.free_blocks -= 1
        device.write_block(0, sb.pack())
        report = Fsck(device).run()
        assert report.clean  # leak is WARN, not ERROR
        assert "bitmap-leak" in codes(report)

    def test_lost_block_is_error(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        # Clear the root directory block's bit.
        root = read_inode(device, layout, ROOT_INO)
        block = root.direct[0]
        group = layout.group_of_block(block)
        bitmap_block = layout.block_bitmap_block(group)
        bitmap = Bitmap.from_block(layout.blocks_per_group, device.read_block(bitmap_block))
        bitmap.clear(block - layout.group_start(group))
        device.write_block(bitmap_block, bitmap.to_block())
        sb = read_superblock(device)
        sb.free_blocks += 1
        device.write_block(0, sb.pack())
        report = Fsck(device).run()
        assert "bitmap-lost" in codes(report)

    def test_dirty_image_checked_through_journal(self, seq):
        device = formatted_device(track_durability=True)
        device.flush()
        fs = BaseFilesystem(device)
        fs.mkdir("/x", opseq=seq())
        fs.commit()
        device.crash()
        report = Fsck(device).run()
        assert report.clean
        assert "sb-dirty" in codes(report)


class TestRepair:
    def test_repair_releases_orphans(self, seq):
        device = formatted_device()
        fs = BaseFilesystem(device)
        fd = fs.open("/doomed", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"x" * 9000, opseq=seq())
        fs.unlink("/doomed", opseq=seq())
        fs.unmount()  # fd never closed: orphan persists
        assert any(f.code == "orphan" for f in Fsck(device).run().warnings)
        actions = repair_image(device)
        assert any("orphan" in a for a in actions)
        report = Fsck(device).run()
        assert report.clean and not report.warnings

    def test_repair_fixes_nlink(self, seq):
        device = populated(seq)
        layout = layout_of(device)
        root = read_inode(device, layout, ROOT_INO)
        root.nlink = 9
        write_inode(device, layout, ROOT_INO, root)
        repair_image(device)
        assert Fsck(device).run().clean
        assert read_inode(device, layout, ROOT_INO).nlink == 3

    def test_repair_rebuilds_counts(self, seq):
        device = populated(seq)
        sb = read_superblock(device)
        sb.free_blocks += 17
        device.write_block(0, sb.pack())
        repair_image(device)
        assert Fsck(device).run().clean

    def test_repair_replays_dirty_journal(self, seq):
        device = formatted_device(track_durability=True)
        device.flush()
        fs = BaseFilesystem(device)
        fs.mkdir("/x", opseq=seq())
        fs.commit()
        device.crash()
        actions = repair_image(device)
        assert any("journal" in a for a in actions)
        report = Fsck(device).run()
        assert report.clean
        fs2 = BaseFilesystem(device)
        assert fs2.readdir("/") == ["x"]
        fs2.unmount()

    def test_repaired_image_mounts_everywhere(self, seq):
        device = populated(seq)
        repair_image(device)
        from repro.shadowfs.filesystem import ShadowFilesystem

        shadow = ShadowFilesystem(device)
        assert shadow.readdir("/docs") == ["a.txt", "b.txt"]
        fs = BaseFilesystem(device)
        assert fs.readdir("/docs") == ["a.txt", "b.txt"]
        fs.unmount()
