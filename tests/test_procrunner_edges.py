"""Edge cases for the separate-process shadow runner."""

import pytest

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.blockdev.device import FileBlockDevice
from repro.core.oplog import OpLog
from repro.core.procrunner import open_image_readonly, run_shadow_process
from repro.errors import RecoveryFailure
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.checks import CheckLevel


@pytest.fixture
def image(tmp_path):
    path = str(tmp_path / "proc.img")
    device = FileBlockDevice(path, block_count=4096)
    mkfs(device)
    device.flush()
    device.close()
    return path


def build_log(path):
    device = FileBlockDevice(path, block_count=4096)
    base = BaseFilesystem(device)
    log = OpLog()
    operations = [
        op("mkdir", path="/p"),
        op("open", path="/p/f", flags=int(OpenFlags.CREAT)),
        op("write", fd=3, data=b"process-mode data"),
    ]
    for index, operation in enumerate(operations):
        log.record(index + 1, operation, operation.apply(base, opseq=index + 1))
    # Leave the window un-committed: the image stays at S0 for the child,
    # except the mount marked it dirty — flush so the child sees that.
    device.flush()
    device.close()
    return log


def test_open_image_readonly_sizes_from_superblock(image):
    device = open_image_readonly(image)
    assert device.block_count == 4096
    assert device.readonly
    device.close()


def test_missing_image_is_recovery_failure():
    with pytest.raises(RecoveryFailure, match="does not exist"):
        run_shadow_process("/no/such/image.img", [], {}, None)


def test_child_runs_constrained_and_autonomous(image):
    log = build_log(image)
    update, report = run_shadow_process(
        image, log.entries, {}, inflight=(9, op("mkdir", path="/p/sub")), check_level=CheckLevel.FULL
    )
    assert report.constrained_ops == 3
    assert report.autonomous_ops == 1
    assert update.inflight_result.ok
    assert update.metadata_blocks and update.data_pages


def test_child_failure_is_contained(image):
    log = build_log(image)
    log.entries[2].outcome.value = 1  # falsified write length
    with pytest.raises(RecoveryFailure, match="shadow process failed"):
        run_shadow_process(image, log.entries, {}, None, strict=True)


def test_child_nonstrict_reports_discrepancies(image):
    log = build_log(image)
    log.entries[2].outcome.value = 1
    update, report = run_shadow_process(image, log.entries, {}, None, strict=False)
    assert len(report.discrepancies) == 1
    assert update.metadata_blocks
