"""Tests for repro.blockdev.faults."""

import pytest

from repro.blockdev.device import MemoryBlockDevice
from repro.blockdev.faults import DeviceFaultPlan, FaultyBlockDevice
from repro.errors import DeviceError

BS = 4096


def make(plan: DeviceFaultPlan) -> FaultyBlockDevice:
    inner = MemoryBlockDevice(block_count=8)
    inner.write_block(2, b"\xaa" * BS)
    return FaultyBlockDevice(inner, plan)


def test_transient_read_error_then_recovers():
    dev = make(DeviceFaultPlan().add_read_error(block=2, times=2))
    for _ in range(2):
        with pytest.raises(DeviceError) as excinfo:
            dev.read_block(2)
        assert excinfo.value.transient
    assert dev.read_block(2) == b"\xaa" * BS
    assert dev.faults_fired == 2


def test_read_error_after_window():
    dev = make(DeviceFaultPlan().add_read_error(block=2, times=1, after=1))
    assert dev.read_block(2) == b"\xaa" * BS  # access 0 fine
    with pytest.raises(DeviceError):
        dev.read_block(2)  # access 1 fails
    assert dev.read_block(2) == b"\xaa" * BS  # access 2 fine


def test_other_blocks_unaffected():
    dev = make(DeviceFaultPlan().add_read_error(block=2, times=99))
    assert dev.read_block(3) == b"\x00" * BS


def test_nonsticky_flip_corrupts_wire_only():
    dev = make(DeviceFaultPlan().add_flip(block=2, offset=0, xor_byte=0xFF))
    assert dev.read_block(2)[0] == 0x55  # 0xAA ^ 0xFF
    # Underlying storage intact: remove the plan and read clean.
    clean = FaultyBlockDevice(dev, DeviceFaultPlan())
    # reading through the same faulty device still corrupts; check inner
    assert dev._inner.read_block(2)[0] == 0xAA


def test_sticky_flip_damages_storage():
    dev = make(DeviceFaultPlan().add_flip(block=2, offset=1, xor_byte=0x0F, sticky=True))
    first = dev.read_block(2)
    assert first[1] == 0xAA ^ 0x0F
    # Damage persisted: even the inner device now sees it.
    assert dev._inner.read_block(2)[1] == 0xAA ^ 0x0F
    assert dev.faults_fired == 1
    # Subsequent reads see the same damage but do not re-fire.
    assert dev.read_block(2)[1] == 0xAA ^ 0x0F
    assert dev.faults_fired == 1


def test_writes_pass_through():
    dev = make(DeviceFaultPlan())
    dev.write_block(4, b"\x11" * BS)
    assert dev.read_block(4) == b"\x11" * BS
    dev.flush()
