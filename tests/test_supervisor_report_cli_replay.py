"""Tests for the supervisor report and the CLI replay command."""

import io

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug
from repro.tools import main as tools_main
from tests.conftest import formatted_device


def test_supervisor_report_mentions_recoveries(hooks):
    def bug(point, ctx):
        if "boom" in str(ctx.get("name", "")):
            raise KernelBug("report test bug")

    hooks.register("dir.insert", bug)
    fs = RAEFilesystem(formatted_device(), RAEConfig(), hooks=hooks)
    fs.mkdir("/fine")
    fs.mkdir("/boom")
    text = fs.report()
    assert "1 recoveries" in text or "recoveries" in text
    assert "report test bug" in text
    assert "detections by kind: bug=1" in text


def test_supervisor_report_clean_run():
    fs = RAEFilesystem(formatted_device(), RAEConfig())
    fs.mkdir("/a")
    text = fs.report()
    assert "0 recoveries" in text


def test_cli_replay_workflow(tmp_path, capsys, seq):
    """Full §4.3 loop through the CLI: record on a base, write the trace
    and image, replay via `repro.tools replay`, expect agreement; then
    tamper and expect a reported discrepancy."""
    from repro.api import op
    from repro.basefs.filesystem import BaseFilesystem
    from repro.blockdev.device import FileBlockDevice
    from repro.core.oplog import OpLog
    from repro.workloads.trace import dump_trace

    image = str(tmp_path / "w.img")
    tools_main(["mkfs", image, "--blocks", "4096"])
    device = FileBlockDevice(image, block_count=4096)
    base = BaseFilesystem(device)
    log = OpLog()
    operations = [
        op("mkdir", path="/w"),
        op("open", path="/w/f", flags=int(OpenFlags.CREAT)),
        op("write", fd=3, data=b"traceable"),
        op("close", fd=3),
    ]
    for operation in operations:
        s = seq()
        log.record(s, operation, operation.apply(base, opseq=s))
    # The trace replays against the PRE-window image: unmount a clean
    # copy is wrong here — instead, keep the image at mkfs state by not
    # committing, and just close the device.
    device.close()

    trace_path = tmp_path / "window.jsonl"
    with open(trace_path, "w") as stream:
        dump_trace(log.entries, stream)

    assert tools_main(["replay", image, str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "no discrepancies" in out

    # Tamper with the recorded write length and replay again.
    lines = trace_path.read_text().splitlines()
    lines[2] = lines[2].replace('"value": 9', '"value": 5')
    trace_path.write_text("\n".join(lines) + "\n")
    assert tools_main(["replay", image, str(trace_path)]) == 1
    out = capsys.readouterr().out
    assert "DISCREPANCY" in out
