"""Tests for repro.obs.prof: self-time stack math, supervisor
attachment, reboot re-wrapping, detach, and the prof collector."""

import pytest

from repro.api import OpenFlags
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.obs import Registry
from repro.obs.prof import LAYERS, LayerProfiler
from tests.conftest import formatted_device
from tests.test_core_supervisor import crash_on_name
from tests.test_obs import FakeClock


def _make_profiler(step: float = 1.0) -> tuple[LayerProfiler, FakeClock]:
    clock = FakeClock(step=step)
    return LayerProfiler(Registry(clock=clock)), clock


class _Leaf:
    """A wrapped callee that costs nothing on the fake clock."""

    def work(self):
        return "leaf"


class _Parent:
    def __init__(self, leaf: _Leaf, calls: int = 1):
        self.leaf = leaf
        self.calls = calls

    def work(self):
        for _ in range(self.calls):
            self.leaf.work()
        return "parent"


class TestSelfTimeStack:
    """Bit-exact attribution math on a fake clock (1 unit per read).

    Every wrapper reads the clock once at push and once at pop, so each
    wrapped frame's *own* bracket contributes exactly the clock units
    consumed while it was the running (top) frame.
    """

    def test_parent_not_charged_for_child(self):
        prof, _ = _make_profiler()
        leaf = _Leaf()
        parent = _Parent(leaf)
        prof._wrap(prof._wrapped, parent, "work", "api")
        prof._wrap(prof._wrapped, leaf, "work", "device")

        assert parent.work() == "parent"
        # push parent (t1) -> push leaf charges api t2-t1=1 -> pop leaf
        # charges device t3-t2=1, resets parent's mark -> pop parent
        # charges api t4-t3=1.
        assert prof.self_seconds["api"] == pytest.approx(2.0)
        assert prof.self_seconds["device"] == pytest.approx(1.0)
        assert prof.ops == 1
        assert prof.calls["api"] == 1 and prof.calls["device"] == 1

    def test_sequential_children_reset_the_parent_mark(self):
        prof, _ = _make_profiler()
        leaf = _Leaf()
        parent = _Parent(leaf, calls=2)
        prof._wrap(prof._wrapped, parent, "work", "api")
        prof._wrap(prof._wrapped, leaf, "work", "device")

        parent.work()
        # Each child costs the parent one push-charge; the pop resets the
        # parent's mark so nothing is double-counted between children.
        assert prof.self_seconds["api"] == pytest.approx(3.0)
        assert prof.self_seconds["device"] == pytest.approx(2.0)
        assert prof.ops == 1

    def test_exception_unwinding_still_charges_and_flushes(self):
        prof, _ = _make_profiler()

        class _Boom:
            def work(self):
                raise KeyError("boom")

        boom = _Boom()
        prof._wrap(prof._wrapped, boom, "work", "vfs")
        with pytest.raises(KeyError):
            boom.work()
        assert prof.self_seconds["vfs"] == pytest.approx(1.0)
        assert prof.ops == 1
        assert prof._stack == []

    def test_per_layer_histograms_record_per_op_self_time(self):
        prof, _ = _make_profiler()
        leaf = _Leaf()
        prof._wrap(prof._wrapped, leaf, "work", "blkmq")
        leaf.work()
        leaf.work()
        summary = prof.layer_summary()
        assert summary["blkmq"]["p50"] == pytest.approx(1.0)
        assert summary["blkmq"]["share"] == pytest.approx(1.0)
        # Untouched layers are present with a deterministic zero shape.
        assert summary["journal"] == {
            "self_seconds": 0.0, "calls": 0, "share": 0.0,
            "p50": None, "p95": None, "p99": None,
        }


class TestSupervisorAttachment:
    def _workload(self, fs):
        fs.mkdir("/d")
        fd = fs.open("/d/f", flags=OpenFlags.CREAT)
        fs.write(fd, b"x" * 4096)
        fs.fsync(fd)
        fs.read(fd, 16)
        fs.close(fd)
        fs.stat("/d/f")

    def test_default_config_attaches_and_attributes(self):
        fs = RAEFilesystem(formatted_device(4096))
        assert fs.profiler is not None
        self._workload(fs)
        summary = fs.profiler.layer_summary()
        assert set(summary) == set(LAYERS)
        assert fs.profiler.ops > 0
        assert summary["api"]["calls"] > 0
        assert summary["vfs"]["self_seconds"] > 0
        assert summary["device"]["calls"] > 0  # fsync reached the device
        assert sum(e["share"] for e in summary.values()) == pytest.approx(1.0)

    def test_prof_collector_lands_in_registry_snapshot(self):
        fs = RAEFilesystem(formatted_device(4096))
        fs.mkdir("/a")
        collected = fs.obs.snapshot()["collected"]
        assert collected["prof.ops"] >= 1
        assert collected["prof.vfs.calls"] >= 1
        assert "prof.device.self_seconds" in collected

    def test_profile_off_means_no_wrapping(self):
        fs = RAEFilesystem(formatted_device(4096), RAEConfig(profile=False))
        assert fs.profiler is None
        assert "_call" not in fs.__dict__
        assert "mkdir" not in fs.base.__dict__
        assert "prof.ops" not in fs.obs.snapshot()["collected"]

    def test_metrics_off_implies_profile_off(self):
        fs = RAEFilesystem(formatted_device(4096), RAEConfig(metrics=False))
        assert fs.profiler is None

    def test_detach_restores_methods_and_stops_accumulating(self):
        fs = RAEFilesystem(formatted_device(4096))
        fs.mkdir("/a")
        ops_before = fs.profiler.ops
        fs.profiler.detach()
        assert "_call" not in fs.__dict__
        assert "mkdir" not in fs.base.__dict__
        assert "read_block" not in fs.device.__dict__
        fs.mkdir("/b")
        assert fs.profiler.ops == ops_before
        assert fs.readdir("/") == ["a", "b"]

    def test_double_attach_rejected(self):
        fs = RAEFilesystem(formatted_device(4096))
        with pytest.raises(ValueError):
            fs.profiler.attach(fs)

    def test_contained_reboot_rewraps_the_new_base(self):
        from repro.basefs.hooks import HookPoints

        hooks = HookPoints()
        crash_on_name(hooks, "evil")
        fs = RAEFilesystem(formatted_device(4096), hooks=hooks)
        fs.mkdir("/ok")
        fs.mkdir("/evil-dir")  # injected KernelBug -> contained reboot
        assert fs.recovery_count == 1
        vfs_calls = fs.profiler.calls["vfs"]
        fs.mkdir("/after")  # must hit the *new* base's wrappers
        assert fs.profiler.calls["vfs"] > vfs_calls
        assert "mkdir" in fs.base.__dict__  # new base is wrapped in place

    def test_attribution_is_observationally_free(self):
        """profile on vs off: identical op streams end in byte-identical
        images (the wrappers only measure, never change behavior)."""
        from repro.basefs.hooks import HookPoints
        from repro.workloads import WorkloadGenerator, varmail_profile

        images = []
        for profile in (True, False):
            device = formatted_device(4096)
            hooks = HookPoints()
            crash_on_name(hooks, "evil")
            fs = RAEFilesystem(device, RAEConfig(profile=profile), hooks=hooks)
            for index, operation in enumerate(
                WorkloadGenerator(varmail_profile(), seed=5).ops(40)
            ):
                operation.apply(fs, opseq=index + 1)
            fs.mkdir("/evil-dir")  # recovery under both arms
            assert fs.recovery_count == 1
            fs.unmount()
            images.append(device.snapshot())
        assert images[0] == images[1]


class TestDeterministicDeviceAttribution:
    def test_injected_device_cost_lands_in_the_device_layer(self):
        """A slowdown injected into the raw device (on the fake clock)
        is attributed to the device layer, not smeared over callers."""
        clock = FakeClock(step=0.0)  # only explicit ticks advance time
        device = formatted_device(4096)
        real_read = device.read_block

        def slow_read(block_no):
            clock.now += 7.0  # the seeded synthetic regression
            return real_read(block_no)

        device.read_block = slow_read
        fs = RAEFilesystem(device, obs=Registry(clock=clock))
        fd = fs.open("/f", flags=OpenFlags.CREAT)
        fs.write(fd, b"y" * 4096)
        fs.fsync(fd)
        fs.read(fd, 4096)
        fs.close(fd)
        summary = fs.profiler.layer_summary()
        reads = [r for r in (summary["device"],) if r["calls"]]
        assert reads, "device layer never called"
        # With a zero-step clock, *all* elapsed time is the injected
        # device cost — every unit must be charged to the device layer.
        assert summary["device"]["self_seconds"] > 0
        for layer in LAYERS:
            if layer != "device":
                assert summary[layer]["self_seconds"] == pytest.approx(0.0)
