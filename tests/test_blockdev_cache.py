"""Tests for repro.blockdev.cache (buffer cache)."""

import pytest

from repro.blockdev.cache import BufferCache
from repro.blockdev.device import CountingDevice, MemoryBlockDevice

BS = 4096


def make(capacity=4):
    counting = CountingDevice(MemoryBlockDevice(block_count=64))
    return BufferCache(counting, capacity=capacity), counting


def test_read_caches():
    cache, dev = make()
    cache.read(3)
    cache.read(3)
    assert dev.reads == 1
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_write_is_buffered():
    cache, dev = make()
    cache.write(3, b"d" * BS)
    assert dev.writes == 0
    assert cache.is_dirty(3)
    assert cache.read(3) == b"d" * BS
    assert dev.reads == 0  # served from cache


def test_writeback_single():
    cache, dev = make()
    cache.write(3, b"d" * BS)
    assert cache.writeback(3)
    assert dev.writes == 1
    assert not cache.is_dirty(3)
    assert not cache.writeback(3)  # already clean


def test_sync_flushes_all_dirty():
    cache, dev = make(capacity=10)
    for block in range(5):
        cache.write(block, bytes([block]) * BS)
    count = cache.sync()
    assert count == 5
    assert dev.writes == 5 and dev.flushes == 1
    assert not cache.dirty_blocks


def test_lru_evicts_clean_only():
    cache, dev = make(capacity=2)
    cache.write(0, b"a" * BS)  # dirty, pinned by dirtiness
    cache.read(1)
    cache.read(2)  # evicts block 1 (clean LRU), not dirty 0
    assert cache.peek(0) is not None
    assert cache.peek(1) is None
    assert cache.stats.evictions == 1


def test_all_dirty_forces_writeback_eviction():
    cache, dev = make(capacity=2)
    cache.write(0, b"a" * BS)
    cache.write(1, b"b" * BS)
    cache.write(2, b"c" * BS)  # over capacity, everything dirty
    assert dev.writes == 1  # LRU dirty block force-written
    assert cache.stats.writebacks == 1


def test_invalidate_discards_dirty():
    cache, dev = make()
    cache.write(3, b"d" * BS)
    cache.invalidate(3)
    assert not cache.is_dirty(3)
    assert cache.read(3) == b"\x00" * BS  # from device, not the lost write


def test_drop_all():
    cache, _ = make()
    cache.write(1, b"x" * BS)
    cache.read(2)
    cache.drop_all()
    assert len(cache) == 0
    assert not cache.dirty_blocks


def test_writeback_some_limits():
    cache, dev = make(capacity=10)
    for block in range(6):
        cache.write(block, b"w" * BS)
    assert cache.writeback_some(2) == 2
    assert len(cache.dirty_blocks) == 4


def test_rejects_bad_write_size():
    cache, _ = make()
    with pytest.raises(ValueError):
        cache.write(0, b"small")


def test_rejects_bad_capacity():
    with pytest.raises(ValueError):
        BufferCache(MemoryBlockDevice(block_count=4), capacity=0)
