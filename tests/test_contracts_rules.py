"""The four contract rules on seeded synthetic trees: each acceptance
violation is flagged, the clean twin passes, suppression works, and the
contract-table rules stay silent on trees that declare no contracts."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import analyze_tree
from repro.analysis.rules import (
    ApiParityRule,
    EffectContractRule,
    ErrnoParityRule,
    StateProtocolRule,
)

#: A minimal declared-contract module for fixture trees.
CONTRACTS = """
    OP_CONTRACTS = {
        "unlink": {
            "errnos": ("ENOENT",),
            "shadow_extra": (),
            "effects": ("cache-dirty", "device-write"),
            "shadow_effects": (),
            "read_only": False,
        },
        "stat": {
            "errnos": ("ENOENT",),
            "shadow_extra": ("EFBIG",),
            "effects": (),
            "shadow_effects": (),
            "read_only": True,
        },
    }
"""


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def rule_ids(report) -> list[str]:
    return [finding.rule_id for finding in report.findings]


# ---------------------------------------------------------------------------
# ERRNO-PARITY


class TestErrnoParity:
    def test_shadow_raising_undeclared_errno_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "shadowfs/filesystem.py": """
                class ShadowFilesystem(FilesystemAPI):
                    def unlink(self, path, opseq=0):
                        self._deny(path)

                    def _deny(self, path):
                        raise FsError(Errno.EPERM, path)
            """,
        })
        report = analyze_tree(root, rules=[ErrnoParityRule()])
        assert rule_ids(report) == ["ERRNO-PARITY"]
        finding = report.findings[0]
        assert "Errno.EPERM" in finding.message
        assert finding.path == "shadowfs/filesystem.py"
        assert finding.line == 3  # anchored at the op's def

    def test_shadow_extra_is_sanctioned_for_shadow_but_not_base(self, tmp_path):
        files = {
            "spec/contracts.py": CONTRACTS,
            "shadowfs/filesystem.py": """
                class ShadowFilesystem(FilesystemAPI):
                    def stat(self, path):
                        raise FsError(Errno.EFBIG, path)
            """,
        }
        assert rule_ids(analyze_tree(write_tree(tmp_path / "shadow", files), rules=[ErrnoParityRule()])) == []

        base_files = {
            "spec/contracts.py": CONTRACTS,
            "basefs/filesystem.py": """
                class BaseFilesystem(FilesystemAPI):
                    def stat(self, path):
                        raise FsError(Errno.EFBIG, path)
            """,
        }
        report = analyze_tree(write_tree(tmp_path / "base", base_files), rules=[ErrnoParityRule()])
        assert rule_ids(report) == ["ERRNO-PARITY"]
        assert "Errno.EFBIG" in report.findings[0].message

    def test_masked_callee_errno_is_not_charged_to_the_op(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "basefs/filesystem.py": """
                class BaseFilesystem(FilesystemAPI):
                    def unlink(self, path, opseq=0):
                        try:
                            self._probe(path)
                        except FsError:
                            pass
                        raise FsError(Errno.ENOENT, path)

                    def _probe(self, path):
                        raise FsError(Errno.EIO, path)
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[ErrnoParityRule()])) == []

    def test_dynamic_errno_in_op_is_reported_as_unverifiable(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "basefs/filesystem.py": """
                class BaseFilesystem(FilesystemAPI):
                    def unlink(self, path, opseq=0):
                        raise FsError(self._pick(path), path)
            """,
        })
        report = analyze_tree(root, rules=[ErrnoParityRule()])
        assert rule_ids(report) == ["ERRNO-PARITY"]
        assert "not a literal" in report.findings[0].message

    def test_silent_without_contract_table(self, tmp_path):
        root = write_tree(tmp_path, {
            "shadowfs/filesystem.py": """
                class ShadowFilesystem(FilesystemAPI):
                    def unlink(self, path, opseq=0):
                        raise FsError(Errno.EPERM, path)
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[ErrnoParityRule()])) == []

    def test_inline_suppression_silences_the_op(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "shadowfs/filesystem.py": """
                class ShadowFilesystem(FilesystemAPI):
                    def unlink(self, path, opseq=0):  # raelint: disable=ERRNO-PARITY
                        raise FsError(Errno.EPERM, path)
            """,
        })
        report = analyze_tree(root, rules=[ErrnoParityRule()])
        assert rule_ids(report) == []
        assert report.suppressed == 1


# ---------------------------------------------------------------------------
# EFFECT-CONTRACT


class TestEffectContract:
    def test_shadow_reaching_device_write_is_flagged_with_witness(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "shadowfs/filesystem.py": """
                class ShadowFilesystem(FilesystemAPI):
                    def stat(self, path):
                        return self._peek(path)

                    def _peek(self, path):
                        self.device.write_block(0, b"")
            """,
        })
        report = analyze_tree(root, rules=[EffectContractRule()])
        assert rule_ids(report) == ["EFFECT-CONTRACT"]
        message = report.findings[0].message
        assert "device-write" in message
        assert "ShadowFilesystem.stat -> ShadowFilesystem._peek" in message

    def test_base_undeclared_effect_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "basefs/filesystem.py": """
                class BaseFilesystem(FilesystemAPI):
                    def unlink(self, path, opseq=0):
                        self.journal.begin()
            """,
        })
        report = analyze_tree(root, rules=[EffectContractRule()])
        assert rule_ids(report) == ["EFFECT-CONTRACT"]
        assert "journal-begin" in report.findings[0].message

    def test_read_only_op_dirtying_cache_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "basefs/filesystem.py": """
                class BaseFilesystem(FilesystemAPI):
                    def stat(self, path):
                        self.page_cache.mark_dirty(0)
            """,
        })
        report = analyze_tree(root, rules=[EffectContractRule()])
        messages = [f.message for f in report.findings]
        assert any("read-only" in m and "cache-dirty" in m for m in messages)

    def test_declared_footprint_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "basefs/filesystem.py": """
                class BaseFilesystem(FilesystemAPI):
                    def unlink(self, path, opseq=0):
                        self.page_cache.mark_dirty(0)
                        self.device.write_block(0, b"")
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[EffectContractRule()])) == []


# ---------------------------------------------------------------------------
# API-PARITY


class TestApiParity:
    API = """
        from abc import ABC, abstractmethod

        class FilesystemAPI(ABC):
            @abstractmethod
            def mkdir(self, path, perms=0o755, opseq=0):
                ...

            @abstractmethod
            def stat(self, path):
                ...
    """

    def test_renamed_parameter_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "api.py": self.API,
            "basefs/filesystem.py": """
                from api import FilesystemAPI

                class BaseFilesystem(FilesystemAPI):
                    def mkdir(self, path, mode=0o755, opseq=0):
                        ...
            """,
        })
        report = analyze_tree(root, rules=[ApiParityRule()])
        assert rule_ids(report) == ["API-PARITY"]
        message = report.findings[0].message
        assert "(self, path, mode=493, opseq=0)" in message
        assert "(self, path, perms=493, opseq=0)" in message

    def test_changed_default_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "api.py": self.API,
            "shadowfs/filesystem.py": """
                from api import FilesystemAPI

                class ShadowFilesystem(FilesystemAPI):
                    def mkdir(self, path, perms=0o700, opseq=0):
                        ...
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[ApiParityRule()])) == ["API-PARITY"]

    def test_added_trailing_parameter_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "api.py": self.API,
            "shadowfs/filesystem.py": """
                from api import FilesystemAPI

                class ShadowFilesystem(FilesystemAPI):
                    def stat(self, path, follow=True):
                        ...
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[ApiParityRule()])) == ["API-PARITY"]

    def test_exact_override_and_non_api_methods_pass(self, tmp_path):
        root = write_tree(tmp_path, {
            "api.py": self.API,
            "basefs/filesystem.py": """
                from api import FilesystemAPI

                class BaseFilesystem(FilesystemAPI):
                    def mkdir(self, path, perms=0o755, opseq=0):
                        ...

                    def stat(self, path):
                        ...

                    def _lookup(self, path, depth):
                        ...
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[ApiParityRule()])) == []

    def test_silent_without_api_class(self, tmp_path):
        root = write_tree(tmp_path, {
            "basefs/filesystem.py": """
                class BaseFilesystem:
                    def mkdir(self, path, anything_goes):
                        ...
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[ApiParityRule()])) == []


# ---------------------------------------------------------------------------
# STATE-PROTOCOL


class TestStateProtocol:
    def test_begin_without_commit_on_exceptional_path_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/txn.py": """
                def apply(journal, device, rec):
                    journal.begin()
                    device.write_block(rec.block, rec.data)
                    journal.commit()
            """,
        })
        report = analyze_tree(root, rules=[StateProtocolRule()])
        assert rule_ids(report) == ["STATE-PROTOCOL"]
        finding = report.findings[0]
        assert finding.line == 3
        assert "without commit() or abort()" in finding.message

    def test_begin_with_unconditional_finally_close_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/txn.py": """
                def apply(journal, device, rec):
                    journal.begin()
                    try:
                        device.write_block(rec.block, rec.data)
                    finally:
                        journal.commit()
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[StateProtocolRule()])) == []

    def test_context_manager_begin_is_exempt(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/txn.py": """
                def apply(journal, device, rec):
                    with journal.begin():
                        device.write_block(rec.block, rec.data)
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[StateProtocolRule()])) == []

    def test_early_return_between_begin_and_commit_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/txn.py": """
                def apply(journal, rec):
                    journal.begin()
                    if rec is None:
                        return False
                    journal.commit()
                    return True
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[StateProtocolRule()])) == ["STATE-PROTOCOL"]

    def test_fd_never_closed_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/io.py": """
                def copy_prefix(fs, path):
                    fd = fs.open(path)
                    return_value = fs.read(fd, 0, 4096)
            """,
        })
        report = analyze_tree(root, rules=[StateProtocolRule()])
        assert rule_ids(report) == ["STATE-PROTOCOL"]
        assert "fd 'fd'" in report.findings[0].message
        assert report.findings[0].line == 3

    def test_fd_closed_in_finally_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/io.py": """
                def copy_prefix(fs, path):
                    fd = fs.open(path)
                    try:
                        return fs.read(fd, 0, 4096)
                    finally:
                        fs.close(fd)
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[StateProtocolRule()])) == []

    def test_fd_handed_off_by_return_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/io.py": """
                def open_for_caller(fs, path):
                    fd = fs.open(path)
                    return fd
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[StateProtocolRule()])) == []

    def test_fd_stored_on_self_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/io.py": """
                def attach(self, fs, path):
                    fd = fs.open(path)
                    self._fd = fd
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[StateProtocolRule()])) == []

    def test_fd_closed_on_one_path_is_not_flagged(self, tmp_path):
        # Must-analysis by design: "leaked on some path" is LOCK-RELEASE
        # style noise for fds (workloads close conditionally); only an fd
        # no path ever closes is a protocol violation.
        root = write_tree(tmp_path, {
            "core/io.py": """
                def maybe(fs, path, flag):
                    fd = fs.open(path)
                    if flag:
                        fs.close(fd)
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[StateProtocolRule()])) == []


# ---------------------------------------------------------------------------
# the four rules together on one seeded tree


class TestAllFourTogether:
    def test_each_rule_reports_on_a_combined_bad_tree(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/contracts.py": CONTRACTS,
            "api.py": TestApiParity.API,
            "shadowfs/filesystem.py": """
                from api import FilesystemAPI

                class ShadowFilesystem(FilesystemAPI):
                    def stat(self, path, follow=True):
                        self.device.write_block(0, b"")
                        raise FsError(Errno.EPERM, path)
            """,
            "core/txn.py": """
                def apply(journal, fs, rec, path):
                    journal.begin()
                    fd = fs.open(path)
                    fs.write(fd, rec.data)
                    journal.commit()
            """,
        })
        report = analyze_tree(
            root,
            rules=[ErrnoParityRule(), EffectContractRule(), ApiParityRule(), StateProtocolRule()],
        )
        ids = set(rule_ids(report))
        assert ids == {"ERRNO-PARITY", "EFFECT-CONTRACT", "API-PARITY", "STATE-PROTOCOL"}
