"""Admission control during recovery (§3.2: "During recovery, new
application operations are not admitted") and supervisor bookkeeping."""

import pytest

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug, RecoveryFailure
from tests.conftest import formatted_device


def test_operations_rejected_while_recovering(hooks):
    """A re-entrant operation issued from inside the recovery span (here:
    from a hook firing during the contained reboot's mount) is refused."""
    device = formatted_device()
    recorded = {}

    def bug(point, ctx):
        if ctx.get("name") == "trip":
            raise KernelBug("admission test")

    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)

    def reentrant_probe(point, ctx):
        # "mount" fires inside contained_reboot -> we are mid-recovery.
        if fs._in_recovery and "attempt" not in recorded:
            try:
                fs.stat("/")
            except RecoveryFailure as failure:
                recorded["attempt"] = str(failure)

    hooks.register("dir.insert", bug)
    hooks.register("mount", reentrant_probe)
    fs.mkdir("/ok")
    fs.mkdir("/trip")
    assert "not admitted" in recorded.get("attempt", "") or "during recovery" in recorded.get("attempt", "")
    # ...and normal service resumed afterwards.
    assert fs.readdir("/") == ["ok", "trip"]


def test_event_fields_are_complete(hooks):
    def bug(point, ctx):
        if ctx.get("name") == "trip":
            raise KernelBug("bookkeeping test", bug_id="bk-1")

    hooks.register("dir.insert", bug)
    fs = RAEFilesystem(formatted_device(), RAEConfig(), hooks=hooks)
    fd = fs.open("/keep", OpenFlags.CREAT)
    fs.write(fd, b"x" * 100)
    fs.mkdir("/trip")
    event = fs.stats.events[0]
    assert event.seq is not None
    assert "mkdir" in event.detected
    assert event.replayed_ops >= 3  # open + write + autonomous mkdir
    assert event.total_seconds > 0
    assert event.discrepancies == 0
    fs.close(fd)


def test_stats_ops_counts_everything(hooks):
    fs = RAEFilesystem(formatted_device(), RAEConfig(), hooks=hooks)
    fs.mkdir("/a")
    fs.stat("/a")
    try:
        fs.rmdir("/missing")
    except Exception:  # noqa: BLE001 — FsError expected
        pass
    assert fs.stats.ops == 3
