"""Guards on the base's crash-consistency assumptions.

Ordered-mode journaling is only sound if dirty *metadata* never reaches
the device outside a journal commit.  The one path that could violate it
— buffer-cache eviction under memory pressure force-writing a dirty
block — is tracked by ``forced_evictions``; these tests pin it at zero
under the default write-back thresholds across heavy workloads, and
demonstrate the counter actually fires when the thresholds are defeated.
"""

from repro.basefs.filesystem import BaseFilesystem
from repro.errors import FsError
from repro.workloads import WorkloadGenerator, fileserver_profile, metadata_profile
from tests.conftest import formatted_device


def test_no_forced_metadata_evictions_under_default_policy():
    for profile_factory, seed in ((fileserver_profile, 61), (metadata_profile, 62)):
        fs = BaseFilesystem(formatted_device(32768))
        for index, operation in enumerate(WorkloadGenerator(profile_factory(), seed=seed).ops(500)):
            try:
                operation.apply(fs, opseq=index + 1)
            except FsError:
                pass
            fs.writeback.tick()
        fs.unmount()
        assert fs.cache.stats.forced_evictions == 0, profile_factory().name


def test_forced_eviction_counter_fires_when_provoked():
    """Sanity-check the guard itself: a pathologically small buffer cache
    with write-back disabled does force dirty evictions."""
    from repro.basefs.writeback import WritebackPolicy

    fs = BaseFilesystem(
        formatted_device(),
        buffer_cache_capacity=2,
        writeback_policy=WritebackPolicy(
            dirty_page_high_water=10_000, dirty_metadata_high_water=10_000, commit_interval_ops=10_000
        ),
    )
    for index in range(30):
        fs.mkdir(f"/d{index:03d}", opseq=index + 1)
    assert fs.cache.stats.forced_evictions > 0
