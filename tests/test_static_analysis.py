"""raelint: rule unit tests (known-bad flagged, known-good passes),
suppression and baseline mechanics, CLI modes, and the tree gate that
keeps src/repro clean against the checked-in baseline."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import Analyzer, Baseline, analyze_tree, default_rules
from repro.analysis.cli import main as raelint_main
from repro.analysis.engine import PARSE_ERROR_RULE
from repro.analysis.findings import Severity
from repro.analysis.rules import (
    ErrnoDisciplineRule,
    HookRegistryRule,
    LockReleaseRule,
    OplogCoverageRule,
    ShadowPurityRule,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "raelint.baseline.json"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def rule_ids(report) -> list[str]:
    return [finding.rule_id for finding in report.findings]


# ---------------------------------------------------------------------------
# SHADOW-PURITY


class TestShadowPurity:
    def test_flags_threading_import_and_device_write(self, tmp_path):
        root = write_tree(tmp_path, {
            "shadowfs/bad.py": """
                import threading
                from repro.basefs.page_cache import PageCache

                def persist(device, block, data):
                    device.write_block(block, data)
                    device.flush()
            """,
        })
        report = analyze_tree(root, rules=[ShadowPurityRule()])
        messages = [f.message for f in report.findings]
        assert len(report.findings) == 4
        assert any("threading" in m for m in messages)
        assert any("page_cache" in m for m in messages)
        assert any("write_block" in m for m in messages)
        assert any("flush" in m for m in messages)

    def test_good_shadow_module_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "shadowfs/good.py": """
                from repro.errors import FsError
                from repro.blockdev.device import BlockDevice

                def fsync(self, fd, opseq=0):
                    raise FsError(Errno.EINVAL, "the shadow omits the sync family")

                def read(device, block):
                    return device.read_block(block)
            """,
        })
        report = analyze_tree(root, rules=[ShadowPurityRule()])
        assert report.findings == []

    def test_rule_only_applies_under_shadowfs(self, tmp_path):
        root = write_tree(tmp_path, {
            "basefs/ok.py": """
                import threading

                def persist(device, block, data):
                    device.write_block(block, data)
            """,
        })
        report = analyze_tree(root, rules=[ShadowPurityRule()])
        assert report.findings == []


# ---------------------------------------------------------------------------
# OPLOG-COVERAGE

GOOD_SUPERVISOR_TREE = {
    "api.py": """
        OP_SIGNATURES = {
            "mkdir": (("path", "perms"), True),
            "stat": (("path",), False),
        }
    """,
    "basefs/filesystem.py": """
        class BaseFilesystem:
            def mkdir(self, path, perms=0o755, opseq=0):
                pass

            def stat(self, path):
                pass
    """,
    "core/supervisor.py": """
        class RAEFilesystem:
            def _call(self, name, **args):
                try:
                    outcome = self._apply(name, args)
                except KernelBug:
                    outcome = self._recover()
                else:
                    self.oplog.record(self.seq, name, outcome)
                return outcome

            def mkdir(self, path, perms=0o755, opseq=0):
                return self._call("mkdir", path=path, perms=perms)

            def stat(self, path):
                return self._call("stat", path=path)
    """,
}


class TestOplogCoverage:
    def test_good_chain_passes(self, tmp_path):
        root = write_tree(tmp_path, GOOD_SUPERVISOR_TREE)
        report = analyze_tree(root, rules=[OplogCoverageRule()])
        assert report.findings == []

    def test_unwrapped_mutation_is_flagged(self, tmp_path):
        files = dict(GOOD_SUPERVISOR_TREE)
        files["core/supervisor.py"] = """
            class RAEFilesystem:
                def _call(self, name, **args):
                    outcome = self._apply(name, args)
                    self.oplog.record(self.seq, name, outcome)
                    return outcome

                def mkdir(self, path, perms=0o755, opseq=0):
                    return self.base.mkdir(path, perms)  # bypasses recording
        """
        root = write_tree(tmp_path, files)
        report = analyze_tree(root, rules=[OplogCoverageRule()])
        assert rule_ids(report) == ["OPLOG-COVERAGE"]
        assert "mkdir" in report.findings[0].message

    def test_recording_only_in_error_path_is_flagged(self, tmp_path):
        files = dict(GOOD_SUPERVISOR_TREE)
        files["core/supervisor.py"] = """
            class RAEFilesystem:
                def _call(self, name, **args):
                    try:
                        outcome = self._apply(name, args)
                    except KernelBug:
                        self.oplog.record(self.seq, name, None)  # error path only
                        raise
                    return outcome

                def mkdir(self, path, perms=0o755, opseq=0):
                    return self._call("mkdir", path=path, perms=perms)
        """
        root = write_tree(tmp_path, files)
        report = analyze_tree(root, rules=[OplogCoverageRule()])
        assert rule_ids(report) == ["OPLOG-COVERAGE"]

    def test_missing_base_method_is_flagged(self, tmp_path):
        files = dict(GOOD_SUPERVISOR_TREE)
        files["basefs/filesystem.py"] = """
            class BaseFilesystem:
                def stat(self, path):
                    pass
        """
        root = write_tree(tmp_path, files)
        report = analyze_tree(root, rules=[OplogCoverageRule()])
        assert rule_ids(report) == ["OPLOG-COVERAGE"]
        assert "BaseFilesystem" in report.findings[0].message

    def test_silent_without_op_signatures(self, tmp_path):
        root = write_tree(tmp_path, {"x.py": "class RAEFilesystem:\n    pass\n"})
        report = analyze_tree(root, rules=[OplogCoverageRule()])
        assert report.findings == []


# ---------------------------------------------------------------------------
# LOCK-RELEASE


class TestLockRelease:
    def test_unguarded_acquire_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "fs.py": """
                def mkdir(self, path):
                    self.locks.acquire(2)
                    self._insert(path)
                    self.locks.release_all()
            """,
        })
        report = analyze_tree(root, rules=[LockReleaseRule()])
        assert rule_ids(report) == ["LOCK-RELEASE"]

    def test_try_finally_release_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "fs.py": """
                def mkdir(self, path):
                    try:
                        self.locks.acquire(2)
                        self.locks.acquire_pair(3, 4)
                        self._insert(path)
                    finally:
                        self.locks.release_all()
            """,
        })
        report = analyze_tree(root, rules=[LockReleaseRule()])
        assert report.findings == []

    def test_release_in_handler_does_not_count(self, tmp_path):
        root = write_tree(tmp_path, {
            "fs.py": """
                def mkdir(self, path):
                    try:
                        self.locks.acquire(2)
                    except KernelBug:
                        self.locks.release_all()
            """,
        })
        report = analyze_tree(root, rules=[LockReleaseRule()])
        assert rule_ids(report) == ["LOCK-RELEASE"]

    def test_lock_manager_internals_are_exempt(self, tmp_path):
        root = write_tree(tmp_path, {
            "locks.py": """
                class LockManager:
                    def acquire_pair(self, a, b):
                        first, second = sorted((a, b))
                        self.acquire(first)
                        self.acquire(second)
            """,
        })
        report = analyze_tree(root, rules=[LockReleaseRule()])
        assert report.findings == []


# ---------------------------------------------------------------------------
# ERRNO-DISCIPLINE


class TestErrnoDiscipline:
    def test_generic_raise_and_broad_except_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": """
                def f():
                    try:
                        g()
                    except Exception:
                        raise RuntimeError("broke")

                def h():
                    try:
                        g()
                    except:
                        pass
            """,
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert sorted(rule_ids(report)) == ["ERRNO-DISCIPLINE"] * 3

    def test_fs_error_without_errno_member_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": """
                def f(path):
                    raise FsError(2, path)
            """,
            "good.py": """
                def f(path, outcome):
                    raise FsError(Errno.ENOENT, path)

                def g(outcome):
                    raise FsError(outcome.errno, "propagated")
            """,
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert len(report.findings) == 1
        assert report.findings[0].path == "bad.py"

    def test_catalog_raises_pass(self, tmp_path):
        root = write_tree(tmp_path, {
            "good.py": """
                def f():
                    try:
                        g()
                    except (KernelBug, InvariantViolation):
                        raise RecoveryFailure("nested", phase="test")
            """,
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert report.findings == []


# ---------------------------------------------------------------------------
# HOOK-REGISTRY

HOOK_TREE_BASE = {
    "basefs/hooks.py": """
        HOOK_NAMES = (
            "vfs.lookup",
            "dir.insert",
        )
    """,
}


class TestHookRegistry:
    def test_typod_hook_name_is_flagged(self, tmp_path):
        files = dict(HOOK_TREE_BASE)
        files["basefs/filesystem.py"] = """
            def insert(self):
                self.hooks.fire("dir.isnert", dir_ino=2)
        """
        root = write_tree(tmp_path, files)
        report = analyze_tree(root, rules=[HookRegistryRule()])
        assert rule_ids(report) == ["HOOK-REGISTRY"]
        assert "dir.isnert" in report.findings[0].message

    def test_registered_names_and_dynamic_names_pass(self, tmp_path):
        files = dict(HOOK_TREE_BASE)
        files["basefs/filesystem.py"] = """
            def insert(self, point):
                self.hooks.fire("dir.insert", dir_ino=2)
                self.hooks.register("vfs.lookup", handler)
                self.hooks.fire(point, dir_ino=2)  # dynamic: runtime-validated
        """
        root = write_tree(tmp_path, files)
        report = analyze_tree(root, rules=[HookRegistryRule()])
        assert report.findings == []

    def test_silent_without_registry(self, tmp_path):
        root = write_tree(tmp_path, {
            "x.py": 'def f(self):\n    self.hooks.fire("anything.goes")\n',
        })
        report = analyze_tree(root, rules=[HookRegistryRule()])
        assert report.findings == []


# ---------------------------------------------------------------------------
# engine mechanics: suppression, baseline, parse errors


class TestSuppressionAndBaseline:
    BAD = """
        def f():
            try:
                g()
            except Exception:{suffix}
                pass
    """

    def test_inline_suppression_silences_finding(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": self.BAD.format(suffix="  # raelint: disable=ERRNO-DISCIPLINE — sanctioned boundary"),
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert report.findings == []
        assert report.suppressed == 1

    def test_comment_line_above_suppresses_next_line(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": """
                def f():
                    try:
                        g()
                    # raelint: disable=ERRNO-DISCIPLINE
                    except Exception:
                        pass
            """,
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert report.findings == []
        assert report.suppressed == 1

    def test_comment_directive_skips_blank_lines_to_next_code_line(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": """
                def f():
                    try:
                        g()
                    # raelint: disable=ERRNO-DISCIPLINE

                    except Exception:
                        pass
            """,
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert report.findings == []
        assert report.suppressed == 1

    def test_comment_directive_skips_interleaved_comments(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": """
                def f():
                    try:
                        g()
                    # raelint: disable=ERRNO-DISCIPLINE
                    # sanctioned: the workload shield is a catch-all by design
                    except Exception:
                        pass
            """,
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert report.findings == []
        assert report.suppressed == 1

    def test_stacked_comment_directives_land_on_the_same_code_line(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": """
                import threading

                def persist(device, block, data):
                    # raelint: disable=SHADOW-PURITY
                    # raelint: disable=ERRNO-DISCIPLINE
                    device.write_block(block, data)
            """,
        })
        # Both directives must target the write_block line (line 7), not
        # each other.
        from repro.analysis.engine import ParsedModule

        parsed = ParsedModule.parse("bad.py", (root / "bad.py").read_text())
        assert parsed.suppressions.get(7) == {"SHADOW-PURITY", "ERRNO-DISCIPLINE"}

    def test_suppression_of_other_rule_does_not_apply(self, tmp_path):
        root = write_tree(tmp_path, {
            "bad.py": self.BAD.format(suffix="  # raelint: disable=HOOK-REGISTRY"),
        })
        report = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert len(report.findings) == 1

    def test_baseline_accepts_known_findings(self, tmp_path):
        root = write_tree(tmp_path, {"bad.py": self.BAD.format(suffix="")})
        first = analyze_tree(root, rules=[ErrnoDisciplineRule()])
        assert len(first.new_findings) == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)
        second = analyze_tree(root, baseline=baseline_path, rules=[ErrnoDisciplineRule()])
        assert second.findings and second.new_findings == []
        assert second.baselined == 1
        assert second.clean

    def test_parse_error_is_a_finding(self, tmp_path):
        root = write_tree(tmp_path, {"broken.py": "def f(:\n"})
        report = analyze_tree(root, rules=default_rules())
        assert rule_ids(report) == [PARSE_ERROR_RULE]
        assert report.findings[0].severity is Severity.ERROR


# ---------------------------------------------------------------------------
# CLI


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"ok.py": "x = 1\n"})
        assert raelint_main([str(root), "--fail-on-findings"]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_fail_on_findings(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"bad.py": "try:\n    f()\nexcept Exception:\n    pass\n"})
        assert raelint_main([str(root)]) == 0  # report-only by default
        assert raelint_main([str(root), "--fail-on-findings"]) == 1

    def test_json_format(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"bad.py": "try:\n    f()\nexcept Exception:\n    pass\n"})
        raelint_main([str(root), "--format=json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["new"][0]["rule"] == "ERRNO-DISCIPLINE"
        assert payload["new"][0]["path"] == "bad.py"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"bad.py": "try:\n    f()\nexcept Exception:\n    pass\n"})
        baseline = tmp_path / "baseline.json"
        assert raelint_main([str(root), "--write-baseline", "--baseline", str(baseline)]) == 0
        assert raelint_main([str(root), "--fail-on-findings", "--baseline", str(baseline)]) == 0

    def test_update_baseline_drops_stale_entries(self, tmp_path, capsys):
        bad = "try:\n    f()\nexcept Exception:\n    pass\n"
        root = write_tree(tmp_path, {"bad.py": bad, "worse.py": bad})
        baseline = tmp_path / "baseline.json"
        assert raelint_main([str(root), "--write-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()

        # Fix one file; --update-baseline regenerates and reports the delta.
        (root / "worse.py").write_text("x = 1\n")
        assert raelint_main([str(root), "--update-baseline", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "-1 no longer firing" in out
        assert "+0 new" in out
        entries = json.loads(baseline.read_text())["findings"]
        assert [e["path"] for e in entries] == ["bad.py"]
        assert raelint_main([str(root), "--fail-on-findings", "--baseline", str(baseline)]) == 0

    def test_output_is_sorted_by_path_line_rule(self, tmp_path, capsys):
        bad = "try:\n    f()\nexcept Exception:\n    pass\n\ntry:\n    g()\nexcept Exception:\n    pass\n"
        root = write_tree(tmp_path, {"b.py": bad, "a.py": bad})
        raelint_main([str(root), "--format=json"])
        payload = json.loads(capsys.readouterr().out)
        keys = [(f["path"], f["line"], f["rule"]) for f in payload["findings"]]
        assert keys == sorted(keys)
        assert len(keys) == 4  # both files, both lines, stable order

    def test_list_rules(self, capsys):
        assert raelint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "SHADOW-PURITY",
            "SHADOW-REACH",
            "OPLOG-COVERAGE",
            "LOCK-RELEASE",
            "LOCK-ORDER",
            "JOURNAL-BEFORE-WRITE",
            "REPLAY-DETERMINISM",
            "ERRNO-DISCIPLINE",
            "HOOK-REGISTRY",
            "ERRNO-PARITY",
            "EFFECT-CONTRACT",
            "API-PARITY",
            "STATE-PROTOCOL",
        ):
            assert rule_id in out

    def test_missing_root_exits_two(self, tmp_path):
        assert raelint_main([str(tmp_path / "nope")]) == 2

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        # The tree violates ERRNO-DISCIPLINE only; selecting an
        # unrelated rule must make the run clean.
        root = write_tree(tmp_path, {"bad.py": "try:\n    f()\nexcept Exception:\n    pass\n"})
        assert raelint_main([str(root), "--select", "ERRNO-DISCIPLINE", "--fail-on-findings"]) == 1
        capsys.readouterr()
        assert raelint_main([str(root), "--select", "SHADOW-PURITY", "--fail-on-findings"]) == 0

    def test_select_unknown_rule_exits_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"ok.py": "x = 1\n"})
        assert raelint_main([str(root), "--select", "NO-SUCH-RULE"]) == 2
        err = capsys.readouterr().err
        assert "NO-SUCH-RULE" in err
        # Family names are valid --select tokens, so the error lists them.
        assert "families:" in err

    def test_check_baseline_flags_stale_entries(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"bad.py": "try:\n    f()\nexcept Exception:\n    pass\n"})
        baseline = tmp_path / "baseline.json"
        assert raelint_main([str(root), "--write-baseline", "--baseline", str(baseline)]) == 0
        # Entry still fires: the ratchet holds.
        assert raelint_main([str(root), "--check-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()

        # Fix the file without updating the baseline: the entry is stale.
        (root / "bad.py").write_text("x = 1\n")
        assert raelint_main([str(root), "--check-baseline", "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry" in out
        assert "--update-baseline" in out

    def test_check_baseline_scoped_to_selected_rules(self, tmp_path, capsys):
        # A stale ERRNO-DISCIPLINE entry must not fail a run that only
        # selected a different rule — that run could not have reproduced it.
        root = write_tree(tmp_path, {"bad.py": "try:\n    f()\nexcept Exception:\n    pass\n"})
        baseline = tmp_path / "baseline.json"
        assert raelint_main([str(root), "--write-baseline", "--baseline", str(baseline)]) == 0
        (root / "bad.py").write_text("x = 1\n")
        assert raelint_main([
            str(root), "--select", "SHADOW-PURITY",
            "--check-baseline", "--baseline", str(baseline),
        ]) == 0

    def test_github_format_emits_workflow_annotations(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"bad.py": "try:\n    f()\nexcept Exception:\n    pass\n"})
        assert raelint_main([str(root), "--format=github", "--fail-on-findings"]) == 1
        out = capsys.readouterr().out
        line = next(l for l in out.splitlines() if l.startswith("::error "))
        # file= is joined with the analysis root so GitHub can anchor
        # the annotation on the PR diff; line/title/message follow the
        # workflow-command grammar.
        assert f"file={(Path(root) / 'bad.py').as_posix()}" in line
        assert "line=3," in line
        assert "title=ERRNO-DISCIPLINE" in line
        assert line.count("::") == 2

    def test_changed_only_outside_git_exits_two(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path))
        root = write_tree(tmp_path / "tree", {"ok.py": "x = 1\n"})
        assert raelint_main([str(root), "--changed-only"]) == 2
        assert "requires a git checkout" in capsys.readouterr().err

    def test_changed_only_reports_only_changed_files(self, tmp_path, capsys):
        import subprocess

        bad = "try:\n    f()\nexcept Exception:\n    pass\n"
        root = write_tree(tmp_path, {"touched.py": "x = 1\n", "untouched.py": bad})

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=root, check=True, capture_output=True,
                env={"PATH": "/usr/bin:/bin", "HOME": str(tmp_path),
                     "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
            )

        git("init", "-q")
        git("add", ".")
        git("commit", "-q", "-m", "seed")

        # untouched.py's finding is committed history; touched.py gains
        # one, and a brand-new untracked file brings another.
        (root / "touched.py").write_text(bad)
        (root / "fresh.py").write_text(bad)
        assert raelint_main([str(root), "--changed-only", "--format=json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {f["path"] for f in payload["findings"]} == {"touched.py", "fresh.py"}

    def test_changed_only_skips_deleted_files(self, tmp_path, capsys):
        # A file deleted in the working tree shows up in `git diff HEAD`
        # but has nothing to analyze; it must be dropped from the
        # changed set — in particular --check-baseline must not judge
        # its baseline entries stale (the deletion commit is what
        # ratchets them), and the run must not crash trying to read it.
        import subprocess

        bad = "try:\n    f()\nexcept Exception:\n    pass\n"
        root = write_tree(tmp_path, {"doomed.py": bad, "ok.py": "x = 1\n"})

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=root, check=True, capture_output=True,
                env={"PATH": "/usr/bin:/bin", "HOME": str(tmp_path),
                     "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                     "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t"},
            )

        git("init", "-q")
        git("add", ".")
        git("commit", "-q", "-m", "seed")

        baseline = tmp_path / "baseline.json"
        assert raelint_main([str(root), "--write-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()

        (root / "doomed.py").unlink()
        (root / "fresh.py").write_text(bad)

        assert raelint_main([
            str(root), "--changed-only", "--check-baseline",
            "--baseline", str(baseline), "--format=json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Only the untracked file is reported; doomed.py neither
        # appears nor trips the stale-entry check.
        assert {f["path"] for f in payload["findings"]} == {"fresh.py"}


# ---------------------------------------------------------------------------
# the shared rule context: memoized CFGs must not change behavior


class TestSharedContext:
    def test_cfgs_are_built_once_per_function(self):
        import ast

        from repro.analysis.engine import RuleContext

        func = ast.parse("def f():\n    if x:\n        return 1\n    return 2\n").body[0]
        context = RuleContext()
        assert context.cfg(func) is context.cfg(func)

    def test_shared_context_findings_match_isolated_runs(self, tmp_path):
        # The engine memoizes CFGs/call graph across the rule set; the
        # report must be identical to running every rule in its own
        # Analyzer (fresh caches).  Fixture trips flow, contract, and
        # concurrency rules so the shared artifacts are actually hit.
        root = write_tree(tmp_path, {
            "spec/concurrency.py": 'SHARED_CLASSES = ("Box",)\nGUARDED_BY = {}\n',
            "core/box.py": """
                import time

                class Box:
                    def __init__(self):
                        self.item = None

                def put(b: Box, item):
                    b.item = item

                async def drain(b: Box, locks, ino):
                    locks.acquire(ino)
                    await tick()
                    locks.release(ino)
                    time.sleep(1)

                async def tick():
                    pass
            """,
            "basefs/ops.py": """
                def risky(locks, ino):
                    locks.acquire(ino)
                    might_raise()
                    locks.release(ino)
            """,
        })
        shared = analyze_tree(root)  # one Analyzer, one RuleContext
        shared_keys = {(f.path, f.line, f.rule_id, f.message) for f in shared.findings}
        isolated_keys = set()
        for rule in default_rules():
            report = analyze_tree(root, rules=[type(rule)()])
            isolated_keys |= {(f.path, f.line, f.rule_id, f.message) for f in report.findings}
        assert shared_keys == isolated_keys
        assert shared_keys  # the fixture actually produced findings


# ---------------------------------------------------------------------------
# the gate: the real tree stays clean against the checked-in baseline


class TestTreeGate:
    def test_src_repro_is_clean_against_baseline(self):
        report = Analyzer(SRC_ROOT, baseline=Baseline.load(BASELINE_PATH)).run()
        assert report.clean, "raelint regressions:\n" + "\n".join(
            finding.render() for finding in report.new_findings
        )

    def test_every_rule_ran_over_a_nontrivial_tree(self):
        report = Analyzer(SRC_ROOT, baseline=Baseline.load(BASELINE_PATH)).run()
        assert report.files > 50

    def test_sanctioned_boundaries_are_suppressed_not_silent(self):
        # The detector boundary in the supervisor (and the other sanctioned
        # broad catches) must be visible as suppressions, not invisible.
        report = Analyzer(SRC_ROOT, baseline=Baseline.load(BASELINE_PATH)).run()
        assert report.suppressed >= 6
