"""Tests for the CLI toolbox and the trusted-code report."""

import pytest

from repro.core.trustbase import trusted_code_report
from repro.tools import main as tools_main


class TestTrustbase:
    def test_report_counts_everything(self):
        report = trusted_code_report()
        names = {c.name for c in report.categories}
        assert names == {"verified-equivalent", "shared-format", "reused-handoff", "unverified-base"}
        for category in report.categories:
            assert category.sloc > 0, category.name

    def test_reused_handoff_is_small(self):
        """The §4.3 design goal: the recovery path's reused-but-unverified
        base machinery must be a small fraction of the base."""
        report = trusted_code_report()
        reused = report.category("reused-handoff").sloc
        base = report.category("unverified-base").sloc
        assert reused < base / 2

    def test_render_mentions_the_ratio(self):
        text = trusted_code_report().render()
        assert "reused base machinery" in text
        assert "distrusted base" in text


class TestToolsCli:
    def test_mkfs_and_fsck(self, tmp_path, capsys):
        image = str(tmp_path / "t.img")
        assert tools_main(["mkfs", image, "--blocks", "4096"]) == 0
        assert tools_main(["fsck", image]) == 0
        out = capsys.readouterr().out
        assert "formatted" in out and "clean" in out

    def test_inspect(self, tmp_path, capsys):
        image = str(tmp_path / "t.img")
        tools_main(["mkfs", image, "--blocks", "4096"])
        assert tools_main(["inspect", image]) == 0
        out = capsys.readouterr().out
        assert "namespace:" in out and "ino 2" in out

    def test_ls_and_cat_through_shadow(self, tmp_path, capsys):
        image = str(tmp_path / "t.img")
        tools_main(["mkfs", image, "--blocks", "4096"])
        # Populate via the base.
        from repro.api import OpenFlags
        from repro.basefs.filesystem import BaseFilesystem
        from repro.blockdev.device import FileBlockDevice

        device = FileBlockDevice(image, block_count=4096)
        fs = BaseFilesystem(device)
        fs.mkdir("/d", opseq=1)
        fd = fs.open("/d/hello.txt", OpenFlags.CREAT, opseq=2)
        fs.write(fd, b"shadow says hi\n", opseq=3)
        fs.close(fd, opseq=4)
        fs.unmount()
        device.close()

        assert tools_main(["ls", image, "/d"]) == 0
        assert "hello.txt" in capsys.readouterr().out
        assert tools_main(["cat", image, "/d/hello.txt"]) == 0
        assert "shadow says hi" in capsys.readouterr().out

    def test_fsck_repair_roundtrip(self, tmp_path, capsys):
        image = str(tmp_path / "t.img")
        tools_main(["mkfs", image, "--blocks", "4096"])
        # Corrupt the free count.
        from repro.blockdev.device import FileBlockDevice
        from repro.ondisk.superblock import Superblock

        device = FileBlockDevice(image, block_count=4096)
        sb = Superblock.unpack(device.read_block(0))
        sb.free_blocks += 4
        device.write_block(0, sb.pack())
        device.close()
        assert tools_main(["fsck", image]) == 1  # detects
        assert tools_main(["fsck", image, "--repair"]) == 0  # fixes
        assert tools_main(["fsck", image]) == 0

    def test_bugstudy_output(self, capsys):
        assert tools_main(["bugstudy"]) == 0
        out = capsys.readouterr().out
        assert "Deterministic" in out and "2023" in out

    def test_verify_depth1(self, capsys):
        assert tools_main(["verify", "--depth", "1"]) == 0
        assert "refinement holds" in capsys.readouterr().out

    def test_trustbase_command(self, capsys):
        assert tools_main(["trustbase"]) == 0
        assert "Trusted-code" in capsys.readouterr().out

    def test_missing_image_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            tools_main(["fsck", str(tmp_path / "nope.img")])

    def test_scrub_clean_and_corrupt(self, tmp_path, capsys):
        image = str(tmp_path / "scrub.img")
        tools_main(["mkfs", image, "--blocks", "4096"])
        assert tools_main(["scrub", image, "--full"]) == 0
        assert "image is sound" in capsys.readouterr().out
        from repro.blockdev.device import FileBlockDevice
        from repro.ondisk.layout import DiskLayout

        device = FileBlockDevice(image, block_count=4096)
        layout = DiskLayout(block_count=4096)
        block, offset = layout.inode_location(2)
        raw = bytearray(device.read_block(block))
        raw[offset + 8] ^= 1
        device.write_block(block, bytes(raw))
        device.close()
        assert tools_main(["scrub", image]) == 1
        assert "FINDING" in capsys.readouterr().out
