"""Large-file coverage: single- and double-indirect mapping paths on
both implementations, partial truncation through the indirect trees,
and fsck over the results.

A double-indirect file needs > (12 + 1024) blocks = > 4,144 KiB, so
these tests use a 64 MiB device and chunked writes.
"""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.fsck import Fsck
from repro.ondisk.inode import N_DIRECT, PTRS_PER_BLOCK
from repro.ondisk.layout import BLOCK_SIZE
from repro.shadowfs.filesystem import ShadowFilesystem
from tests.conftest import formatted_device

DOUBLE_START = (N_DIRECT + PTRS_PER_BLOCK) * BLOCK_SIZE  # 4,243,456 bytes
CHUNK = 64 * BLOCK_SIZE


def write_big(fs, path, size, seq):
    fd = fs.open(path, OpenFlags.CREAT, opseq=seq())
    written = 0
    pattern = bytes(range(256))
    while written < size:
        take = min(CHUNK, size - written)
        data = (pattern * (take // 256 + 1))[:take]
        fs.write(fd, data, opseq=seq())
        written += take
        if hasattr(fs, "commit"):
            fs.commit()  # keep the dirty-page footprint bounded
    return fd


@pytest.fixture
def big_device():
    return formatted_device(block_count=16384)  # 64 MiB


class TestBaseBigFiles:
    def test_double_indirect_write_read(self, big_device, seq):
        fs = BaseFilesystem(big_device)
        size = DOUBLE_START + 5 * BLOCK_SIZE + 123
        fd = write_big(fs, "/big", size, seq)
        assert fs.stat("/big").size == size
        slot = fs._iget(fs.stat("/big").ino)
        assert slot.inode.indirect and slot.inode.double_indirect
        # Read across the double-indirect boundary.
        fs.lseek(fd, DOUBLE_START - 100, 0, opseq=seq())
        data = fs.read(fd, 200, opseq=seq())
        assert len(data) == 200
        pattern = bytes(range(256))
        fs.lseek(fd, 0, 0, opseq=seq())
        head = fs.read(fd, 256, opseq=seq())
        assert head == pattern
        fs.close(fd, opseq=seq())
        fs.unmount()
        assert Fsck(big_device).run().clean

    def test_truncate_into_single_indirect(self, big_device, seq):
        fs = BaseFilesystem(big_device)
        size = DOUBLE_START + 3 * BLOCK_SIZE
        fd = write_big(fs, "/big", size, seq)
        fs.close(fd, opseq=seq())
        free_full = fs.alloc.free_blocks
        new_size = (N_DIRECT + 50) * BLOCK_SIZE
        fs.truncate("/big", new_size, opseq=seq())
        fs.commit()
        assert fs.alloc.free_blocks > free_full  # blocks returned
        slot = fs._iget(fs.stat("/big").ino)
        assert slot.inode.double_indirect == 0
        assert slot.inode.indirect != 0
        fs.unmount()
        assert Fsck(big_device).run().clean

    def test_truncate_mid_double_indirect(self, big_device, seq):
        fs = BaseFilesystem(big_device)
        size = DOUBLE_START + 600 * BLOCK_SIZE
        fd = write_big(fs, "/big", size, seq)
        fs.close(fd, opseq=seq())
        keep = DOUBLE_START + 100 * BLOCK_SIZE
        fs.truncate("/big", keep, opseq=seq())
        fs.commit()
        slot = fs._iget(fs.stat("/big").ino)
        assert slot.inode.double_indirect != 0  # partially kept
        fd = fs.open("/big", opseq=seq())
        fs.lseek(fd, keep - 10, 0, opseq=seq())
        assert len(fs.read(fd, 100, opseq=seq())) == 10  # clamped at size
        fs.close(fd, opseq=seq())
        fs.unmount()
        assert Fsck(big_device).run().clean

    def test_grow_after_shrink_reveals_zeros_across_boundary(self, big_device, seq):
        fs = BaseFilesystem(big_device)
        size = DOUBLE_START + BLOCK_SIZE
        fd = write_big(fs, "/big", size, seq)
        fs.truncate("/big", 100, opseq=seq())
        fs.truncate("/big", size, opseq=seq())
        fs.lseek(fd, DOUBLE_START, 0, opseq=seq())
        assert fs.read(fd, 64, opseq=seq()) == b"\x00" * 64
        fs.close(fd, opseq=seq())


class TestShadowBigFiles:
    def test_shadow_double_indirect(self, big_device, seq):
        shadow = ShadowFilesystem(big_device)
        size = DOUBLE_START + 2 * BLOCK_SIZE + 17
        fd = shadow.open("/big", OpenFlags.CREAT, opseq=seq())
        written = 0
        while written < size:
            take = min(CHUNK, size - written)
            shadow.write(fd, b"S" * take, opseq=seq())
            written += take
        assert shadow.stat("/big").size == size
        shadow.lseek(fd, DOUBLE_START, 0, opseq=seq())
        assert shadow.read(fd, 4, opseq=seq()) == b"SSSS"
        # shrink below the double-indirect region and verify accounting
        free_before = shadow.sb.free_blocks
        shadow.truncate("/big", BLOCK_SIZE, opseq=seq())
        assert shadow.sb.free_blocks > free_before
        shadow.close(fd, opseq=seq())

    def test_base_and_shadow_agree_on_big_file(self, seq):
        base = BaseFilesystem(formatted_device(16384))
        shadow = ShadowFilesystem(formatted_device(16384))
        size = DOUBLE_START + BLOCK_SIZE
        for fs in (base, shadow):
            fd = fs.open("/big", OpenFlags.CREAT, opseq=1)
            written = 0
            step = 0
            while written < size:
                take = min(CHUNK, size - written)
                fs.write(fd, b"Z" * take, opseq=2 + step)
                written += take
                step += 1
            fs.truncate("/big", size - 12345, opseq=100)
            fs.close(fd, opseq=101)
        assert base.stat("/big").size == shadow.stat("/big").size
        from repro.spec import capture_state, states_equivalent

        report = states_equivalent(capture_state(base), capture_state(shadow))
        assert report.equivalent, str(report)
