"""Tests for repro.core.oplog and repro.core.detector."""

import pytest

from repro.api import OpResult, OpenFlags, op
from repro.basefs.vfs import FdState
from repro.core.detector import Detector, ErrorKind, WarnPolicy
from repro.core.oplog import OpLog
from repro.errors import (
    DeviceError,
    Errno,
    FsError,
    InvariantViolation,
    KernelBug,
    KernelWarning,
)


class TestOpLog:
    def test_record_and_len(self):
        log = OpLog()
        log.record(1, op("mkdir", path="/a"), OpResult())
        log.record(2, op("stat", path="/a"), OpResult())
        assert len(log) == 2
        assert log.stats.recorded == 2

    def test_truncate_clears_and_snapshots(self):
        log = OpLog()
        log.record(1, op("mkdir", path="/a"), OpResult())
        fds = {3: FdState(fd=3, ino=7, flags=OpenFlags.NONE, offset=9)}
        log.truncate(fds)
        assert len(log) == 0
        assert log.fd_snapshot[3].offset == 9
        assert log.stats.truncations == 1

    def test_truncate_snapshot_is_deep(self):
        log = OpLog()
        state = FdState(fd=3, ino=7, flags=OpenFlags.NONE)
        log.truncate({3: state})
        state.offset = 100
        assert log.fd_snapshot[3].offset == 0

    def test_max_entries_high_water(self):
        log = OpLog()
        for i in range(5):
            log.record(i, op("mkdir", path=f"/d{i}"), OpResult())
        log.truncate({})
        log.record(9, op("mkdir", path="/z"), OpResult())
        assert log.stats.max_entries == 5

    def test_approximate_bytes_counts_payloads(self):
        log = OpLog()
        small = log.approximate_bytes()
        log.record(1, op("write", fd=3, data=b"x" * 10_000), OpResult(value=10_000))
        assert log.approximate_bytes() > small + 9_000

    def test_record_describe(self):
        log = OpLog()
        record = log.record(4, op("rmdir", path="/a"), OpResult(errno=Errno.ENOENT))
        assert "ENOENT" in record.describe()
        ok = log.record(5, op("mkdir", path="/a"), OpResult())
        assert ok.describe().endswith("ok")


class TestDetector:
    def test_classification(self):
        detector = Detector()
        cases = [
            (KernelBug("x"), ErrorKind.BUG),
            (KernelWarning("x"), ErrorKind.WARN),
            (InvariantViolation("x"), ErrorKind.INVARIANT),
            (DeviceError("x"), ErrorKind.DEVICE),
            (RuntimeError("x"), ErrorKind.UNEXPECTED),
        ]
        for exc, expected in cases:
            assert detector.classify(exc).kind == expected
        assert detector.stats.total == 5
        assert len(detector.history) == 5

    def test_fserror_is_rejected(self):
        detector = Detector()
        with pytest.raises(AssertionError):
            detector.classify(FsError(Errno.ENOENT))

    def test_warn_policy(self):
        recover = Detector(warn_policy=WarnPolicy.RECOVER)
        ignore = Detector(warn_policy=WarnPolicy.IGNORE)
        warn = KernelWarning("w")
        assert recover.should_recover(recover.classify(warn))
        assert not ignore.should_recover(ignore.classify(warn))
        # Non-WARN errors always recover regardless of policy.
        assert ignore.should_recover(ignore.classify(KernelBug("b")))

    def test_describe_includes_context(self):
        detector = Detector()
        detected = detector.classify(KernelBug("boom"), seq=42, op_name="mkdir")
        assert "op #42" in detected.describe() and "mkdir" in detected.describe()


class TestOpLogByteCounter:
    """The running byte counter must match the old full scan — and
    record() must be O(1), never re-walking the entries."""

    def test_counter_matches_full_rescan(self):
        log = OpLog()
        for seq in range(1, 200):
            if seq % 3 == 0:
                log.record(seq, op("write", fd=3, data=b"y" * (seq % 50)), OpResult(value=seq % 50))
            elif seq % 3 == 1:
                log.record(seq, op("mkdir", path=f"/dir{seq}"), OpResult())
            else:
                log.record(seq, op("readdir", path="/"), OpResult(value=[f"n{i}" for i in range(seq % 7)]))
            assert log.approximate_bytes() == log.recount_bytes()
        fds = {3: FdState(fd=3, ino=7, flags=OpenFlags.NONE, offset=9)}
        log.truncate(fds)
        assert log.approximate_bytes() == log.recount_bytes()
        log.record(1, op("unlink", path="/dir1"), OpResult())
        assert log.approximate_bytes() == log.recount_bytes()

    def test_record_does_not_iterate_entries(self):
        class IterationCountingList(list):
            iterations = 0

            def __iter__(self):
                IterationCountingList.iterations += 1
                return super().__iter__()

        log = OpLog()
        log.entries = IterationCountingList()
        for seq in range(1, 501):
            log.record(seq, op("write", fd=3, data=b"z" * 100), OpResult(value=100))
        # The old implementation re-walked all entries per record (O(n²)
        # per commit window); the counter must not touch them at all.
        assert IterationCountingList.iterations == 0
        assert log.stats.max_bytes == log.recount_bytes()

    def test_large_window_sanity_bound(self):
        log = OpLog()
        payload = b"p" * 1000
        for seq in range(1, 5001):
            log.record(seq, op("write", fd=1, data=payload), OpResult(value=1000))
        approx = log.approximate_bytes()
        assert approx == log.recount_bytes()
        # 5000 records x (96 overhead + 1000 payload) — the counter must
        # scale linearly with what was recorded, nothing more.
        assert approx == 5000 * (96 + 1000)


class TestDetectorHistoryRing:
    def test_history_is_bounded_but_counts_are_not(self):
        detector = Detector(history_limit=3)
        for index in range(10):
            detector.classify(KernelBug(f"b{index}"))
        assert len(detector.history) == 3
        assert detector.stats.total == 10
        # The ring keeps the most recent detections.
        assert [str(d.exception) for d in detector.history] == ["b7", "b8", "b9"]

    def test_history_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Detector(history_limit=0)
