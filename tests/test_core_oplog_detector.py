"""Tests for repro.core.oplog and repro.core.detector."""

import pytest

from repro.api import OpResult, OpenFlags, op
from repro.basefs.vfs import FdState
from repro.core.detector import Detector, ErrorKind, WarnPolicy
from repro.core.oplog import OpLog
from repro.errors import (
    DeviceError,
    Errno,
    FsError,
    InvariantViolation,
    KernelBug,
    KernelWarning,
)


class TestOpLog:
    def test_record_and_len(self):
        log = OpLog()
        log.record(1, op("mkdir", path="/a"), OpResult())
        log.record(2, op("stat", path="/a"), OpResult())
        assert len(log) == 2
        assert log.stats.recorded == 2

    def test_truncate_clears_and_snapshots(self):
        log = OpLog()
        log.record(1, op("mkdir", path="/a"), OpResult())
        fds = {3: FdState(fd=3, ino=7, flags=OpenFlags.NONE, offset=9)}
        log.truncate(fds)
        assert len(log) == 0
        assert log.fd_snapshot[3].offset == 9
        assert log.stats.truncations == 1

    def test_truncate_snapshot_is_deep(self):
        log = OpLog()
        state = FdState(fd=3, ino=7, flags=OpenFlags.NONE)
        log.truncate({3: state})
        state.offset = 100
        assert log.fd_snapshot[3].offset == 0

    def test_max_entries_high_water(self):
        log = OpLog()
        for i in range(5):
            log.record(i, op("mkdir", path=f"/d{i}"), OpResult())
        log.truncate({})
        log.record(9, op("mkdir", path="/z"), OpResult())
        assert log.stats.max_entries == 5

    def test_approximate_bytes_counts_payloads(self):
        log = OpLog()
        small = log.approximate_bytes()
        log.record(1, op("write", fd=3, data=b"x" * 10_000), OpResult(value=10_000))
        assert log.approximate_bytes() > small + 9_000

    def test_record_describe(self):
        log = OpLog()
        record = log.record(4, op("rmdir", path="/a"), OpResult(errno=Errno.ENOENT))
        assert "ENOENT" in record.describe()
        ok = log.record(5, op("mkdir", path="/a"), OpResult())
        assert ok.describe().endswith("ok")


class TestDetector:
    def test_classification(self):
        detector = Detector()
        cases = [
            (KernelBug("x"), ErrorKind.BUG),
            (KernelWarning("x"), ErrorKind.WARN),
            (InvariantViolation("x"), ErrorKind.INVARIANT),
            (DeviceError("x"), ErrorKind.DEVICE),
            (RuntimeError("x"), ErrorKind.UNEXPECTED),
        ]
        for exc, expected in cases:
            assert detector.classify(exc).kind == expected
        assert detector.stats.total == 5
        assert len(detector.history) == 5

    def test_fserror_is_rejected(self):
        detector = Detector()
        with pytest.raises(AssertionError):
            detector.classify(FsError(Errno.ENOENT))

    def test_warn_policy(self):
        recover = Detector(warn_policy=WarnPolicy.RECOVER)
        ignore = Detector(warn_policy=WarnPolicy.IGNORE)
        warn = KernelWarning("w")
        assert recover.should_recover(recover.classify(warn))
        assert not ignore.should_recover(ignore.classify(warn))
        # Non-WARN errors always recover regardless of policy.
        assert ignore.should_recover(ignore.classify(KernelBug("b")))

    def test_describe_includes_context(self):
        detector = Detector()
        detected = detector.classify(KernelBug("boom"), seq=42, op_name="mkdir")
        assert "op #42" in detected.describe() and "mkdir" in detected.describe()
