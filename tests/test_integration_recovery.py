"""Integration: the full RAE story end-to-end.

These are the DESIGN.md invariant-3 scenarios: for op sequences with a
detectable bug injected at various positions, recovery must leave the
system state-equivalent to a bug-free execution, fsck-clean, and the
application's view intact.
"""

import pytest

from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError, KernelBug
from repro.fsck import Fsck
from repro.spec import capture_state, states_equivalent
from repro.workloads import (
    SimulatedApplication,
    WorkloadGenerator,
    fileserver_profile,
    metadata_profile,
    varmail_profile,
)
from tests.conftest import formatted_device


def run_reference(operations):
    device = formatted_device(16384)
    fs = RAEFilesystem(device, RAEConfig())
    for operation in operations:
        try:
            operation.apply(fs)
        except FsError:
            pass
    state = capture_state(fs)
    fs.unmount()
    return state


def run_with_bug(operations, fire_at, points=("dir.insert", "page.write", "alloc.block", "inode.dirty")):
    hooks = HookPoints()
    counter = {"n": 0}

    def bug(point, ctx):
        counter["n"] += 1
        if counter["n"] == fire_at:
            raise KernelBug(f"injected at hook call {fire_at}")

    for point in points:
        hooks.register(point, bug)
    device = formatted_device(16384)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    for operation in operations:
        try:
            operation.apply(fs)
        except FsError:
            pass
    state = capture_state(fs)
    fs.unmount()
    return state, fs, device


@pytest.mark.parametrize("profile_factory,seed", [(fileserver_profile, 21), (metadata_profile, 22), (varmail_profile, 23)])
@pytest.mark.parametrize("fire_at", [10, 80, 400])
def test_recovery_equals_bugfree_run(profile_factory, seed, fire_at):
    operations = WorkloadGenerator(profile_factory(), seed=seed).ops(120)
    reference = run_reference(operations)
    state, fs, device = run_with_bug(operations, fire_at)
    report = states_equivalent(reference, state)
    assert report.equivalent, f"fire_at={fire_at}: {report}"
    assert Fsck(device).run().clean
    assert sum(e.discrepancies for e in fs.stats.events) == 0


def test_many_recoveries_in_one_run():
    hooks = HookPoints()
    counter = {"n": 0}

    def frequent_bug(point, ctx):
        counter["n"] += 1
        if counter["n"] % 97 == 0:
            raise KernelBug("frequent")

    hooks.register("vfs.lookup", frequent_bug)
    device = formatted_device(16384)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    app = SimulatedApplication(fs, fileserver_profile(), seed=31)
    stats = app.run(300)
    assert stats.runtime_failures == 0
    assert fs.recovery_count >= 3
    assert app.verify_all() == 0
    fs.unmount()
    assert Fsck(device).run().clean


def test_recovery_with_fsync_windows():
    """Bugs landing between fsyncs replay only the short window."""
    hooks = HookPoints()
    counter = {"n": 0}

    def bug(point, ctx):
        counter["n"] += 1
        if counter["n"] == 2:
            raise KernelBug("post-fsync bug")

    hooks.register("dir.insert", bug)
    device = formatted_device(16384)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    from repro.api import OpenFlags

    fd = fs.open("/a", OpenFlags.CREAT)
    fs.write(fd, b"1" * 10000)
    fs.fsync(fd)  # durability point: log truncated
    fs.mkdir("/small-window")  # dir.insert #2: crash + recovery
    assert fs.recovery_count == 1
    # Only the ops after the fsync were replayed (mkdir itself ran
    # autonomously; nothing was left to replay constrained).
    assert fs.stats.events[0].replayed_ops <= 2
    fs.close(fd)
    fs.unmount()


def test_nested_workload_survives_catalog(hooks=None):
    """The standard catalog armed at low probability over a long run."""
    from repro.faults import Injector, standard_catalog

    hooks = HookPoints()
    injector = Injector(hooks, seed=3)
    for spec in standard_catalog():
        if spec.bug_id in ("dirent-null-deref", "lookup-oob"):
            continue  # need poisoned names; not in this workload
        injector.arm(spec)
    device = formatted_device(16384)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    injector.retarget(fs.base)
    fs.on_reboot.append(injector.retarget)
    app = SimulatedApplication(fs, varmail_profile(), seed=41)
    stats = app.run(400)
    assert stats.runtime_failures == 0
    assert app.verify_all() == 0
    fs.unmount()
    assert Fsck(device).run().clean
