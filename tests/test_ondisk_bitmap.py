"""Tests for repro.ondisk.bitmap."""

import pytest

from repro.ondisk.bitmap import Bitmap
from repro.ondisk.layout import BLOCK_SIZE


def test_set_test_clear():
    bm = Bitmap(64)
    assert not bm.test(5)
    bm.set(5)
    assert bm.test(5)
    bm.clear(5)
    assert not bm.test(5)


def test_bounds_checked():
    bm = Bitmap(64)
    with pytest.raises(ValueError):
        bm.test(64)
    with pytest.raises(ValueError):
        bm.set(-1)
    with pytest.raises(ValueError):
        Bitmap(0)
    with pytest.raises(ValueError):
        Bitmap(BLOCK_SIZE * 8 + 1)


def test_find_free_wraps():
    bm = Bitmap(8)
    for bit in (0, 1, 2):
        bm.set(bit)
    assert bm.find_free(start=6) == 6
    bm = Bitmap(8)
    for bit in range(3, 8):
        bm.set(bit)
    assert bm.find_free(start=5) == 0  # wrapped


def test_find_free_full():
    bm = Bitmap(4)
    for bit in range(4):
        bm.set(bit)
    assert bm.find_free() is None


def test_find_free_run():
    bm = Bitmap(16)
    bm.set(3)
    assert bm.find_free_run(3) == 0
    assert bm.find_free_run(4) == 4
    assert bm.find_free_run(13) is None
    with pytest.raises(ValueError):
        bm.find_free_run(0)


def test_counts():
    bm = Bitmap(100)
    for bit in range(0, 100, 3):
        bm.set(bit)
    assert bm.count_set() == 34
    assert bm.count_free() == 66
    assert bm.set_bits() == list(range(0, 100, 3))


def test_serialization_roundtrip():
    bm = Bitmap(777)
    for bit in (0, 1, 776, 400):
        bm.set(bit)
    restored = Bitmap.from_block(777, bm.to_block())
    assert restored == bm
    assert restored.set_bits() == [0, 1, 400, 776]


def test_block_size_enforced():
    with pytest.raises(ValueError):
        Bitmap(64, data=b"short")


def test_copy_independent():
    bm = Bitmap(8)
    bm.set(1)
    other = bm.copy()
    other.set(2)
    assert not bm.test(2)
    assert other.test(1)


def test_equality_requires_same_nbits():
    a, b = Bitmap(8), Bitmap(9)
    assert a != b
