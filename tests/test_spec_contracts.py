"""Regression pins for the declared contract table.

``spec/contracts.py`` is the reviewable record of what every operation
may raise and do; these tests make the table impossible to drift
silently: a new ``Errno`` member, a new API op, or a renamed effect must
come with a contract decision or this file fails — long before the
static rules or a recovery would notice.
"""

from __future__ import annotations

import ast
import inspect

import pytest

from repro.analysis.contracts.summaries import EFFECT_NAMES as ANALYSIS_EFFECT_NAMES
from repro.api import OP_SIGNATURES, FilesystemAPI
from repro.errors import Errno
from repro.spec import contracts
from repro.spec.contracts import (
    EFFECT_NAMES,
    OP_CONTRACTS,
    UNASSIGNED_ERRNOS,
    all_contracts,
    contract_for,
)


class TestErrnoCoverage:
    def test_every_errno_is_assigned_or_argued_unassigned(self):
        assigned = {
            name
            for spec in OP_CONTRACTS.values()
            for name in (*spec["errnos"], *spec["shadow_extra"])
        }
        covered = assigned | set(UNASSIGNED_ERRNOS)
        missing = {member.name for member in Errno} - covered
        assert not missing, f"Errno members with no contract decision: {sorted(missing)}"

    def test_unassigned_errnos_are_real_members_and_truly_unassigned(self):
        assigned = {
            name
            for spec in OP_CONTRACTS.values()
            for name in (*spec["errnos"], *spec["shadow_extra"])
        }
        for name, reason in UNASSIGNED_ERRNOS.items():
            assert name in Errno.__members__
            assert reason.strip()
            assert name not in assigned, f"{name} is both assigned and 'unassigned'"

    def test_every_declared_errno_is_a_real_member(self):
        # contract_for raises KeyError on a typo'd errno name.
        table = all_contracts()
        assert set(table) == set(OP_CONTRACTS)
        for contract in table.values():
            assert contract.errnos <= set(Errno)
            assert contract.shadow_extra <= set(Errno)

    def test_shadow_extra_is_disjoint_from_base_errnos(self):
        for name, spec in OP_CONTRACTS.items():
            overlap = set(spec["errnos"]) & set(spec["shadow_extra"])
            assert not overlap, f"{name}: {sorted(overlap)} declared both base and shadow-extra"


class TestEffectVocabulary:
    def test_spec_vocabulary_matches_the_analyzer(self):
        assert set(EFFECT_NAMES) == set(ANALYSIS_EFFECT_NAMES)

    def test_all_declared_effects_are_in_vocabulary(self):
        for name, spec in OP_CONTRACTS.items():
            for field in ("effects", "shadow_effects"):
                unknown = set(spec[field]) - set(EFFECT_NAMES)
                assert not unknown, f"{name}.{field}: unknown effects {sorted(unknown)}"

    def test_shadow_never_declares_device_effects(self):
        for name, spec in OP_CONTRACTS.items():
            assert not set(spec["shadow_effects"]) & {"device-write", "device-flush"}, (
                f"{name}: the shadow may never touch the device (§3.2)"
            )


class TestOpCoverage:
    def test_every_recorded_op_has_a_contract(self):
        missing = set(OP_SIGNATURES) - set(OP_CONTRACTS)
        assert not missing, f"oplog-recorded ops with no contract: {sorted(missing)}"

    def test_every_contract_names_an_abstract_api_method(self):
        api_ops = set(FilesystemAPI.__abstractmethods__)
        unknown = set(OP_CONTRACTS) - api_ops
        assert not unknown, f"contracts for nonexistent ops: {sorted(unknown)}"

    def test_every_abstract_api_method_has_a_contract(self):
        missing = set(FilesystemAPI.__abstractmethods__) - set(OP_CONTRACTS)
        assert not missing, f"API ops with no contract: {sorted(missing)}"

    def test_non_mutating_ops_are_declared_read_only(self):
        for name, (_args, mutates) in OP_SIGNATURES.items():
            if not mutates:
                assert OP_CONTRACTS[name]["read_only"], (
                    f"{name} is non-mutating in OP_SIGNATURES but not read_only in its contract"
                )

    def test_read_only_ops_declare_no_cache_or_lock_effects(self):
        for name, spec in OP_CONTRACTS.items():
            if spec["read_only"]:
                forbidden = set(spec["effects"]) & {"cache-dirty", "lock-acquire"}
                assert not forbidden, f"read-only {name} declares {sorted(forbidden)}"


class TestTableShape:
    def test_table_is_a_pure_literal(self):
        # raelint extracts the table via ast.literal_eval; a computed
        # value would silently disable every contract rule.
        source = inspect.getsource(contracts)
        tree = ast.parse(source)
        assign = next(
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Name) and t.id == "OP_CONTRACTS" for t in node.targets)
        )
        assert ast.literal_eval(assign.value) == OP_CONTRACTS

    def test_every_entry_has_exactly_the_contract_fields(self):
        fields = {"errnos", "shadow_extra", "effects", "shadow_effects", "read_only"}
        for name, spec in OP_CONTRACTS.items():
            assert set(spec) == fields, f"{name}: fields {sorted(set(spec))}"

    def test_contract_for_shadow_errnos_is_the_union(self):
        fsync = contract_for("fsync")
        assert Errno.EINVAL in fsync.shadow_errnos
        assert Errno.EINVAL not in fsync.errnos
        assert fsync.shadow_errnos == fsync.errnos | fsync.shadow_extra

    def test_unknown_op_raises(self):
        with pytest.raises(KeyError):
            contract_for("mount")
