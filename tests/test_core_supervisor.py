"""Tests for RAEFilesystem: the supervisor facade."""

import pytest

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.core.detector import WarnPolicy
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import Errno, FsError, KernelBug, KernelWarning, RecoveryFailure
from repro.fsck import Fsck
from repro.ondisk.inode import FileType
from tests.conftest import formatted_device


def crash_on_name(hooks: HookPoints, substring: str, point: str = "dir.insert") -> None:
    def bug(point_name, ctx):
        if substring in str(ctx.get("name", "")):
            raise KernelBug(f"crash on {substring!r}", bug_id="test-bug")

    hooks.register(point, bug)


class TestCommonPath:
    def test_plain_operations_pass_through(self, rae):
        rae.mkdir("/a")
        fd = rae.open("/a/f", OpenFlags.CREAT)
        assert rae.write(fd, b"data") == 4
        rae.lseek(fd, 0, 0)
        assert rae.read(fd, 4) == b"data"
        rae.close(fd)
        assert rae.recovery_count == 0
        assert rae.stats.ops == 6

    def test_errnos_propagate_without_recovery(self, rae):
        with pytest.raises(FsError) as e:
            rae.rmdir("/missing")
        assert e.value.errno == Errno.ENOENT
        assert rae.recovery_count == 0

    def test_oplog_truncated_on_commit(self, rae):
        rae.mkdir("/a")
        assert len(rae.oplog) == 1
        fd = rae.open("/a/f", OpenFlags.CREAT)
        rae.fsync(fd)
        assert len(rae.oplog) == 1  # just the fsync record itself
        assert 3 in rae.oplog.fd_snapshot
        rae.close(fd)

    def test_non_mutations_not_recorded(self, rae):
        rae.mkdir("/a")
        before = len(rae.oplog)
        rae.stat("/a")
        rae.readdir("/")
        assert len(rae.oplog) == before

    def test_writeback_ticks_commit_periodically(self, device, hooks):
        from repro.basefs.writeback import WritebackPolicy

        rae = RAEFilesystem(
            device, RAEConfig(), hooks=hooks, writeback_policy=WritebackPolicy(commit_interval_ops=5)
        )
        for i in range(12):
            rae.mkdir(f"/d{i}")
        assert rae.base.stats.commits >= 2


class TestRecoveryFlow:
    def test_deterministic_bug_masked(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/fine")
        rae.mkdir("/evil-dir")  # crashes the base; RAE masks it
        assert rae.recovery_count == 1
        assert rae.stat("/evil-dir").ftype == FileType.DIRECTORY
        assert rae.readdir("/") == ["evil-dir", "fine"]

    def test_app_visible_result_from_autonomous_op(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        fd = rae.open("/evil.txt", OpenFlags.CREAT)  # open crashes on insert
        assert isinstance(fd, int) and fd == 3
        assert rae.write(fd, b"still works") == 11
        rae.close(fd)
        assert rae.recovery_count == 1

    def test_repeated_bug_recovers_each_time(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        for i in range(3):
            rae.mkdir(f"/evil{i}")
        assert rae.recovery_count == 3
        assert len(rae.readdir("/")) == 3

    def test_open_fds_survive_recovery(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        fd = rae.open("/keep", OpenFlags.CREAT)
        rae.write(fd, b"before crash")
        rae.mkdir("/evil")  # recovery
        assert rae.write(fd, b"+after") == 6
        rae.lseek(fd, 0, 0)
        assert rae.read(fd, 100) == b"before crash+after"
        rae.close(fd)

    def test_commit_after_recovery_truncates_log(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(commit_after_recovery=True), hooks=hooks)
        rae.mkdir("/a")
        rae.mkdir("/evil")
        assert len(rae.oplog) == 0

    def test_no_commit_after_recovery_keeps_window(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(commit_after_recovery=False), hooks=hooks)
        rae.mkdir("/a")
        rae.mkdir("/evil")
        # window = mkdir /a + the shadow-completed mkdir /evil
        assert len(rae.oplog) == 2
        # and a second recovery still works off that window
        rae.mkdir("/evil2")
        assert rae.recovery_count == 2
        assert rae.readdir("/") == ["a", "evil", "evil2"]

    def test_recovery_event_bookkeeping(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/evil")
        event = rae.stats.events[0]
        assert "test-bug" in event.detected or "crash" in event.detected
        assert event.total_seconds > 0
        assert rae.stats.recovery.successes == 1

    def test_durable_after_recovery_and_unmount(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/evil")
        rae.unmount()
        assert Fsck(device).run().clean
        from repro.basefs.filesystem import BaseFilesystem

        fs = BaseFilesystem(device)
        assert fs.readdir("/") == ["evil"]
        fs.unmount()

    def test_commit_path_error_recovers_without_inflight(self, device, hooks):
        fired = {"n": 0}

        def commit_bug(point, ctx):
            fired["n"] += 1
            if fired["n"] == 2:
                raise KernelBug("commit crash")

        hooks.register("journal.commit", commit_bug)
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/a")
        fd = rae.open("/a/f", OpenFlags.CREAT)
        rae.fsync(fd)  # commit #1 fires hook once
        rae.write(fd, b"x")
        rae.fsync(fd)  # commit #2 crashes -> recovery
        assert rae.recovery_count == 1
        rae.close(fd)
        assert rae.stat("/a/f").size == 1


class TestWarnPolicy:
    def arm_warn(self, hooks):
        def warn(point, ctx):
            if "warny" in str(ctx.get("name", "")):
                raise KernelWarning("WARN_ON hit", bug_id="warn-bug")

        hooks.register("dir.insert", warn)

    def test_warn_recover_policy(self, device, hooks):
        self.arm_warn(hooks)
        rae = RAEFilesystem(device, RAEConfig(warn_policy=WarnPolicy.RECOVER), hooks=hooks)
        rae.mkdir("/warny")
        assert rae.recovery_count == 1
        assert rae.stat("/warny").ftype == FileType.DIRECTORY

    def test_warn_ignore_policy_surfaces_eio(self, device, hooks):
        self.arm_warn(hooks)
        rae = RAEFilesystem(device, RAEConfig(warn_policy=WarnPolicy.IGNORE), hooks=hooks)
        with pytest.raises(FsError) as e:
            rae.mkdir("/warny")
        assert e.value.errno == Errno.EIO
        assert rae.recovery_count == 0


class TestValidateOnSync:
    def test_silent_corruption_caught_at_commit(self, device, hooks):
        from repro.faults import Injector, make_size_corruption_bug

        injector = Injector(hooks)
        injector.arm(make_size_corruption_bug(nth=2))
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        injector.retarget(rae.base)
        rae.on_reboot.append(injector.retarget)
        rae.mkdir("/a")  # dirty #1 (parent) + #2 (child) -> corrupted
        fd = rae.open("/a/f", OpenFlags.CREAT)
        rae.fsync(fd)  # validate-on-sync catches the corrupt size
        assert rae.recovery_count >= 1
        rae.close(fd)
        assert rae.stat("/a").size % 4096 == 0  # recovered, sane again


class TestIgnoredWarnScrub:
    """Regression: an ignored WARN leaves partial effects in base state.
    The supervisor must record the aborted op (EIO outcome) and commit at
    the WARN point, so a later recovery's replay window starts *after*
    the tainted state instead of silently missing it."""

    def arm_page_warn(self, hooks):
        armed = {"on": False}

        def warn(point, ctx):
            if armed["on"] and ctx.get("logical") == 1:
                raise KernelWarning("WARN_ON mid write", bug_id="warn-midwrite")

        hooks.register("page.write", warn)
        return armed

    def test_ignored_warn_then_bug_state_matches_base_view(self, device, hooks):
        armed = self.arm_page_warn(hooks)
        crash_on_name(hooks, "boom")
        rae = RAEFilesystem(device, RAEConfig(warn_policy=WarnPolicy.IGNORE), hooks=hooks)
        fd = rae.open("/f", OpenFlags.CREAT)
        rae.write(fd, b"a" * 8192)
        rae.fsync(fd)
        rae.lseek(fd, 0, 0)

        armed["on"] = True
        with pytest.raises(FsError) as e:
            rae.write(fd, b"b" * 8192)  # aborts midway: pages tainted
        assert e.value.errno == Errno.EIO
        armed["on"] = False
        assert rae.recovery_count == 0

        view = rae.read(fd, 8192)  # the application's view of the tainted state
        rae.lseek(fd, 0, 0)

        rae.mkdir("/boom")  # BUG mid-window -> full recovery, replaying the reads
        assert rae.recovery_count == 1
        assert rae.read(fd, 8192) == view  # post-recovery state matches the view
        rae.close(fd)
        rae.unmount()

        from repro.basefs.filesystem import BaseFilesystem

        base = BaseFilesystem(device)  # fresh mount: the view is durable too
        fd2 = base.open("/f", OpenFlags.NONE)
        assert base.read(fd2, 8192) == view
        base.unmount()

    def test_ignored_warn_commits_and_anchors_window(self, device, hooks):
        armed = self.arm_page_warn(hooks)
        rae = RAEFilesystem(device, RAEConfig(warn_policy=WarnPolicy.IGNORE), hooks=hooks)
        fd = rae.open("/f", OpenFlags.CREAT)
        rae.write(fd, b"a" * 8192)
        rae.lseek(fd, 0, 0)
        commits = rae.base.stats.commits
        recorded = rae.oplog.stats.recorded

        armed["on"] = True
        with pytest.raises(FsError):
            rae.write(fd, b"b" * 8192)
        armed["on"] = False

        # The aborted op was recorded (EIO outcome), then the scrub commit
        # re-anchored the window after the partial effects.
        assert rae.oplog.stats.recorded == recorded + 1
        assert rae.base.stats.commits == commits + 1
        assert len(rae.oplog) == 0
        rae.close(fd)


class TestRecoveryFailureTimings:
    """Regression: failed recoveries used to contribute attempts but no
    timings, skewing the §4.3 per-phase averages toward successes."""

    def test_note_failure_records_phase_and_partials(self):
        from repro.core.recovery import RecoveryStats

        stats = RecoveryStats()
        stats.note_failure("replay", {"reboot": 0.25, "replay": 0.5})
        assert stats.failure_phases == ["replay"]
        assert stats.reboot_seconds == [0.25]
        assert stats.replay_seconds == [0.5]
        assert stats.handoff_seconds == [0.0]
        assert stats.total_seconds == [pytest.approx(0.75)]
        assert stats.mean_seconds()["total"] == pytest.approx(0.75)

    def test_failed_recovery_contributes_timings(self, device, hooks, monkeypatch):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)

        def failing_run_recovery(*args, **kwargs):
            exc = RecoveryFailure("shadow died", phase="replay")
            exc.phase_seconds = {"reboot": 0.01, "replay": 0.02}
            raise exc

        monkeypatch.setattr("repro.core.supervisor.run_recovery", failing_run_recovery)
        with pytest.raises(RecoveryFailure):
            rae.mkdir("/evil-dir")
        stats = rae.stats.recovery
        assert stats.attempts == 1
        assert stats.failures == 1
        assert stats.successes == 0
        assert stats.failure_phases == ["replay"]
        assert stats.reboot_seconds == [0.01]
        assert stats.replay_seconds == [0.02]
        assert stats.total_seconds == [pytest.approx(0.03)]
        assert "failed recoveries by phase: replay" in rae.report()

    def test_genuine_failure_carries_phase_seconds(self, device):
        """A real cross-check failure: the recorded outcome cannot match
        replay, and the raised failure carries partial phase timings."""
        from repro.api import OpResult, op
        from repro.basefs.filesystem import BaseFilesystem
        from repro.core.oplog import OpLog
        from repro.core.recovery import run_recovery

        base = BaseFilesystem(device)
        log = OpLog()
        log.truncate(base.fd_table.snapshot())
        log.record(1, op("readdir", path="/"), OpResult(value=["ghost"]))
        with pytest.raises(RecoveryFailure) as e:
            run_recovery(base, device, log, None)
        assert e.value.phase_seconds["reboot"] > 0
        assert e.value.phase_seconds["replay"] > 0
        assert e.value.phase_seconds["handoff"] == 0.0


class TestBoundedEventHistory:
    def test_event_ring_bounded_counts_cumulative(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(event_history_limit=2), hooks=hooks)
        for index in range(4):
            rae.mkdir(f"/evil{index}")
        assert rae.recovery_count == 4  # cumulative count survives eviction
        assert len(rae.stats.events) == 2
        assert rae.stats.events.maxlen == 2
        report = rae.report()
        assert "keeping 2/2 recovery events" in report

    def test_detector_cap_flows_from_config(self, device, hooks):
        rae = RAEFilesystem(device, RAEConfig(detector_history_limit=5), hooks=hooks)
        assert rae.detector.history.maxlen == 5
        assert "5 detections" in rae.report()
