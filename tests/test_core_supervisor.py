"""Tests for RAEFilesystem: the supervisor facade."""

import pytest

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.core.detector import WarnPolicy
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import Errno, FsError, KernelBug, KernelWarning, RecoveryFailure
from repro.fsck import Fsck
from repro.ondisk.inode import FileType
from tests.conftest import formatted_device


def crash_on_name(hooks: HookPoints, substring: str, point: str = "dir.insert") -> None:
    def bug(point_name, ctx):
        if substring in str(ctx.get("name", "")):
            raise KernelBug(f"crash on {substring!r}", bug_id="test-bug")

    hooks.register(point, bug)


class TestCommonPath:
    def test_plain_operations_pass_through(self, rae):
        rae.mkdir("/a")
        fd = rae.open("/a/f", OpenFlags.CREAT)
        assert rae.write(fd, b"data") == 4
        rae.lseek(fd, 0, 0)
        assert rae.read(fd, 4) == b"data"
        rae.close(fd)
        assert rae.recovery_count == 0
        assert rae.stats.ops == 6

    def test_errnos_propagate_without_recovery(self, rae):
        with pytest.raises(FsError) as e:
            rae.rmdir("/missing")
        assert e.value.errno == Errno.ENOENT
        assert rae.recovery_count == 0

    def test_oplog_truncated_on_commit(self, rae):
        rae.mkdir("/a")
        assert len(rae.oplog) == 1
        fd = rae.open("/a/f", OpenFlags.CREAT)
        rae.fsync(fd)
        assert len(rae.oplog) == 1  # just the fsync record itself
        assert 3 in rae.oplog.fd_snapshot
        rae.close(fd)

    def test_non_mutations_not_recorded(self, rae):
        rae.mkdir("/a")
        before = len(rae.oplog)
        rae.stat("/a")
        rae.readdir("/")
        assert len(rae.oplog) == before

    def test_writeback_ticks_commit_periodically(self, device, hooks):
        from repro.basefs.writeback import WritebackPolicy

        rae = RAEFilesystem(
            device, RAEConfig(), hooks=hooks, writeback_policy=WritebackPolicy(commit_interval_ops=5)
        )
        for i in range(12):
            rae.mkdir(f"/d{i}")
        assert rae.base.stats.commits >= 2


class TestRecoveryFlow:
    def test_deterministic_bug_masked(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/fine")
        rae.mkdir("/evil-dir")  # crashes the base; RAE masks it
        assert rae.recovery_count == 1
        assert rae.stat("/evil-dir").ftype == FileType.DIRECTORY
        assert rae.readdir("/") == ["evil-dir", "fine"]

    def test_app_visible_result_from_autonomous_op(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        fd = rae.open("/evil.txt", OpenFlags.CREAT)  # open crashes on insert
        assert isinstance(fd, int) and fd == 3
        assert rae.write(fd, b"still works") == 11
        rae.close(fd)
        assert rae.recovery_count == 1

    def test_repeated_bug_recovers_each_time(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        for i in range(3):
            rae.mkdir(f"/evil{i}")
        assert rae.recovery_count == 3
        assert len(rae.readdir("/")) == 3

    def test_open_fds_survive_recovery(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        fd = rae.open("/keep", OpenFlags.CREAT)
        rae.write(fd, b"before crash")
        rae.mkdir("/evil")  # recovery
        assert rae.write(fd, b"+after") == 6
        rae.lseek(fd, 0, 0)
        assert rae.read(fd, 100) == b"before crash+after"
        rae.close(fd)

    def test_commit_after_recovery_truncates_log(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(commit_after_recovery=True), hooks=hooks)
        rae.mkdir("/a")
        rae.mkdir("/evil")
        assert len(rae.oplog) == 0

    def test_no_commit_after_recovery_keeps_window(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(commit_after_recovery=False), hooks=hooks)
        rae.mkdir("/a")
        rae.mkdir("/evil")
        # window = mkdir /a + the shadow-completed mkdir /evil
        assert len(rae.oplog) == 2
        # and a second recovery still works off that window
        rae.mkdir("/evil2")
        assert rae.recovery_count == 2
        assert rae.readdir("/") == ["a", "evil", "evil2"]

    def test_recovery_event_bookkeeping(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/evil")
        event = rae.stats.events[0]
        assert "test-bug" in event.detected or "crash" in event.detected
        assert event.total_seconds > 0
        assert rae.stats.recovery.successes == 1

    def test_durable_after_recovery_and_unmount(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/evil")
        rae.unmount()
        assert Fsck(device).run().clean
        from repro.basefs.filesystem import BaseFilesystem

        fs = BaseFilesystem(device)
        assert fs.readdir("/") == ["evil"]
        fs.unmount()

    def test_commit_path_error_recovers_without_inflight(self, device, hooks):
        fired = {"n": 0}

        def commit_bug(point, ctx):
            fired["n"] += 1
            if fired["n"] == 2:
                raise KernelBug("commit crash")

        hooks.register("journal.commit", commit_bug)
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/a")
        fd = rae.open("/a/f", OpenFlags.CREAT)
        rae.fsync(fd)  # commit #1 fires hook once
        rae.write(fd, b"x")
        rae.fsync(fd)  # commit #2 crashes -> recovery
        assert rae.recovery_count == 1
        rae.close(fd)
        assert rae.stat("/a/f").size == 1


class TestWarnPolicy:
    def arm_warn(self, hooks):
        def warn(point, ctx):
            if "warny" in str(ctx.get("name", "")):
                raise KernelWarning("WARN_ON hit", bug_id="warn-bug")

        hooks.register("dir.insert", warn)

    def test_warn_recover_policy(self, device, hooks):
        self.arm_warn(hooks)
        rae = RAEFilesystem(device, RAEConfig(warn_policy=WarnPolicy.RECOVER), hooks=hooks)
        rae.mkdir("/warny")
        assert rae.recovery_count == 1
        assert rae.stat("/warny").ftype == FileType.DIRECTORY

    def test_warn_ignore_policy_surfaces_eio(self, device, hooks):
        self.arm_warn(hooks)
        rae = RAEFilesystem(device, RAEConfig(warn_policy=WarnPolicy.IGNORE), hooks=hooks)
        with pytest.raises(FsError) as e:
            rae.mkdir("/warny")
        assert e.value.errno == Errno.EIO
        assert rae.recovery_count == 0


class TestValidateOnSync:
    def test_silent_corruption_caught_at_commit(self, device, hooks):
        from repro.faults import Injector, make_size_corruption_bug

        injector = Injector(hooks)
        injector.arm(make_size_corruption_bug(nth=2))
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        injector.retarget(rae.base)
        rae.on_reboot.append(injector.retarget)
        rae.mkdir("/a")  # dirty #1 (parent) + #2 (child) -> corrupted
        fd = rae.open("/a/f", OpenFlags.CREAT)
        rae.fsync(fd)  # validate-on-sync catches the corrupt size
        assert rae.recovery_count >= 1
        rae.close(fd)
        assert rae.stat("/a").size % 4096 == 0  # recovered, sane again
