"""Tests for repro.blockdev.device."""

import os

import pytest

from repro.blockdev.device import (
    CountingDevice,
    FileBlockDevice,
    MemoryBlockDevice,
    WriteFencedDevice,
)
from repro.errors import DeviceError, ShadowWriteAttempt

BS = 4096


def test_memory_device_roundtrip():
    dev = MemoryBlockDevice(block_count=8)
    data = bytes(range(256)) * 16
    dev.write_block(3, data)
    assert dev.read_block(3) == data
    assert dev.read_block(4) == b"\x00" * BS


def test_memory_device_rejects_bad_geometry():
    with pytest.raises(ValueError):
        MemoryBlockDevice(block_size=1000)
    with pytest.raises(ValueError):
        MemoryBlockDevice(block_count=0)


def test_memory_device_bounds():
    dev = MemoryBlockDevice(block_count=4)
    with pytest.raises(DeviceError):
        dev.read_block(4)
    with pytest.raises(DeviceError):
        dev.write_block(-1, b"\x00" * BS)


def test_memory_device_rejects_short_write():
    dev = MemoryBlockDevice(block_count=4)
    with pytest.raises(DeviceError):
        dev.write_block(0, b"short")


def test_memory_device_close_fences_io():
    dev = MemoryBlockDevice(block_count=4)
    dev.close()
    with pytest.raises(DeviceError):
        dev.read_block(0)
    with pytest.raises(DeviceError):
        dev.write_block(0, b"\x00" * BS)


def test_durability_crash_discards_unflushed():
    dev = MemoryBlockDevice(block_count=4, track_durability=True)
    dev.write_block(1, b"a" * BS)
    dev.flush()
    dev.write_block(1, b"b" * BS)
    dev.write_block(2, b"c" * BS)
    dev.crash()
    assert dev.read_block(1) == b"a" * BS
    assert dev.read_block(2) == b"\x00" * BS


def test_durability_crash_requires_tracking():
    dev = MemoryBlockDevice(block_count=4)
    with pytest.raises(DeviceError):
        dev.crash()


def test_snapshot_restore():
    dev = MemoryBlockDevice(block_count=4)
    dev.write_block(0, b"x" * BS)
    image = dev.snapshot()
    dev.write_block(0, b"y" * BS)
    dev.restore(image)
    assert dev.read_block(0) == b"x" * BS


def test_restore_rejects_wrong_size():
    dev = MemoryBlockDevice(block_count=4)
    with pytest.raises(DeviceError):
        dev.restore(b"tiny")


def test_file_device_roundtrip(tmp_path):
    path = tmp_path / "img"
    dev = FileBlockDevice(path, block_count=8)
    dev.write_block(5, b"z" * BS)
    dev.flush()
    dev.close()
    dev2 = FileBlockDevice(path, block_count=8, readonly=True)
    assert dev2.read_block(5) == b"z" * BS
    dev2.close()


def test_file_device_readonly_rejects_writes(tmp_path):
    path = tmp_path / "img"
    FileBlockDevice(path, block_count=4).close()
    dev = FileBlockDevice(path, block_count=4, readonly=True)
    with pytest.raises(DeviceError):
        dev.write_block(0, b"\x00" * BS)
    dev.flush()  # no-op on a read-only device
    dev.close()


def test_file_device_zero_fills_short_file(tmp_path):
    path = tmp_path / "img"
    path.write_bytes(b"abc")
    dev = FileBlockDevice(path, block_count=4, readonly=True)
    assert dev.read_block(0)[:3] == b"abc"
    assert dev.read_block(3) == b"\x00" * BS
    dev.close()


def test_write_fence_blocks_all_mutation():
    inner = MemoryBlockDevice(block_count=4)
    inner.write_block(1, b"q" * BS)
    fence = WriteFencedDevice(inner)
    assert fence.read_block(1) == b"q" * BS
    with pytest.raises(ShadowWriteAttempt):
        fence.write_block(1, b"r" * BS)
    with pytest.raises(ShadowWriteAttempt):
        fence.flush()
    assert inner.read_block(1) == b"q" * BS


def test_counting_device_counts():
    inner = MemoryBlockDevice(block_count=4)
    dev = CountingDevice(inner)
    dev.write_block(1, b"a" * BS)
    dev.read_block(1)
    dev.read_block(2)
    dev.flush()
    assert (dev.reads, dev.writes, dev.flushes) == (2, 1, 1)
    assert dev.blocks_read == [1, 2]
    assert dev.blocks_written == [1]
    dev.reset_counts()
    assert (dev.reads, dev.writes, dev.flushes) == (0, 0, 0)
