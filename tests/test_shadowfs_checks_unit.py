"""Unit tests for each of the shadow's runtime checks in isolation."""

import pytest

from repro.errors import InvariantViolation
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import FileType, MAX_FILE_SIZE, OnDiskInode, make_mode
from repro.ondisk.layout import BLOCK_SIZE, DiskLayout
from repro.ondisk.superblock import Superblock
from repro.shadowfs.checks import CheckLevel, ShadowChecks


@pytest.fixture
def layout():
    return DiskLayout(block_count=4096)


def full(layout):
    return ShadowChecks(layout, level=CheckLevel.FULL)


def basic(layout):
    return ShadowChecks(layout, level=CheckLevel.BASIC)


def off(layout):
    return ShadowChecks(layout, level=CheckLevel.OFF)


def good_inode() -> OnDiskInode:
    return OnDiskInode(mode=make_mode(FileType.REGULAR, 0o644), nlink=1, size=10)


class TestInodeChecks:
    def test_valid_inode_passes(self, layout):
        full(layout).inode(5, good_inode())

    def test_free_inode_rejected(self, layout):
        with pytest.raises(InvariantViolation, match="free"):
            basic(layout).inode(5, OnDiskInode())

    def test_invalid_type_rejected(self, layout):
        inode = good_inode()
        inode.mode = 9 << 12
        with pytest.raises(InvariantViolation, match="invalid type"):
            basic(layout).inode(5, inode)

    def test_oversize_rejected(self, layout):
        inode = good_inode()
        inode.size = MAX_FILE_SIZE + 1
        with pytest.raises(InvariantViolation, match="exceeds maximum"):
            basic(layout).inode(5, inode)

    def test_unaligned_dir_size_rejected(self, layout):
        inode = OnDiskInode(mode=make_mode(FileType.DIRECTORY), nlink=2, size=100)
        with pytest.raises(InvariantViolation, match="unaligned"):
            basic(layout).inode(5, inode)

    def test_symlink_size_bounds(self, layout):
        inode = OnDiskInode(mode=make_mode(FileType.SYMLINK), nlink=1, size=BLOCK_SIZE)
        with pytest.raises(InvariantViolation):
            basic(layout).inode(5, inode)

    def test_zero_nlink_needs_orphan_permission(self, layout):
        inode = good_inode()
        inode.nlink = 0
        with pytest.raises(InvariantViolation, match="zero links"):
            basic(layout).inode(5, inode)
        basic(layout).inode(5, inode, allow_orphan=True)

    def test_bad_pointer_rejected(self, layout):
        inode = good_inode()
        inode.direct[0] = layout.block_count + 5
        with pytest.raises(InvariantViolation, match="out-of-range"):
            basic(layout).inode(5, inode)
        inode.direct[0] = 0  # hole is fine
        basic(layout).inode(5, inode)
        inode.indirect = layout.inode_table_start(0)  # metadata block
        with pytest.raises(InvariantViolation, match="metadata"):
            basic(layout).inode(5, inode)

    def test_off_level_skips_everything(self, layout):
        checks = off(layout)
        checks.inode(5, OnDiskInode())  # would fail at BASIC
        assert checks.stats.checks_run == 0


class TestCrossStructureChecks:
    def test_block_allocated_full_only(self, layout):
        allocated = {10}
        full(layout).block_allocated(10, lambda b: b in allocated)
        with pytest.raises(InvariantViolation):
            full(layout).block_allocated(11, lambda b: b in allocated)
        basic(layout).block_allocated(11, lambda b: b in allocated)  # no-op at BASIC

    def test_ino_allocated(self, layout):
        with pytest.raises(InvariantViolation):
            full(layout).ino_allocated(5, lambda i: False)

    def test_superblock_counts(self, layout):
        sb = Superblock(
            block_size=BLOCK_SIZE, block_count=4096, blocks_per_group=1024,
            inodes_per_group=256, journal_blocks=64, free_blocks=100,
            free_inodes=50, root_ino=2,
        )
        full(layout).superblock_counts(sb, 100, 50)
        with pytest.raises(InvariantViolation, match="free_blocks"):
            full(layout).superblock_counts(sb, 99, 50)
        with pytest.raises(InvariantViolation, match="free_inodes"):
            full(layout).superblock_counts(sb, 100, 49)


class TestDirChecks:
    def test_valid_dir_block(self, layout):
        block = DirBlock()
        block.insert(2, "x", FileType.REGULAR)
        basic(layout).dir_block(2, 200, block.to_block())

    def test_malformed_dir_block(self, layout):
        raw = bytearray(DirBlock().to_block())
        raw[4:6] = (2).to_bytes(2, "little")
        with pytest.raises(InvariantViolation, match="malformed"):
            basic(layout).dir_block(2, 200, bytes(raw))

    def test_out_of_range_entry_ino(self, layout):
        block = DirBlock()
        block.insert(999999, "x", FileType.REGULAR)
        with pytest.raises(InvariantViolation, match="points at inode"):
            basic(layout).dir_block(2, 200, block.to_block())

    def test_dots_required(self, layout):
        with pytest.raises(InvariantViolation, match="lacks"):
            basic(layout).dir_has_dots(2, {"only-this"})
        basic(layout).dir_has_dots(2, {".", "..", "a"})


class TestInputAndFdChecks:
    def test_input_type_validation(self, layout):
        checks = basic(layout)
        checks.input_op("mkdir", {"path": "/a", "perms": 0o755})
        with pytest.raises(InvariantViolation):
            checks.input_op("mkdir", {"path": 5})
        with pytest.raises(InvariantViolation):
            checks.input_op("read", {"fd": "three", "length": 4})
        with pytest.raises(InvariantViolation):
            checks.input_op("write", {"fd": 3, "data": "not-bytes"})

    def test_fd_state_validation(self, layout):
        checks = basic(layout)
        checks.fd_state(3, 2, 0)
        with pytest.raises(InvariantViolation):
            checks.fd_state(1, 2, 0)
        with pytest.raises(InvariantViolation):
            checks.fd_state(3, 0, 0)
        with pytest.raises(InvariantViolation):
            checks.fd_state(3, 2, -1)

    def test_stats_accumulate(self, layout):
        checks = full(layout)
        checks.inode(5, good_inode())
        checks.dir_has_dots(2, {".", ".."})
        assert checks.stats.checks_run >= 2
        assert checks.stats.by_name.get("inode") == 1
