"""The commute rule family (COMMUTE-PARITY / SHARD-FOOTPRINT /
REPLAY-ISOLATION) on seeded synthetic trees, plus the replay-matrix
surface and its CLI.

Mutation-style validation, mirroring test_persistence_rules: each rule
fires on seeded commutativity bugs with the right file/line witness and
stays silent on the clean twin; the declared-spec machinery (component
vocabulary, sanctions, config errors) behaves per
docs/STATIC_ANALYSIS.md; the committed ``replaymatrix.json`` is pinned
to what the tree regenerates; and ``--select`` family names and the
full-tree emitter discipline are covered.
"""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_tree
from repro.analysis.cli import main as raelint_main
from repro.analysis.commute import (
    CommuteConfigError,
    build_replay_matrix,
    model_for,
    render_replay_matrix,
    validate_replay_matrix,
)
from repro.analysis.engine import ParsedModule
from repro.analysis.rules import (
    RULE_CLASSES,
    CommuteParityRule,
    ReplayIsolationRule,
    ShardFootprintRule,
    rule_families,
)

REPO = Path(__file__).resolve().parent.parent


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def parse_tree(files: dict[str, str]) -> list[ParsedModule]:
    return [ParsedModule.parse(path, textwrap.dedent(src)) for path, src in files.items()]


def rule_ids(report) -> list[str]:
    return [finding.rule_id for finding in report.findings]


def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@example.com", *args],
        cwd=cwd, check=True, capture_output=True, text=True,
    )


#: Two-component vocabulary, two keyed ops, every conflict argued, and
#: DECLARED_FOOTPRINTS matching what the clean fs below infers.
CLEAN_SPEC = """
    STATE_COMPONENTS = {
        "dentry-namespace": "directory entries",
        "inode-table": "inode slots",
    }
    PATH_KEYED_COMPONENTS = ("dentry-namespace",)
    REPLAY_ROOTS = {
        "mkdir": {"entry": "Shadow.mkdir", "path_args": ("path",)},
        "unlink": {"entry": "Shadow.unlink", "path_args": ("path",)},
    }
    COMPONENT_ACCESSORS = {
        "_dir_insert": ("dentry-namespace", "write"),
        "_dir_remove": ("dentry-namespace", "write"),
        "_iput": ("inode-table", "write"),
    }
    COMMUTE_SANCTIONS = {
        "inode-table": {
            "resolution": "commutes",
            "why": "slot updates are per-inode and replay pins inode numbers",
        },
    }
    DECLARED_FOOTPRINTS = {
        "mkdir": {"reads": (), "writes": ("dentry-namespace<path>", "inode-table")},
        "unlink": {"reads": (), "writes": ("dentry-namespace<path>", "inode-table")},
    }
"""

CLEAN_FS = """
    class Shadow:
        def mkdir(self, path):
            self._dir_insert(path)
            self._iput(path)

        def unlink(self, path):
            self._dir_remove(path)
            self._iput(path)

        def _dir_insert(self, path):
            pass

        def _dir_remove(self, path):
            pass

        def _iput(self, path):
            pass
"""


# ---------------------------------------------------------------------------
# COMMUTE-PARITY


class TestCommuteParity:
    def test_clean_tree_is_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": CLEAN_FS,
        })
        report = analyze_tree(root, rules=[CommuteParityRule()])
        assert rule_ids(report) == []

    def test_no_spec_is_silent(self, tmp_path):
        root = write_tree(tmp_path, {"shadowfs/fs.py": CLEAN_FS})
        report = analyze_tree(root, rules=[CommuteParityRule()])
        assert rule_ids(report) == []

    def test_inferred_but_undeclared_instance_fires_at_the_access(self, tmp_path):
        # mkdir grows a dentry write through a second accessor the
        # reviewed footprint never listed... except the instance is the
        # same; instead grow an *inode-table* access in unlink only, and
        # shrink its declaration.
        spec = CLEAN_SPEC.replace(
            '"unlink": {"reads": (), "writes": ("dentry-namespace<path>", "inode-table")},',
            '"unlink": {"reads": (), "writes": ("dentry-namespace<path>",)},',
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": spec,
            "shadowfs/fs.py": CLEAN_FS,
        })
        report = analyze_tree(root, rules=[CommuteParityRule()])
        assert rule_ids(report) == ["COMMUTE-PARITY"]
        finding = report.findings[0]
        assert finding.path == "shadowfs/fs.py"
        assert "'unlink'" in finding.message
        assert "'inode-table'" in finding.message
        assert "does not declare it" in finding.message
        # The witness carries the call chain from the op root.
        assert "Shadow.unlink" in finding.message

    def test_declared_but_uninferred_instance_fires_at_the_spec(self, tmp_path):
        fs = CLEAN_FS.replace(
            "def unlink(self, path):\n"
            "            self._dir_remove(path)\n"
            "            self._iput(path)",
            "def unlink(self, path):\n"
            "            self._dir_remove(path)",
        )
        assert fs != CLEAN_FS
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": fs,
        })
        report = analyze_tree(root, rules=[CommuteParityRule()])
        assert rule_ids(report) == ["COMMUTE-PARITY"]
        finding = report.findings[0]
        assert finding.path == "spec/commute.py"
        assert "stale" in finding.message
        assert "'inode-table'" in finding.message

    def test_op_missing_from_declared_footprints_fires(self, tmp_path):
        spec = CLEAN_SPEC.replace(
            '"unlink": {"reads": (), "writes": ("dentry-namespace<path>", "inode-table")},',
            "",
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": spec,
            "shadowfs/fs.py": CLEAN_FS,
        })
        report = analyze_tree(root, rules=[CommuteParityRule()])
        assert rule_ids(report) == ["COMMUTE-PARITY"]
        finding = report.findings[0]
        assert finding.path == "shadowfs/fs.py"
        assert "never" in finding.message and "reviewed" in finding.message

    def test_unsanctioned_hard_conflict_fires(self, tmp_path):
        # Drop the inode-table sanction: every pair now collides
        # write-write on an unkeyed component with no argument.
        spec = CLEAN_SPEC.replace(
            """\
    COMMUTE_SANCTIONS = {
        "inode-table": {
            "resolution": "commutes",
            "why": "slot updates are per-inode and replay pins inode numbers",
        },
    }
""",
            "",
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": spec,
            "shadowfs/fs.py": CLEAN_FS,
        })
        report = analyze_tree(root, rules=[CommuteParityRule()])
        assert set(rule_ids(report)) == {"COMMUTE-PARITY"}
        messages = [f.message for f in report.findings]
        assert any(
            "conflict on 'inode-table' with no COMMUTE_SANCTIONS entry" in m
            for m in messages
        )


# ---------------------------------------------------------------------------
# SHARD-FOOTPRINT


class TestShardFootprint:
    def test_unclassifiable_write_fires_with_chain(self, tmp_path):
        fs = CLEAN_FS.replace(
            "self._iput(path)\n\n        def unlink",
            "self._iput(path)\n            self.scoreboard[path] = 1\n\n        def unlink",
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": fs,
        })
        report = analyze_tree(root, rules=[ShardFootprintRule()])
        assert rule_ids(report) == ["SHARD-FOOTPRINT"]
        finding = report.findings[0]
        assert finding.path == "shadowfs/fs.py"
        assert "self.scoreboard[path]" in finding.message
        assert "Shadow.mkdir" in finding.message
        assert "spec/commute.py" in finding.message  # the remediation hint

    def test_scratch_attr_exemption_silences(self, tmp_path):
        spec = CLEAN_SPEC + (
            '    SCRATCH_ATTRS = {"scoreboard": "diagnostics only; never replayed"}\n'
        )
        fs = CLEAN_FS.replace(
            "self._iput(path)\n\n        def unlink",
            "self._iput(path)\n            self.scoreboard[path] = 1\n\n        def unlink",
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": spec,
            "shadowfs/fs.py": fs,
        })
        report = analyze_tree(root, rules=[ShardFootprintRule()])
        assert rule_ids(report) == []

    def test_clean_tree_is_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": CLEAN_FS,
        })
        report = analyze_tree(root, rules=[ShardFootprintRule()])
        assert rule_ids(report) == []


# ---------------------------------------------------------------------------
# REPLAY-ISOLATION


class TestReplayIsolation:
    def test_module_level_mutation_fires(self, tmp_path):
        fs = "SEEN = {}\n\n" + textwrap.dedent(CLEAN_FS).replace(
            "self._iput(path)\n\n    def unlink",
            "self._iput(path)\n        SEEN[path] = 1\n\n    def unlink",
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": fs,
        })
        report = analyze_tree(root, rules=[ReplayIsolationRule()])
        assert rule_ids(report) == ["REPLAY-ISOLATION"]
        finding = report.findings[0]
        assert "'SEEN'" in finding.message
        assert "Shadow.mkdir" in finding.message

    def test_global_declaration_fires(self, tmp_path):
        fs = CLEAN_FS.replace(
            "def _iput(self, path):\n            pass",
            "def _iput(self, path):\n            global COUNT\n            COUNT = 1",
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": fs,
        })
        report = analyze_tree(root, rules=[ReplayIsolationRule()])
        assert rule_ids(report) == ["REPLAY-ISOLATION"]
        assert "global COUNT" in report.findings[0].message

    def test_clean_tree_is_silent(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": CLEAN_FS,
        })
        report = analyze_tree(root, rules=[ReplayIsolationRule()])
        assert rule_ids(report) == []


# ---------------------------------------------------------------------------
# declared-spec config errors (exit 2, not findings)


class TestCommuteConfigErrors:
    def test_unknown_component_in_accessor_raises(self):
        modules = parse_tree({
            "spec/commute.py": CLEAN_SPEC.replace(
                '"_iput": ("inode-table", "write"),',
                '"_iput": ("ghost-component", "write"),',
            ),
            "shadowfs/fs.py": CLEAN_FS,
        })
        with pytest.raises(CommuteConfigError, match="ghost-component"):
            model_for(modules)

    def test_unbindable_root_raises(self):
        modules = parse_tree({
            "spec/commute.py": CLEAN_SPEC.replace("Shadow.unlink", "Shadow.vanish"),
            "shadowfs/fs.py": CLEAN_FS,
        })
        with pytest.raises(CommuteConfigError, match="Shadow.vanish.*matches no"):
            model_for(modules)

    def test_stale_sanction_raises(self):
        spec = CLEAN_SPEC.replace(
            '"inode-table": "inode slots",',
            '"inode-table": "inode slots",\n        "journal": "never touched",',
        ).replace(
            "COMMUTE_SANCTIONS = {",
            'COMMUTE_SANCTIONS = {\n        "journal": {"resolution": "serialize", "why": "x"},',
        )
        modules = parse_tree({
            "spec/commute.py": spec,
            "shadowfs/fs.py": CLEAN_FS,
        })
        with pytest.raises(CommuteConfigError, match="journal.*stale"):
            model_for(modules)

    def test_footprint_for_unknown_op_raises(self):
        spec = CLEAN_SPEC.replace(
            '"mkdir": {"reads": (), "writes": ("dentry-namespace<path>", "inode-table")},',
            '"mkdir": {"reads": (), "writes": ("dentry-namespace<path>", "inode-table")},\n'
            '        "mount": {"reads": (), "writes": ()},',
        )
        modules = parse_tree({
            "spec/commute.py": spec,
            "shadowfs/fs.py": CLEAN_FS,
        })
        with pytest.raises(CommuteConfigError, match="mount"):
            model_for(modules)

    def test_cli_reports_spec_error_as_exit_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC.replace("Shadow.unlink", "Shadow.vanish"),
            "shadowfs/fs.py": CLEAN_FS,
        })
        assert raelint_main([str(root)]) == 2
        err = capsys.readouterr().err
        assert "commute spec error" in err
        assert "Shadow.vanish" in err
        assert "spec/commute.py" in err


# ---------------------------------------------------------------------------
# the replay matrix surface


class TestReplayMatrixSurface:
    def _model(self):
        modules = parse_tree({
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": CLEAN_FS,
        })
        return model_for(modules)

    def test_structure_verdicts_and_determinism(self):
        model = self._model()
        payload = build_replay_matrix(model)
        validate_replay_matrix(payload)
        assert set(payload["ops"]) == {"mkdir", "unlink"}
        assert set(payload["pairs"]) == {"mkdir|mkdir", "mkdir|unlink", "unlink|unlink"}
        pair = payload["pairs"]["mkdir|unlink"]
        # Keyed dentry collision -> conditional; inode-table argued away.
        assert pair["verdict"] == "conditional-on-disjoint-subtree"
        classes = {c["component"]: c["class"] for c in pair["conflicts"]}
        assert classes == {
            "dentry-namespace": "conditional",
            "inode-table": "sanctioned-commutes",
        }
        sanctioned = [c for c in pair["conflicts"] if c["component"] == "inode-table"]
        assert sanctioned[0]["sanction"] == "inode-table"
        assert payload["sanctions"]["inode-table"]["resolution"] == "commutes"
        # Every footprint instance carries a file:line witness + chain.
        mkdir = payload["ops"]["mkdir"]
        assert mkdir["writes"] == ["dentry-namespace<path>", "inode-table"]
        witness = mkdir["witnesses"]["write:inode-table"]
        assert witness["site"].startswith("shadowfs/fs.py:")
        assert "Shadow.mkdir" in witness["chain"]
        # Byte determinism.
        rendered = render_replay_matrix(payload)
        assert rendered == render_replay_matrix(build_replay_matrix(self._model()))
        validate_replay_matrix(json.loads(rendered))

    def test_serialize_sanction_forces_conflict(self):
        modules = parse_tree({
            "spec/commute.py": CLEAN_SPEC.replace('"commutes"', '"serialize"'),
            "shadowfs/fs.py": CLEAN_FS,
        })
        payload = build_replay_matrix(model_for(modules))
        validate_replay_matrix(payload)
        assert payload["pairs"]["mkdir|unlink"]["verdict"] == "conflict"

    def test_validator_rejects_tampering(self):
        payload = build_replay_matrix(self._model())
        bad = json.loads(json.dumps(payload))
        bad["pairs"]["mkdir|unlink"]["verdict"] = "commute"
        bad["pairs"]["mkdir|unlink"]["condition"] = None
        with pytest.raises(ValueError, match="inconsistent"):
            validate_replay_matrix(bad)
        bad = json.loads(json.dumps(payload))
        bad["pairs"]["mkdir|unlink"]["verdict"] = "commute"
        with pytest.raises(ValueError, match="condition must match"):
            validate_replay_matrix(bad)
        bad = json.loads(json.dumps(payload))
        del bad["pairs"]["unlink|unlink"]
        with pytest.raises(ValueError, match="every unordered op pair"):
            validate_replay_matrix(bad)
        bad = json.loads(json.dumps(payload))
        bad["pairs"]["mkdir|unlink"]["conflicts"][0]["sanction"] = "inode-table"
        with pytest.raises(ValueError, match="cannot carry a sanction"):
            validate_replay_matrix(bad)
        bad = json.loads(json.dumps(payload))
        bad["version"] = 99
        with pytest.raises(ValueError, match="version"):
            validate_replay_matrix(bad)


# ---------------------------------------------------------------------------
# the committed artifact (the gate CI's drift step enforces)


class TestCommittedMatrix:
    def test_emission_is_deterministic_and_matches_committed_copy(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        root = str(REPO / "src" / "repro")
        assert raelint_main([root, "--emit-replay-matrix", str(first)]) == 0
        assert raelint_main([root, "--emit-replay-matrix", str(second)]) == 0
        assert first.read_text() == second.read_text()
        assert first.read_text() == (REPO / "replaymatrix.json").read_text()

    def test_committed_matrix_is_schema_valid_with_expected_verdicts(self):
        payload = json.loads((REPO / "replaymatrix.json").read_text())
        validate_replay_matrix(payload)
        verdicts = {key: pair["verdict"] for key, pair in payload["pairs"].items()}
        # Anchor the semantics, not just the schema: namespace twins are
        # conditionally parallel, descriptor/data collisions are not,
        # and pure readers commute outright.
        assert verdicts["mkdir|mkdir"] == "conditional-on-disjoint-subtree"
        assert verdicts["open|open"] == "conflict"
        assert verdicts["truncate|write"] == "conflict"
        assert verdicts["readdir|stat"] == "commute"
        assert verdicts["lstat|stat"] == "commute"

    def test_real_tree_commute_rules_are_clean(self, capsys):
        assert raelint_main([
            str(REPO / "src" / "repro"), "--select", "commute",
            "--baseline", str(REPO / "raelint.baseline.json"),
            "--fail-on-findings",
        ]) == 0


# ---------------------------------------------------------------------------
# satellite: --select family names


class TestFamilySelect:
    def test_family_registry_covers_all_rules(self):
        families = rule_families()
        assert set(families) == {
            "core", "contracts", "concurrency", "persistence", "commute",
        }
        assert sum(len(ids) for ids in families.values()) == len(RULE_CLASSES)
        assert families["commute"] == (
            "COMMUTE-PARITY", "SHARD-FOOTPRINT", "REPLAY-ISOLATION",
        )

    def test_family_token_selects_only_that_family(self, tmp_path, capsys):
        # A commute bug and nothing else: `--select commute` reports it,
        # `--select persistence` stays silent on the same tree.
        fs = CLEAN_FS.replace(
            "self._iput(path)\n\n        def unlink",
            "self._iput(path)\n            self.scoreboard[path] = 1\n\n        def unlink",
        )
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": fs,
        })
        assert raelint_main([str(root), "--select", "commute", "--fail-on-findings"]) == 1
        assert "SHARD-FOOTPRINT" in capsys.readouterr().out
        assert raelint_main([str(root), "--select", "persistence", "--fail-on-findings"]) == 0

    def test_family_and_exact_id_tokens_mix(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": CLEAN_FS,
        })
        assert raelint_main([
            str(root), "--select", "commute,FLUSH-BARRIER", "--fail-on-findings",
        ]) == 0

    def test_unknown_family_exits_two(self, tmp_path, capsys):
        assert raelint_main([str(tmp_path), "--select", "communte"]) == 2
        err = capsys.readouterr().err
        assert "communte" in err
        # The error teaches the vocabulary.
        assert "commute" in err and "persistence" in err

    def test_list_rules_shows_families(self, capsys):
        assert raelint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "[commute]" in out
        assert "[core]" in out


# ---------------------------------------------------------------------------
# satellite: emitters always analyze the full tree


class TestEmitterScope:
    def _committed_git_tree(self, tmp_path, files):
        root = write_tree(tmp_path, files)
        _git(root, "init", "-q")
        _git(root, "add", "-A")
        _git(root, "commit", "-q", "-m", "base")
        return root

    def test_replay_matrix_is_identical_with_and_without_changed_only(
        self, tmp_path, capsys
    ):
        root = self._committed_git_tree(tmp_path, {
            "spec/commute.py": CLEAN_SPEC,
            "shadowfs/fs.py": CLEAN_FS,
            "shadowfs/other.py": "def helper():\n    pass\n",
        })
        # Dirty exactly one irrelevant file: a scoped analysis would
        # drop shadowfs/fs.py and emit an empty (or broken) surface.
        (root / "shadowfs" / "other.py").write_text("def helper():\n    return 1\n")
        full = root / "full.json"
        scoped = root / "scoped.json"
        assert raelint_main([str(root), "--emit-replay-matrix", str(full)]) == 0
        assert raelint_main([
            str(root), "--changed-only", "--emit-replay-matrix", str(scoped),
        ]) == 0
        assert full.read_bytes() == scoped.read_bytes()
        assert json.loads(full.read_text())["ops"]  # actually analyzed the tree

    def test_crash_surface_is_identical_with_and_without_changed_only(
        self, tmp_path, capsys
    ):
        root = self._committed_git_tree(tmp_path, {
            "spec/persistence.py": """
                WRITE_SITE_ROLES = {
                    "Fs.commit": ("commit-record",),
                }
                CRASH_ENTRY_POINTS = {
                    "commit": "Fs.commit",
                }
            """,
            "basefs/fs.py": """
                class Fs:
                    def commit(self, txn):
                        self.hooks.fire("commit.pre")
                        self.device.write_block(0, txn)
                        self.device.flush()
            """,
            "basefs/other.py": "def helper():\n    pass\n",
        })
        (root / "basefs" / "other.py").write_text("def helper():\n    return 1\n")
        full = root / "full.json"
        scoped = root / "scoped.json"
        assert raelint_main([str(root), "--emit-crash-surface", str(full)]) == 0
        assert raelint_main([
            str(root), "--changed-only", "--emit-crash-surface", str(scoped),
        ]) == 0
        assert full.read_bytes() == scoped.read_bytes()
        assert json.loads(full.read_text())["points"]

    def test_emit_without_a_spec_exits_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"shadowfs/fs.py": CLEAN_FS})
        out = tmp_path / "replaymatrix.json"
        assert raelint_main([str(root), "--emit-replay-matrix", str(out)]) == 2
        assert "spec/commute.py" in capsys.readouterr().err
        assert not out.exists()
