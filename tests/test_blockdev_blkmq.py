"""Tests for repro.blockdev.blkmq."""

import pytest

from repro.blockdev.blkmq import BlockMQ, DeadlineScheduler, IoRequest, NoopScheduler
from repro.blockdev.device import MemoryBlockDevice
from repro.errors import DeviceError

BS = 4096


def make(nr_queues=4, scheduler=None) -> BlockMQ:
    return BlockMQ(MemoryBlockDevice(block_count=64), nr_queues=nr_queues, scheduler=scheduler)


def test_submit_does_not_touch_device():
    mq = make()
    mq.submit_write(5, b"a" * BS)
    assert mq.device.read_block(5) == b"\x00" * BS
    assert mq.depth == 1


def test_pump_dispatches_and_completes():
    mq = make()
    req = mq.submit_write(5, b"a" * BS)
    assert mq.pump() == 1
    assert req.done and req.error is None
    assert mq.device.read_block(5) == b"a" * BS


def test_read_result_delivery():
    mq = make()
    mq.device.write_block(7, b"r" * BS)
    req = mq.submit_read(7)
    mq.pump()
    assert req.result == b"r" * BS


def test_completion_callback_fires():
    mq = make()
    seen = []
    mq.submit_write(1, b"x" * BS, callback=lambda r: seen.append(r.block))
    mq.pump()
    assert seen == [1]


def test_write_merge_same_block():
    mq = make()
    first = mq.submit_write(9, b"old" + b"\x00" * (BS - 3))
    mq.submit_write(9, b"new" + b"\x00" * (BS - 3))
    assert mq.stats.merged == 1
    assert first.done  # superseded request completes immediately
    mq.drain()
    assert mq.device.read_block(9)[:3] == b"new"


def test_queue_mapping_spreads_by_block():
    mq = make(nr_queues=4)
    assert mq.queue_for(0) != mq.queue_for(1)
    assert mq.queue_for(0) == mq.queue_for(4)


def test_pump_budget_limits_dispatch():
    mq = make()
    for block in range(10):
        mq.submit_write(block, bytes([block]) * BS)
    assert mq.pump(budget=3) == 3
    assert mq.depth == 7
    assert mq.drain() == 7


def test_deadline_scheduler_orders_reads_first():
    device = MemoryBlockDevice(block_count=64)
    mq = BlockMQ(device, nr_queues=1, scheduler=DeadlineScheduler())
    mq.submit_write(8, b"w" * BS)
    mq.submit_read(4)
    mq.pump()
    done = [(r.op, r.block) for r in mq.reap()]
    assert done == [("read", 4), ("write", 8)]


def test_noop_scheduler_fifo():
    device = MemoryBlockDevice(block_count=64)
    mq = BlockMQ(device, nr_queues=1, scheduler=NoopScheduler())
    mq.submit_write(8, b"w" * BS)
    mq.submit_read(4)
    mq.pump()
    assert [(r.op, r.block) for r in mq.reap()] == [("write", 8), ("read", 4)]


def test_device_error_captured_on_request():
    mq = make()
    req = mq.submit_read(9999) if False else mq.submit(IoRequest(op="read", block=63))
    mq.device.close()
    mq.pump()
    assert req.done and isinstance(req.error, DeviceError)


def test_wedged_layer_raises_on_submit():
    mq = make()
    mq.fail_submissions = True
    with pytest.raises(DeviceError):
        mq.submit_write(1, b"x" * BS)


def test_submit_validates_requests():
    mq = make()
    with pytest.raises(ValueError):
        mq.submit(IoRequest(op="scribble", block=0))
    with pytest.raises(ValueError):
        mq.submit(IoRequest(op="write", block=0, data=None))


def test_flush_request():
    mq = make()
    req = mq.submit_flush()
    mq.pump()
    assert req.done and req.error is None


def test_stats_track_depth_and_counts():
    mq = make()
    for block in range(6):
        mq.submit_write(block, b"s" * BS)
    assert mq.stats.submitted == 6
    assert mq.stats.max_queue_depth >= 2
    mq.drain()
    assert mq.stats.dispatched == 6
