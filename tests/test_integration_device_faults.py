"""Integration: device-level (hardware) faults under RAE.

The fault model's second half (§3.1): transient hardware faults.  A
transient read error escaping the base is a detected runtime error;
recovery re-executes through the shadow, whose retried synchronous
reads ride out the transient — the application sees nothing.
"""

import pytest

from repro.api import OpenFlags
from repro.blockdev.device import MemoryBlockDevice
from repro.blockdev.faults import DeviceFaultPlan, FaultyBlockDevice
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import DeviceError, FsError, RecoveryFailure
from repro.fsck import Fsck
from repro.ondisk.layout import DiskLayout
from repro.ondisk.mkfs import mkfs


def build(plan: DeviceFaultPlan):
    inner = MemoryBlockDevice(block_count=4096)
    mkfs(inner)
    return FaultyBlockDevice(inner, plan), DiskLayout(block_count=4096)


def test_transient_read_error_masked_by_recovery():
    plan = DeviceFaultPlan()
    faulty, layout = build(plan)
    fs = RAEFilesystem(faulty, RAEConfig())
    fd = fs.open("/data", OpenFlags.CREAT)
    fs.write(fd, b"payload " * 1024)
    fs.fsync(fd)
    fs.close(fd)
    # Arrange: the file's first data block fails its next 2 reads (the
    # base has no retry; the shadow retries up to 3 times).
    fs.base.page_cache.drop_all()
    ino = fs.stat("/data").ino
    slot = fs.base._iget(ino)
    physical = fs.base._map_reader().resolve(slot.inode, 0)
    plan.add_read_error(block=physical, times=2)

    fd = fs.open("/data")
    data = fs.read(fd, 8)  # base read fails -> RAE -> shadow retries
    assert data == b"payload "
    assert fs.recovery_count == 1
    assert "device" in fs.stats.events[0].detected
    fs.close(fd)
    fs.unmount()


def test_persistent_read_error_fails_recovery_honestly():
    """A hard (non-transient within the retry budget) fault on a needed
    block defeats the shadow too: recovery fails loudly rather than
    fabricating data."""
    plan = DeviceFaultPlan()
    faulty, layout = build(plan)
    fs = RAEFilesystem(faulty, RAEConfig())
    fd = fs.open("/data", OpenFlags.CREAT)
    fs.write(fd, b"x" * 5000)
    fs.fsync(fd)
    fs.close(fd)
    fs.base.page_cache.drop_all()
    ino = fs.stat("/data").ino
    slot = fs.base._iget(ino)
    physical = fs.base._map_reader().resolve(slot.inode, 0)
    plan.add_read_error(block=physical, times=1000)

    fd = fs.open("/data")
    with pytest.raises((RecoveryFailure, DeviceError)):
        fs.read(fd, 8)


def test_sticky_corruption_repaired_by_journal_replay():
    """A sticky bit-flip lands in an inode-table block whose clean copy
    is still in the journal: the base's cold read fails the checksum,
    recovery's contained reboot replays the journal — and the replay
    *rewrites the damaged block from the journaled copy*.  An emergent
    repair the design gets for free."""
    plan = DeviceFaultPlan()
    faulty, layout = build(plan)
    fs = RAEFilesystem(faulty, RAEConfig())
    fs.mkdir("/d")
    fd = fs.open("/d/f", OpenFlags.CREAT)
    fs.fsync(fd)
    fs.close(fd)
    ino = fs.stat("/d/f").ino
    block, offset = layout.inode_location(ino)
    plan.add_flip(block=block, offset=offset + 4, xor_byte=0xFF, after=faulty.access_count(block), sticky=True)
    fs.base.inode_cache.drop_all()
    fs.base.cache.drop_all()
    st = fs.stat("/d/f")  # checksum error -> recovery -> journal repairs
    assert st.ino == ino and st.uid == 0
    assert fs.recovery_count == 1
    fs.unmount()
    assert Fsck(faulty).run().clean


def test_silent_corruption_beyond_the_journal_fails_honestly():
    """The same sticky flip, but after the journal has been reset: no
    clean copy survives anywhere, the shadow cannot vouch for the image,
    and recovery fails loudly instead of propagating corruption."""
    plan = DeviceFaultPlan()
    faulty, layout = build(plan)
    fs = RAEFilesystem(faulty, RAEConfig())
    fs.mkdir("/d")
    fd = fs.open("/d/f", OpenFlags.CREAT)
    fs.fsync(fd)
    fs.close(fd)
    fs.base.journal.writer.reset()  # checkpoint: the journaled copy is gone
    ino = fs.stat("/d/f").ino
    block, offset = layout.inode_location(ino)
    plan.add_flip(block=block, offset=offset + 4, xor_byte=0xFF, after=faulty.access_count(block), sticky=True)
    fs.base.inode_cache.drop_all()
    fs.base.cache.drop_all()
    with pytest.raises(RecoveryFailure):
        fs.stat("/d/f")


def test_wire_corruption_is_transient_enough_to_recover():
    """A non-sticky flip corrupts one read on the wire; the stored data
    is intact, so the shadow's re-read during recovery sees good bytes."""
    plan = DeviceFaultPlan()
    faulty, layout = build(plan)
    fs = RAEFilesystem(faulty, RAEConfig())
    fs.mkdir("/d")
    fd = fs.open("/d/f", OpenFlags.CREAT)
    fs.fsync(fd)
    fs.close(fd)
    ino = fs.stat("/d/f").ino
    block, offset = layout.inode_location(ino)
    # Exactly one corrupted read of the itable block (the base's cold
    # read); subsequent reads (the shadow's) are clean.
    plan.add_flip(
        block=block, offset=offset + 4, xor_byte=0xFF, after=faulty.access_count(block), times=1, sticky=False
    )
    fs.base.inode_cache.drop_all()
    fs.base.cache.drop_all()
    count_before = faulty.faults_fired
    st = fs.stat("/d/f")  # base trips the checksum -> recovery -> clean re-read
    assert st.ino == ino
    assert fs.recovery_count == 1
    assert faulty.faults_fired > count_before
    fs.unmount()
    assert Fsck(faulty).run().clean
