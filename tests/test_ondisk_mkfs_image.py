"""Tests for repro.ondisk.mkfs and repro.ondisk.image."""

import pytest

from repro.blockdev.device import MemoryBlockDevice
from repro.ondisk.directory import DirBlock
from repro.ondisk.image import (
    clone_to_memory,
    describe,
    dump_tree,
    read_inode,
    read_superblock,
    write_inode,
)
from repro.ondisk.layout import BLOCK_SIZE, ROOT_INO
from repro.ondisk.mkfs import mkfs
from repro.ondisk.superblock import STATE_CLEAN


@pytest.fixture
def device():
    dev = MemoryBlockDevice(block_count=4096)
    mkfs(dev)
    return dev


def test_mkfs_superblock_sane(device):
    sb = read_superblock(device)
    assert sb.mount_state == STATE_CLEAN
    assert sb.root_ino == ROOT_INO
    assert sb.block_count == 4096


def test_mkfs_root_directory(device):
    sb = read_superblock(device)
    root = read_inode(device, sb.layout(), ROOT_INO)
    assert root.is_dir and root.nlink == 2 and root.size == BLOCK_SIZE
    entries = DirBlock(device.read_block(root.direct[0])).entries()
    names = {e.name: e.ino for e in entries}
    assert names == {".": ROOT_INO, "..": ROOT_INO}


def test_mkfs_accounting_matches_bitmaps(device):
    sb = read_superblock(device)
    info = describe(device)
    assert info.free_blocks_by_bitmap == sb.free_blocks
    assert info.free_inodes_by_bitmap == sb.free_inodes
    assert info.live_inodes == 1  # just the root


def test_mkfs_rejects_wrong_block_size():
    class Odd(MemoryBlockDevice):
        pass

    odd = Odd(block_size=512, block_count=8192)
    with pytest.raises(ValueError):
        mkfs(odd)


def test_mkfs_partial_last_group():
    dev = MemoryBlockDevice(block_count=2500)
    sb = mkfs(dev)
    info = describe(dev)
    assert info.free_blocks_by_bitmap == sb.free_blocks
    # bits past the device end must be unusable
    layout = sb.layout()
    assert layout.group_block_count(2) == 2500 - 2048


def test_dump_tree_fresh(device):
    assert dump_tree(device) == {"/": ROOT_INO}


def test_clone_to_memory_is_independent(device):
    clone = clone_to_memory(device)
    clone.write_block(100, b"x" * BLOCK_SIZE)
    assert device.read_block(100) != clone.read_block(100)


def test_write_inode_roundtrip(device):
    sb = read_superblock(device)
    layout = sb.layout()
    inode = read_inode(device, layout, ROOT_INO)
    inode.mtime = 999
    write_inode(device, layout, ROOT_INO, inode)
    assert read_inode(device, layout, ROOT_INO).mtime == 999
