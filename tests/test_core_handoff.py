"""Tests for the metadata-downloading interfaces and handoff module."""

import pytest

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.core.handoff import download_metadata
from repro.core.oplog import OpLog
from repro.core.reboot import contained_reboot
from repro.errors import InvariantViolation, RecoveryFailure
from repro.ondisk.image import clone_to_memory
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.output import MetadataUpdate
from repro.shadowfs.replay import ReplayEngine
from tests.conftest import formatted_device


def build_update(seq):
    """Run a window on a base, replay it in a shadow, return everything."""
    device = formatted_device()
    base = BaseFilesystem(device)
    log = OpLog()
    operations = [
        op("mkdir", path="/h"),
        op("open", path="/h/file", flags=int(OpenFlags.CREAT)),
        op("write", fd=3, data=b"handoff me" * 200),
    ]
    for operation in operations:
        s = seq()
        log.record(s, operation, operation.apply(base, opseq=s))
    shadow = ShadowFilesystem(clone_to_memory(device))
    update = ReplayEngine(shadow).run(log.entries, {}, None)
    return device, base, update


class TestAbsorbInterfaces:
    def test_full_download_roundtrip(self, seq):
        device, old_base, update = build_update(seq)
        reboot = contained_reboot(old_base, device)
        fs = reboot.fs
        download_metadata(fs, update)
        # The namespace and data exist purely via absorbed (dirty) state.
        assert fs.readdir("/h") == ["file"]
        fd_nums = fs.fd_table.open_fds()
        assert fd_nums == [3]
        # ... and survive a commit + fsck.
        fs.commit()
        fs.unmount()
        from repro.fsck import Fsck

        assert Fsck(device).run().clean

    def test_absorb_metadata_skips_superblock(self, seq):
        device, old_base, update = build_update(seq)
        fs = contained_reboot(old_base, device).fs
        generation = fs.sb.write_generation
        fs.absorb_metadata({0: b"\x00" * 4096, **update.metadata_blocks}, update.roles)
        assert fs.sb.write_generation == generation  # block 0 ignored
        assert fs.cache.peek(0) is None

    def test_absorb_accounting_cross_checks(self, seq):
        device, old_base, update = build_update(seq)
        fs = contained_reboot(old_base, device).fs
        fs.absorb_metadata(update.metadata_blocks, update.roles)
        with pytest.raises(InvariantViolation, match="accounting mismatch"):
            fs.absorb_accounting(update.free_blocks + 5, update.free_inodes)

    def test_absorb_fd_table_requires_empty(self, seq):
        device, old_base, update = build_update(seq)
        fs = contained_reboot(old_base, device).fs
        fs.absorb_metadata(update.metadata_blocks, update.roles)
        fs.absorb_accounting(update.free_blocks, update.free_inodes)
        fs.absorb_fd_table(update.fd_table)
        with pytest.raises(InvariantViolation, match="fd table"):
            fs.absorb_fd_table(update.fd_table)

    def test_download_metadata_wraps_errors(self, seq):
        device, old_base, update = build_update(seq)
        fs = contained_reboot(old_base, device).fs
        update.free_blocks += 1  # poison the accounting
        with pytest.raises(RecoveryFailure) as e:
            download_metadata(fs, update)
        assert e.value.phase == "handoff"

    def test_touched_inos_invalidate_stale_pages(self, seq):
        device, old_base, update = build_update(seq)
        fs = contained_reboot(old_base, device).fs
        # Plant a stale page for an inode the shadow touched.
        victim_ino = next(iter(update.touched_inos))
        fs.page_cache.install(victim_ino, 0, b"\xba" * 4096, dirty=False)
        download_metadata(fs, update)
        page = fs.page_cache.lookup(victim_ino, 0)
        # Either dropped, or replaced by the shadow's authoritative copy.
        assert page is None or bytes(page.data) != b"\xba" * 4096


class TestMetadataUpdateShape:
    def test_roles_cover_all_blocks(self, seq):
        _device, _base, update = build_update(seq)
        assert set(update.roles) == set(update.metadata_blocks)
        assert {"bitmap", "itable", "dir"} <= set(update.roles.values())

    def test_data_separated_from_metadata(self, seq):
        _device, _base, update = build_update(seq)
        assert update.data_pages  # the write produced file data
        assert update.total_blocks == len(update.metadata_blocks) + len(update.data_pages)
        # data page content is the written bytes
        first = min(update.data_pages)
        assert update.data_pages[first][:10] == b"handoff me"

    def test_summary_renders(self, seq):
        _device, _base, update = build_update(seq)
        text = update.summary()
        assert "metadata blocks" in text and "fds" in text

    def test_empty_update(self):
        update = MetadataUpdate()
        assert update.total_blocks == 0
        assert "0 metadata blocks" in update.summary()
