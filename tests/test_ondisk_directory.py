"""Tests for repro.ondisk.directory."""

import pytest

from repro.ondisk.directory import MAX_NAME_LEN, DirBlock, DirEntry, entry_size
from repro.ondisk.inode import FileType
from repro.ondisk.layout import BLOCK_SIZE


def test_fresh_block_is_empty():
    block = DirBlock()
    assert block.entries() == []
    assert block.is_empty()
    assert len(block.to_block()) == BLOCK_SIZE


def test_insert_find_remove():
    block = DirBlock()
    assert block.insert(10, "hello", FileType.REGULAR)
    entry = block.find("hello")
    assert entry is not None and entry.ino == 10 and entry.ftype == FileType.REGULAR
    assert block.remove("hello")
    assert block.find("hello") is None
    assert not block.remove("hello")


def test_insert_many_until_full():
    block = DirBlock()
    count = 0
    while block.insert(count + 1, f"file{count:04d}", FileType.REGULAR):
        count += 1
    # 8-byte header + 8-byte name rounded = 16 bytes per entry minimum,
    # so a 4096-byte block fits a couple hundred of these.
    assert count >= 200
    assert len(block.entries()) == count


def test_remove_first_entry_keeps_chain_valid():
    block = DirBlock()
    block.insert(1, "a", FileType.REGULAR)
    block.insert(2, "b", FileType.REGULAR)
    block.remove("a")
    assert [e.name for e in block.entries()] == ["b"]
    # space is reusable
    assert block.insert(3, "c", FileType.REGULAR)


def test_remove_middle_folds_into_previous():
    block = DirBlock()
    for i, name in enumerate(("x", "y", "z"), start=1):
        block.insert(i, name, FileType.REGULAR)
    block.remove("y")
    assert [e.name for e in block.entries()] == ["x", "z"]
    # the freed slack is reusable for a same-size name
    assert block.insert(9, "w", FileType.REGULAR)
    names = [e.name for e in block.entries()]
    assert "w" in names


def test_reinsert_after_remove_is_deterministic():
    a, b = DirBlock(), DirBlock()
    for block in (a, b):
        block.insert(1, "one", FileType.REGULAR)
        block.insert(2, "two", FileType.REGULAR)
        block.remove("one")
        block.insert(3, "three", FileType.DIRECTORY)
    assert a.to_block() == b.to_block()


def test_serialization_roundtrip():
    block = DirBlock()
    block.insert(5, "name-5", FileType.SYMLINK)
    restored = DirBlock(block.to_block())
    assert [e.ino for e in restored.entries()] == [5]


def test_long_names():
    block = DirBlock()
    name = "n" * MAX_NAME_LEN
    assert block.insert(1, name, FileType.REGULAR)
    assert block.find(name).ino == 1
    with pytest.raises(ValueError):
        block.insert(2, "n" * (MAX_NAME_LEN + 1), FileType.REGULAR)


def test_insert_validates_args():
    block = DirBlock()
    with pytest.raises(ValueError):
        block.insert(0, "zero-ino", FileType.REGULAR)
    with pytest.raises(ValueError):
        block.insert(1, "", FileType.REGULAR)


def test_malformed_block_detected():
    raw = bytearray(DirBlock().to_block())
    raw[4:6] = (3).to_bytes(2, "little")  # rec_len 3: under header size
    with pytest.raises(ValueError):
        DirBlock(bytes(raw)).entries()


def test_overrun_rec_len_detected():
    raw = bytearray(DirBlock().to_block())
    raw[4:6] = (BLOCK_SIZE + 8).to_bytes(2, "little")
    with pytest.raises(ValueError):
        DirBlock(bytes(raw)).entries()


def test_free_space_probe_is_non_mutating():
    block = DirBlock()
    before = block.to_block()
    assert block.free_space_for("anything")
    assert block.to_block() == before


def test_entry_size_alignment():
    assert entry_size(1) % 4 == 0
    assert entry_size(4) == 12
    assert entry_size(5) == 16


def test_direntry_rejects_bad_names():
    with pytest.raises(ValueError):
        DirEntry(ino=1, name="", ftype=FileType.REGULAR)


def test_wrong_block_size_rejected():
    with pytest.raises(ValueError):
        DirBlock(b"\x00" * 100)
