"""LockManager ordering discipline, parametrized over strict mode.

Covers the ascending/descending/recursive acquisition patterns and the
hierarchy-locking exception: a child inode taken under its already-held
parent is sanctioned regardless of numeric order (the parent-before-child
convention imposes a global order of its own), while the same numeric
pattern *without* the parent held is a lockdep event.
"""

from __future__ import annotations

import pytest

from repro.basefs.hooks import HookPoints
from repro.basefs.locks import LockManager
from repro.errors import KernelWarning


@pytest.fixture(params=[False, True], ids=["lenient", "strict"])
def strict(request):
    return request.param


@pytest.fixture
def locks(strict):
    return LockManager(HookPoints(), strict=strict)


class TestOrdering:
    def test_ascending_is_always_clean(self, locks):
        for ino in (2, 5, 9):
            locks.acquire(ino)
        assert locks.held == [2, 5, 9]
        assert locks.stats.order_violations == 0

    def test_descending_violates(self, locks, strict):
        locks.acquire(9)
        if strict:
            with pytest.raises(KernelWarning) as excinfo:
                locks.acquire(5)
            assert excinfo.value.bug_id == "lockdep"
        else:
            locks.acquire(5)
            assert locks.held == [9, 5]
        assert locks.stats.order_violations == 1

    def test_recursive_acquire_is_contention_not_violation(self, locks):
        locks.acquire(5)
        locks.acquire(5)
        assert locks.held == [5]
        assert locks.stats.contentions == 1
        assert locks.stats.order_violations == 0

    def test_acquire_pair_canonicalizes(self, locks):
        locks.acquire_pair(9, 5)
        assert locks.held == [5, 9]
        assert locks.stats.order_violations == 0

    def test_acquire_pair_same_inode_takes_once(self, locks):
        locks.acquire_pair(7, 7)
        assert locks.held == [7]
        assert locks.stats.acquisitions == 1


class TestHierarchyException:
    def test_child_under_held_parent_is_sanctioned(self, locks):
        # rmdir/unlink pattern: parent dir (high ino) locked first, then
        # the child (lower ino) under it — safe even in strict mode.
        locks.acquire(9)
        locks.acquire(5, parent=9)
        assert locks.held == [9, 5]
        assert locks.stats.order_violations == 0

    def test_parent_not_held_still_violates(self, locks, strict):
        locks.acquire(9)
        if strict:
            with pytest.raises(KernelWarning):
                locks.acquire(5, parent=42)
        else:
            locks.acquire(5, parent=42)
        assert locks.stats.order_violations == 1

    def test_sanction_requires_out_of_order_only(self, locks):
        # In-order child acquisition never consults the sanction.
        locks.acquire(2, parent=42)
        locks.acquire(5, parent=2)
        assert locks.held == [2, 5]
        assert locks.stats.order_violations == 0


class TestRelease:
    def test_release_all_clears_everything(self, locks):
        locks.acquire(2)
        locks.acquire(5)
        locks.release_all()
        assert locks.held == []

    def test_release_unheld_is_a_noop(self, locks):
        locks.acquire(2)
        locks.release(99)
        assert locks.held == [2]
