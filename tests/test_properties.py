"""Property-based tests (hypothesis) for the core invariants of DESIGN §5.

1. Refinement: shadow == spec for any generated op sequence.
2. Journal atomicity: crash at any point + replay = committed prefix.
3. Recovery correctness: bug at any position, state equals bug-free run.
4. DirBlock and Bitmap structural invariants under arbitrary op mixes.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError, KernelBug
from repro.fsck import Fsck
from repro.ondisk.bitmap import Bitmap
from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import FileType
from repro.spec import capture_state, check_refinement, states_equivalent
from tests.conftest import formatted_device

# ---------------------------------------------------------------------------
# strategies

NAMES = st.sampled_from(["a", "b", "dir1", "f.txt", "x" * 40])
PATHS = st.builds(lambda parts: "/" + "/".join(parts), st.lists(NAMES, min_size=1, max_size=3))
FDS = st.integers(min_value=3, max_value=6)
SMALL_DATA = st.binary(min_size=0, max_size=5000)


def ops_strategy():
    return st.lists(
        st.one_of(
            st.builds(lambda p: op("mkdir", path=p), PATHS),
            st.builds(lambda p: op("rmdir", path=p), PATHS),
            st.builds(lambda p: op("unlink", path=p), PATHS),
            st.builds(lambda p: op("open", path=p, flags=int(OpenFlags.CREAT)), PATHS),
            st.builds(lambda p: op("open", path=p, flags=int(OpenFlags.CREAT | OpenFlags.APPEND)), PATHS),
            st.builds(lambda f: op("close", fd=f), FDS),
            st.builds(lambda f, d: op("write", fd=f, data=d), FDS, SMALL_DATA),
            st.builds(lambda f, n: op("read", fd=f, length=n), FDS, st.integers(0, 8000)),
            st.builds(lambda f, o: op("lseek", fd=f, offset=o, whence=0), FDS, st.integers(0, 10000)),
            st.builds(lambda a, b: op("rename", src=a, dst=b), PATHS, PATHS),
            st.builds(lambda a, b: op("link", existing=a, new=b), PATHS, PATHS),
            st.builds(lambda t, p: op("symlink", target=t, path=p), PATHS, PATHS),
            st.builds(lambda p: op("stat", path=p), PATHS),
            st.builds(lambda p: op("readdir", path=p), PATHS),
            st.builds(lambda p, s: op("truncate", path=p, size=s), PATHS, st.integers(0, 20000)),
        ),
        min_size=1,
        max_size=25,
    )


# ---------------------------------------------------------------------------
# 1. refinement


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=ops_strategy())
def test_shadow_refines_spec(operations):
    problems = check_refinement(operations)
    assert problems == [], problems[0] if problems else ""


# ---------------------------------------------------------------------------
# 2. journal atomicity


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=ops_strategy(),
    crash_after_flushes=st.integers(min_value=1, max_value=8),
)
def test_crash_replay_yields_consistent_prefix(operations, crash_after_flushes):
    """Crash after the Nth device flush; the remounted filesystem must be
    fsck-clean (metadata transactions are atomic)."""
    device = formatted_device(track_durability=True)
    device.flush()

    flushes = {"n": 0}
    original_flush = device.flush

    class StopWorkload(Exception):
        pass

    def counting_flush():
        original_flush()
        flushes["n"] += 1
        if flushes["n"] >= crash_after_flushes:
            raise StopWorkload()

    fs = BaseFilesystem(device)  # mount first: its flushes are not counted
    device.flush = counting_flush
    try:
        for index, operation in enumerate(operations):
            try:
                operation.apply(fs, opseq=index + 1)
            except FsError:
                pass
            fs.writeback.tick()
        fs.commit()
    except StopWorkload:
        pass
    device.flush = original_flush
    device.crash()

    report = Fsck(device).run()
    hard_errors = [f for f in report.errors]
    assert not hard_errors, f"crash at flush {flushes['n']}: {[str(f) for f in hard_errors[:3]]}"
    # And it must remount.
    fs2 = BaseFilesystem(device)
    fs2.readdir("/")
    fs2.unmount()


# ---------------------------------------------------------------------------
# 3. recovery correctness


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=ops_strategy(), fire_at=st.integers(min_value=1, max_value=60))
def test_recovery_matches_bugfree_execution(operations, fire_at):
    reference_fs = RAEFilesystem(formatted_device(16384), RAEConfig())
    for operation in operations:
        try:
            operation.apply(reference_fs)
        except FsError:
            pass
    reference = capture_state(reference_fs)

    hooks = HookPoints()
    counter = {"n": 0}

    def bug(point, ctx):
        counter["n"] += 1
        if counter["n"] == fire_at:
            raise KernelBug("hypothesis bug")

    for point in ("dir.insert", "page.write", "inode.dirty", "dir.remove"):
        hooks.register(point, bug)
    device = formatted_device(16384)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    for operation in operations:
        try:
            operation.apply(fs)
        except FsError:
            pass
    state = capture_state(fs)
    report = states_equivalent(reference, state)
    assert report.equivalent, str(report)
    assert sum(e.discrepancies for e in fs.stats.events) == 0
    fs.unmount()
    assert Fsck(device).run().clean


# ---------------------------------------------------------------------------
# 4. structural invariants


@settings(max_examples=100, deadline=None)
@given(
    commands=st.lists(
        st.tuples(st.sampled_from(["insert", "remove"]), st.sampled_from(["aa", "bb", "cc", "a-long-name", "z"])),
        max_size=40,
    )
)
def test_dirblock_chain_always_valid(commands):
    block = DirBlock()
    live: dict[str, int] = {}
    ino = 10
    for action, name in commands:
        if action == "insert" and name not in live:
            if block.insert(ino, name, FileType.REGULAR):
                live[name] = ino
                ino += 1
        elif action == "remove":
            removed = block.remove(name)
            assert removed == (name in live)
            live.pop(name, None)
        # Invariant: the chain parses and live entries match the model.
        reparsed = DirBlock(block.to_block())
        assert {e.name: e.ino for e in reparsed.entries()} == live


@settings(max_examples=100, deadline=None)
@given(
    bits=st.lists(st.integers(min_value=0, max_value=255), max_size=60),
    nbits=st.integers(min_value=1, max_value=256),
)
def test_bitmap_counts_consistent(bits, nbits):
    bitmap = Bitmap(nbits)
    model: set[int] = set()
    for bit in bits:
        if bit < nbits:
            if bit in model:
                bitmap.clear(bit)
                model.discard(bit)
            else:
                bitmap.set(bit)
                model.add(bit)
    assert bitmap.count_set() == len(model)
    assert bitmap.set_bits() == sorted(model)
    free = bitmap.find_free()
    if len(model) == nbits:
        assert free is None
    else:
        assert free is not None and free not in model
