"""Tests for repro.ondisk.journal."""

import pytest

from repro.blockdev.device import MemoryBlockDevice
from repro.ondisk.journal import (
    MAX_TAGS,
    JournalWriter,
    replay_journal,
    reset_journal,
)
from repro.ondisk.layout import BLOCK_SIZE, DiskLayout


def make(track_durability=False):
    device = MemoryBlockDevice(block_count=2048, track_durability=track_durability)
    layout = DiskLayout(block_count=2048, blocks_per_group=1024, journal_blocks=64)
    reset_journal(device, layout)
    if track_durability:
        device.flush()
    return device, layout


def data_block(tag: int) -> bytes:
    return bytes([tag]) * BLOCK_SIZE


def test_empty_journal_replays_nothing():
    device, layout = make()
    assert replay_journal(device, layout) == []


def test_append_and_replay_applies_writes():
    device, layout = make()
    writer = JournalWriter(device, layout)
    target = layout.data_start(0) + 3
    writer.append({target: data_block(7)})
    # Home location untouched until replay applies it.
    txns = replay_journal(device, layout, apply=True)
    assert len(txns) == 1 and txns[0].seq == 1
    assert device.read_block(target) == data_block(7)


def test_replay_without_apply_leaves_device():
    device, layout = make()
    writer = JournalWriter(device, layout)
    target = layout.data_start(0)
    writer.append({target: data_block(9)})
    txns = replay_journal(device, layout, apply=False)
    assert txns[0].writes == {target: data_block(9)}
    assert device.read_block(target) == b"\x00" * BLOCK_SIZE


def test_multiple_transactions_sequence():
    device, layout = make()
    writer = JournalWriter(device, layout)
    base = layout.data_start(0)
    for i in range(3):
        writer.append({base + i: data_block(i + 1)})
    txns = replay_journal(device, layout)
    assert [t.seq for t in txns] == [1, 2, 3]


def test_torn_commit_yields_prefix():
    device, layout = make()
    writer = JournalWriter(device, layout)
    base = layout.data_start(0)
    writer.append({base: data_block(1)})
    writer.append({base + 1: data_block(2)})
    # Corrupt the second transaction's commit block (last written block
    # of the region so far): descriptor at +1.. txn1 occupies 3 blocks.
    commit_block = layout.journal_start + 1 + 3 + 2  # jsb | d,b,c | d,b -> commit
    raw = bytearray(device.read_block(commit_block))
    raw[0] ^= 0xFF
    device.write_block(commit_block, bytes(raw))
    txns = replay_journal(device, layout)
    assert [t.seq for t in txns] == [1]
    # The torn transaction's home block must not have been applied.
    assert device.read_block(base + 1) == b"\x00" * BLOCK_SIZE


def test_data_crc_mismatch_rejects_txn():
    device, layout = make()
    writer = JournalWriter(device, layout)
    base = layout.data_start(0)
    writer.append({base: data_block(5)})
    # Corrupt the journaled data copy.
    journaled_data = layout.journal_start + 2
    raw = bytearray(device.read_block(journaled_data))
    raw[100] ^= 0x01
    device.write_block(journaled_data, bytes(raw))
    assert replay_journal(device, layout) == []


def test_reset_bumps_sequence_and_forgets():
    device, layout = make()
    writer = JournalWriter(device, layout)
    base = layout.data_start(0)
    writer.append({base: data_block(1)})
    writer.reset()
    assert replay_journal(device, layout) == []  # old txn unreachable
    writer.append({base + 1: data_block(2)})
    txns = replay_journal(device, layout)
    assert [t.seq for t in txns] == [2]


def test_capacity_accounting():
    device, layout = make()
    writer = JournalWriter(device, layout)
    assert writer.free_blocks == layout.journal_blocks - 1
    assert writer.blocks_needed(5) == 7
    assert writer.can_fit(writer.free_blocks - 2)
    assert not writer.can_fit(writer.free_blocks - 1)


def test_append_validates_input():
    device, layout = make()
    writer = JournalWriter(device, layout)
    with pytest.raises(ValueError):
        writer.append({})
    with pytest.raises(ValueError):
        writer.append({layout.data_start(0): b"short"})
    with pytest.raises(ValueError):
        writer.append({layout.journal_start + 1: data_block(1)})  # inside journal
    with pytest.raises(ValueError):
        writer.blocks_needed(MAX_TAGS + 1)


def test_overflow_requires_reset():
    device, layout = make()
    writer = JournalWriter(device, layout)
    base = layout.data_start(0)
    per_txn = 20
    while writer.can_fit(per_txn):
        writer.append({base + i: data_block(1) for i in range(per_txn)})
    with pytest.raises(ValueError, match="does not fit"):
        writer.append({base + i: data_block(2) for i in range(per_txn)})


def test_crash_before_commit_flush_is_atomic():
    """With a durability-tracked device, a crash right after append+flush
    still replays the full transaction (the commit path flushes)."""
    device, layout = make(track_durability=True)
    writer = JournalWriter(device, layout)
    base = layout.data_start(0)
    writer.append({base: data_block(3)})  # append() flushes internally
    device.crash()
    txns = replay_journal(device, layout)
    assert [t.seq for t in txns] == [1]
    assert device.read_block(base) == data_block(3)


def test_journal_superblock_checksum_guard():
    device, layout = make()
    raw = bytearray(device.read_block(layout.journal_start))
    raw[4] ^= 0xFF
    device.write_block(layout.journal_start, bytes(raw))
    with pytest.raises(ValueError):
        replay_journal(device, layout)
