"""Tests for repro.api: path validation, FsOp, OpResult."""

import pytest

from repro.api import (
    FsOp,
    OP_SIGNATURES,
    OpResult,
    OpenFlags,
    op,
    parent_and_name,
    split_path,
    validate_name,
)
from repro.errors import Errno, FsError
from repro.spec.model import SpecFilesystem


class TestPathValidation:
    def test_root_splits_empty(self):
        assert split_path("/") == []

    def test_simple_paths(self):
        assert split_path("/a") == ["a"]
        assert split_path("/a/b/c") == ["a", "b", "c"]

    def test_trailing_slash_tolerated(self):
        assert split_path("/a/b/") == ["a", "b"]

    def test_relative_rejected(self):
        with pytest.raises(FsError) as e:
            split_path("a/b")
        assert e.value.errno == Errno.EINVAL

    def test_double_slash_rejected(self):
        with pytest.raises(FsError):
            split_path("/a//b")

    def test_dot_components_rejected(self):
        for bad in ("/a/./b", "/.."):
            with pytest.raises(FsError):
                split_path(bad)

    def test_non_string_rejected(self):
        with pytest.raises(FsError):
            split_path(123)  # type: ignore[arg-type]

    def test_name_too_long(self):
        with pytest.raises(FsError) as e:
            validate_name("x" * 256)
        assert e.value.errno == Errno.ENAMETOOLONG

    def test_illegal_characters(self):
        with pytest.raises(FsError):
            validate_name("a\x00b")
        with pytest.raises(FsError):
            validate_name("a/b")

    def test_parent_and_name(self):
        assert parent_and_name("/a/b/c") == (["a", "b"], "c")
        assert parent_and_name("/top") == ([], "top")
        with pytest.raises(FsError):
            parent_and_name("/")


class TestFsOp:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            FsOp(name="chmod", args={})

    def test_unknown_arg_rejected(self):
        with pytest.raises(ValueError):
            op("mkdir", nonsense=1)

    def test_signatures_cover_mutation_flag(self):
        assert OP_SIGNATURES["stat"][1] is False
        assert OP_SIGNATURES["write"][1] is True
        assert OP_SIGNATURES["read"][1] is True  # advances fd offset
        assert op("readdir", path="/").is_mutation is False

    def test_apply_captures_errno(self):
        spec = SpecFilesystem()
        result = op("rmdir", path="/missing").apply(spec)
        assert result.errno == Errno.ENOENT and not result.ok

    def test_apply_captures_value_and_ino(self):
        spec = SpecFilesystem()
        result = op("mkdir", path="/d").apply(spec, opseq=1)
        assert result.ok and result.ino is not None
        fd_result = op("open", path="/f", flags=int(OpenFlags.CREAT)).apply(spec, opseq=2)
        assert fd_result.value == 3 and fd_result.ino is not None

    def test_describe_hides_payload_bytes(self):
        text = op("write", fd=3, data=b"x" * 1000).describe()
        assert "<1000B>" in text and "xxx" not in text


class TestOpResult:
    def test_same_outcome(self):
        assert OpResult(value=1).same_outcome_as(OpResult(value=1))
        assert not OpResult(value=1).same_outcome_as(OpResult(value=2))
        assert not OpResult(errno=Errno.ENOENT).same_outcome_as(OpResult(value=None))
        assert OpResult(errno=Errno.ENOENT).same_outcome_as(OpResult(errno=Errno.ENOENT))
        assert not OpResult(value=1, ino=5).same_outcome_as(OpResult(value=1, ino=6))
