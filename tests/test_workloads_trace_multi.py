"""Tests for trace serialization and multi-client interleaving."""

import io

import pytest

from repro.api import OpResult, OpenFlags, StatResult, op
from repro.basefs.filesystem import BaseFilesystem
from repro.core.oplog import OpLog
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import Errno, KernelBug
from repro.fsck import Fsck
from repro.ondisk.inode import FileType
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec import capture_state, states_equivalent
from repro.workloads import WorkloadGenerator, fileserver_profile, metadata_profile
from repro.workloads.multi import MultiClientWorkload
from repro.workloads.trace import (
    decode_record,
    dump_trace,
    encode_record,
    load_trace,
    replay_trace,
)
from tests.conftest import formatted_device


class TestTraceFormat:
    def test_roundtrip_plain_op(self):
        original = op("mkdir", path="/a", perms=0o700)
        seq, decoded, outcome = decode_record(encode_record(original, seq=5))
        assert seq == 5 and outcome is None
        assert decoded.name == "mkdir" and decoded.args == original.args

    def test_roundtrip_bytes_payload(self):
        payload = bytes(range(256))
        original = op("write", fd=3, data=payload)
        _seq, decoded, _outcome = decode_record(encode_record(original))
        assert decoded.args["data"] == payload

    def test_roundtrip_outcomes(self):
        cases = [
            OpResult(value=42, ino=7),
            OpResult(errno=Errno.ENOENT),
            OpResult(value=b"\x00\xff"),
            OpResult(value=["a", "b"]),
            OpResult(
                value=StatResult(
                    ino=3, ftype=FileType.REGULAR, size=9, nlink=1, perms=0o644,
                    uid=0, gid=0, atime=1, mtime=2, ctime=3,
                )
            ),
        ]
        for outcome in cases:
            _s, _o, decoded = decode_record(encode_record(op("stat", path="/x"), outcome=outcome))
            assert decoded.errno == outcome.errno
            assert decoded.value == outcome.value
            assert decoded.ino == outcome.ino

    def test_dump_and_load_stream(self):
        operations = WorkloadGenerator(fileserver_profile(), seed=2).ops(60)
        buffer = io.StringIO()
        assert dump_trace(operations, buffer) == len(operations)
        buffer.seek(0)
        loaded = [entry[1] for entry in load_trace(buffer)]
        assert [(o.name, o.args) for o in loaded] == [(o.name, o.args) for o in operations]

    def test_dump_oprecords_with_outcomes(self, seq):
        fs = BaseFilesystem(formatted_device())
        log = OpLog()
        for operation in (op("mkdir", path="/t"), op("rmdir", path="/missing")):
            s = seq()
            log.record(s, operation, operation.apply(fs, opseq=s))
        buffer = io.StringIO()
        dump_trace(log.entries, buffer)
        buffer.seek(0)
        entries = list(load_trace(buffer))
        assert entries[0][2].ok
        assert entries[1][2].errno == Errno.ENOENT

    def test_comments_and_blanks_skipped(self):
        buffer = io.StringIO("# header\n\n" + encode_record(op("stat", path="/")) + "\n")
        assert len(list(load_trace(buffer))) == 1


class TestTraceReplay:
    def test_replay_reproduces_state(self):
        """A trace captured from one run rebuilds the same state anywhere."""
        operations = WorkloadGenerator(metadata_profile(), seed=4).ops(120)
        buffer = io.StringIO()
        dump_trace(operations, buffer)

        first = BaseFilesystem(formatted_device())
        buffer.seek(0)
        replay_trace(first, buffer)

        second = ShadowFilesystem(formatted_device())
        buffer.seek(0)
        replay_trace(second, buffer)

        report = states_equivalent(capture_state(first), capture_state(second))
        assert report.equivalent, str(report)

    def test_replay_diffs_recorded_outcomes(self, seq):
        """The §4.3 workflow: capture outcomes on the base, replay on the
        shadow, diff — a falsified record shows up as a mismatch."""
        fs = BaseFilesystem(formatted_device())
        log = OpLog()
        for operation in (op("mkdir", path="/d"), op("open", path="/d/f", flags=int(OpenFlags.CREAT))):
            s = seq()
            log.record(s, operation, operation.apply(fs, opseq=s))
        log.entries[1].outcome.value = 99  # falsify the fd
        buffer = io.StringIO()
        dump_trace(log.entries, buffer)
        buffer.seek(0)
        shadow = ShadowFilesystem(formatted_device())
        results = replay_trace(shadow, buffer)
        mismatches = [
            (index, actual, recorded)
            for index, actual, recorded in results
            if recorded is not None and not actual.same_outcome_as(recorded)
        ]
        assert len(mismatches) == 1 and mismatches[0][0] == 1


class TestMultiClient:
    def test_interleaved_clients_on_base(self):
        fs = BaseFilesystem(formatted_device(32768))
        workload = MultiClientWorkload(fs, fileserver_profile(), clients=4, seed=9)
        workload.run(400)
        assert workload.runtime_failures == 0
        roots = fs.readdir("/")
        assert roots == ["client0", "client1", "client2", "client3"]
        # Clients really interleaved: everyone issued something.
        assert all(client.ops_issued > 10 for client in workload.clients)
        fs.unmount()
        assert Fsck(fs.device).run().clean

    def test_interleaving_exercises_lock_manager(self):
        fs = BaseFilesystem(formatted_device(32768))
        workload = MultiClientWorkload(fs, metadata_profile(), clients=3, seed=10)
        workload.run(300)
        assert fs.locks.stats.acquisitions > 100

    def test_multiclient_under_rae_with_bugs(self, hooks):
        counter = {"n": 0}

        def sometimes(point, ctx):
            counter["n"] += 1
            if counter["n"] % 301 == 0:
                raise KernelBug("interleaving bug")

        hooks.register("vfs.lookup", sometimes)
        fs = RAEFilesystem(formatted_device(32768), RAEConfig(), hooks=hooks)
        workload = MultiClientWorkload(fs, fileserver_profile(), clients=3, seed=11)
        workload.run(300)
        assert workload.runtime_failures == 0
        assert fs.recovery_count >= 1
        fs.unmount()
        assert Fsck(fs.device).run().clean

    def test_fd_translation_is_consistent(self):
        """Across interleavings, each client's writes land in its own
        files: no cross-client fd leakage."""
        fs = BaseFilesystem(formatted_device(32768))
        workload = MultiClientWorkload(fs, fileserver_profile(), clients=2, seed=12)
        workload.run(200)
        for client in workload.clients:
            for name in fs.readdir(client.root):
                assert not name.startswith("client")  # no nested roots

    def test_client_count_validation(self):
        with pytest.raises(ValueError):
            MultiClientWorkload(BaseFilesystem(formatted_device()), fileserver_profile(), clients=0)
