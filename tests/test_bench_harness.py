"""Tests for the benchmark harness helpers and reporting."""

import json

from repro.api import OpenFlags, op
from repro.bench import (
    emit_obs_section,
    format_table,
    make_base,
    make_device,
    make_rae,
    make_shadow,
    print_banner,
    run_ops,
    time_ops,
)


class TestHarness:
    def test_make_device_is_formatted_and_fresh(self):
        a = make_device(4096)
        b = make_device(4096)
        from repro.ondisk.image import read_superblock

        assert read_superblock(a).root_ino == 2
        a.write_block(100, b"\x77" * 4096)
        assert b.read_block(100) != a.read_block(100)

    def test_make_device_journal_blocks_override(self):
        from repro.ondisk.image import read_superblock

        device = make_device(4096, journal_blocks=64)
        assert read_superblock(device).journal_blocks == 64
        # The template cache keys on (block_count, journal): the default
        # geometry is not clobbered by the override.
        assert read_superblock(make_device(4096)).journal_blocks != 64

    def test_make_rae_obs_passthrough(self):
        from repro.obs import Registry

        registry = Registry()
        fs = make_rae(4096, obs=registry)
        assert fs.obs is registry
        fs.mkdir("/x")
        assert registry.snapshot()["counters"]["op.count.mkdir"] >= 1

    def test_emit_obs_section_stages_for_flush(self, tmp_path):
        from repro.obs import flush_bench_obs

        fs = make_rae(4096)
        fs.mkdir("/x")
        emit_obs_section("harness_probe", fs, extra={"ops": 1})
        payload = json.loads(
            open(flush_bench_obs(str(tmp_path / "BENCH_obs.json"))).read()
        )
        section = payload["sections"]["harness_probe"]
        assert section["extra"] == {"ops": 1}
        assert section["snapshot"]["counters"]["op.count.mkdir"] >= 1

    def test_make_fs_variants(self, seq):
        base = make_base(4096)
        base.mkdir("/x", opseq=seq())
        shadow = make_shadow(4096)
        shadow.mkdir("/x", opseq=seq())
        rae = make_rae(4096)
        rae.mkdir("/x")
        assert base.readdir("/") == shadow.readdir("/") == rae.readdir("/") == ["x"]

    def test_run_ops_counts(self):
        fs = make_base(4096)
        operations = [op("mkdir", path="/a"), op("mkdir", path="/a"), op("stat", path="/a")]
        assert run_ops(fs, operations) == 3  # errno outcomes count as run

    def test_time_ops_returns_throughput(self):
        fs = make_base(4096)
        operations = [op("mkdir", path=f"/d{i}") for i in range(20)]
        elapsed, throughput = time_ops(fs, operations)
        assert elapsed > 0 and throughput > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["first", 1.2345], ["second-longer", 100000.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text and "100000" in text
        assert len(lines) == 4

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formats(self):
        text = format_table(["v"], [[0.0], [0.1234567], [5.678], [12345.6]])
        assert "0.1235" in text
        assert "5.68" in text
        assert "12346" in text

    def test_print_banner(self, capsys):
        print_banner("hello bench")
        out = capsys.readouterr().out
        assert "hello bench" in out
        assert "====" in out
