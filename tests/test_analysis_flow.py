"""Tests for the raeflow layer: CFG builder, dataflow solver, call graph,
and the four flow rules (SHADOW-REACH, REPLAY-DETERMINISM, LOCK-ORDER,
JOURNAL-BEFORE-WRITE) plus the CFG-upgraded LOCK-RELEASE."""

import ast
import textwrap

import pytest

from repro.analysis.engine import ParsedModule
from repro.analysis.flow.callgraph import FALLBACK_CAP, CallGraph
from repro.analysis.flow.cfg import build_cfg, function_defs
from repro.analysis.flow.dataflow import (
    BACKWARD,
    FORWARD,
    CallMarkerAnalysis,
    GenKillAnalysis,
    LocksetAnalysis,
    ReleaseOnAllPathsAnalysis,
    solve,
)
from repro.analysis.rules.journal_before_write import JournalBeforeWriteRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.lock_release import LockReleaseRule
from repro.analysis.rules.replay_determinism import ReplayDeterminismRule
from repro.analysis.rules.shadow_reach import ShadowReachRule


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))
    return func, build_cfg(func)


def stmt_node(cfg, func, marker: str):
    """The CFG node owning the first statement whose source contains ``marker``."""
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.stmt):
            try:
                text = ast.unparse(stmt)
            except Exception:
                continue
            if marker in text.splitlines()[0]:
                node = cfg.node_of(stmt)
                if node is not None:
                    return node
    raise AssertionError(f"no CFG node for statement containing {marker!r}")


def parse_modules(files: dict[str, str]) -> list[ParsedModule]:
    return [ParsedModule.parse(path, textwrap.dedent(src)) for path, src in files.items()]


def findings_of(rule, files: dict[str, str]):
    modules = parse_modules(files)
    if hasattr(rule, "check_project"):
        return list(rule.check_project(modules))
    out = []
    for module in modules:
        out.extend(rule.check(module))
    return out


# ---------------------------------------------------------------------------
# CFG builder


class TestCFGBuilder:
    def test_try_except_else_finally(self):
        func, cfg = cfg_of("""
            def f():
                try:
                    body()
                except KeyError:
                    handler()
                else:
                    orelse()
                finally:
                    cleanup()
                after()
        """)
        body = stmt_node(cfg, func, "body()")
        handler = stmt_node(cfg, func, "handler()")
        orelse = stmt_node(cfg, func, "orelse()")
        cleanup = stmt_node(cfg, func, "cleanup()")
        after = stmt_node(cfg, func, "after()")
        # Normal path runs the else; exceptional path runs the handler;
        # both funnel through the finally before reaching the follow.
        assert cfg.has_path(body.index, orelse.index)
        assert cfg.has_path(body.index, handler.index)
        assert cfg.has_path(handler.index, cleanup.index)
        assert cfg.has_path(orelse.index, cleanup.index)
        assert cfg.has_path(cleanup.index, after.index)
        # after() cannot run without the finally.
        assert not any(
            succ == after.index for succ in body.succ | handler.succ | orelse.succ
        )
        # An else-clause exception reaches the finally, not this try's handler.
        assert not cfg.has_path(orelse.index, handler.index)

    def test_while_else_and_break(self):
        func, cfg = cfg_of("""
            def f(items):
                while cond():
                    if bad():
                        break
                    work()
                else:
                    exhausted()
                after()
        """)
        brk = stmt_node(cfg, func, "break")
        work = stmt_node(cfg, func, "work()")
        exhausted = stmt_node(cfg, func, "exhausted()")
        after = stmt_node(cfg, func, "after()")
        head = stmt_node(cfg, func, "while")
        # Normal exhaustion runs the else; break skips it.
        assert cfg.has_path(head.index, exhausted.index)
        assert after.index in cfg.nodes[brk.index].succ
        assert not cfg.has_path(brk.index, exhausted.index)
        # The loop body loops back to the header.
        assert cfg.has_path(work.index, head.index)

    def test_nested_function_bodies_are_opaque(self):
        func, cfg = cfg_of("""
            def f():
                before()
                def inner():
                    hidden()
                after()
        """)
        # hidden() belongs to inner's CFG, not f's.
        hidden_stmt = next(
            s for s in ast.walk(func) if isinstance(s, ast.Expr) and "hidden" in ast.unparse(s)
        )
        assert cfg.node_of(hidden_stmt) is None
        # But the def statement itself is a node on the path.
        inner_def = stmt_node(cfg, func, "def inner")
        assert cfg.has_path(stmt_node(cfg, func, "before()").index, inner_def.index)
        assert cfg.has_path(inner_def.index, stmt_node(cfg, func, "after()").index)
        # And inner's own CFG sees hidden().
        inner_func = next(n for n in ast.walk(func) if isinstance(n, ast.FunctionDef) and n.name == "inner")
        inner_cfg = build_cfg(inner_func)
        assert inner_cfg.node_of(hidden_stmt) is not None

    def test_with_multiple_context_managers(self):
        func, cfg = cfg_of("""
            def f():
                with open_a() as a, open_b() as b:
                    body()
        """)
        with_node = stmt_node(cfg, func, "with")
        assert with_node.kind == "with"
        exprs = [ast.unparse(p) for p in with_node.payload]
        assert any("open_a" in e for e in exprs)
        assert any("open_b" in e for e in exprs)
        assert cfg.has_path(with_node.index, stmt_node(cfg, func, "body()").index)

    def test_return_inside_finally(self):
        func, cfg = cfg_of("""
            def f():
                try:
                    body()
                finally:
                    return fallback()
                unreachable()
        """)
        ret = stmt_node(cfg, func, "return")
        assert cfg.has_path(stmt_node(cfg, func, "body()").index, ret.index)
        assert cfg.has_path(ret.index, cfg.exit)

    def test_return_routes_through_enclosing_finally(self):
        func, cfg = cfg_of("""
            def f():
                try:
                    return early()
                finally:
                    cleanup()
        """)
        ret = stmt_node(cfg, func, "return")
        cleanup = stmt_node(cfg, func, "cleanup()")
        # The return's continuation is the finally, not EXIT directly.
        assert cfg.exit not in cfg.nodes[ret.index].succ
        assert cfg.has_path(ret.index, cleanup.index)
        assert cfg.has_path(cleanup.index, cfg.exit)

    def test_every_statement_has_an_exceptional_edge(self):
        func, cfg = cfg_of("""
            def f():
                a()
                b()
        """)
        a = stmt_node(cfg, func, "a()")
        # a() may raise: EXIT is a direct successor alongside b().
        assert cfg.exit in a.succ
        assert stmt_node(cfg, func, "b()").index in a.succ


# ---------------------------------------------------------------------------
# dataflow solver


class _ReachingMarks(GenKillAnalysis):
    """Forward may-analysis: which mark(...) literals can have executed."""

    may = True
    direction = FORWARD

    def gen(self, node):
        out = set()
        for part in node.payload:
            for call in ast.walk(part):
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Name)
                    and call.func.id == "mark"
                ):
                    out.add(call.args[0].value)
        return frozenset(out)


class TestDataflowSolver:
    def test_forward_may_union_at_join(self):
        func, cfg = cfg_of("""
            def f(c):
                if c:
                    mark("a")
                else:
                    mark("b")
                done()
        """)
        values = solve(cfg, _ReachingMarks())
        done = stmt_node(cfg, func, "done()")
        assert values[done.index].before == {"a", "b"}

    def test_forward_must_requires_all_paths(self):
        func, cfg = cfg_of("""
            def f(c):
                if c:
                    journal.commit(1)
                sink()
        """)

        def is_commit(call):
            return isinstance(call.func, ast.Attribute) and call.func.attr == "commit"

        values = solve(cfg, CallMarkerAnalysis(is_commit))
        sink = stmt_node(cfg, func, "sink()")
        assert values[sink.index].before is False  # the else path skips the commit

    def test_forward_must_passes_on_straight_line(self):
        func, cfg = cfg_of("""
            def f():
                journal.commit(1)
                sink()
        """)

        def is_commit(call):
            return isinstance(call.func, ast.Attribute) and call.func.attr == "commit"

        values = solve(cfg, CallMarkerAnalysis(is_commit))
        assert values[stmt_node(cfg, func, "sink()").index].before is True

    def test_backward_release_on_all_paths(self):
        func, cfg = cfg_of("""
            def f(self):
                try:
                    self.locks.acquire(1)
                    work()
                finally:
                    self.locks.release_all()
        """)
        analysis = ReleaseOnAllPathsAnalysis()
        assert analysis.direction == BACKWARD
        values = solve(cfg, analysis)
        acq = stmt_node(cfg, func, "acquire")
        assert values[acq.index].before is True

    def test_backward_fallthrough_release_misses_exceptional_path(self):
        func, cfg = cfg_of("""
            def f(self):
                self.locks.acquire(1)
                work()
                self.locks.release_all()
        """)
        values = solve(cfg, ReleaseOnAllPathsAnalysis())
        acq = stmt_node(cfg, func, "acquire")
        assert values[acq.index].before is False  # work() may raise past the release

    def test_lockset_union_join(self):
        func, cfg = cfg_of("""
            def f(self, c):
                if c:
                    self.locks.acquire(parent_ino)
                else:
                    self.locks.acquire(child_ino)
                probe()
        """)
        values = solve(cfg, LocksetAnalysis())
        probe = stmt_node(cfg, func, "probe()")
        assert values[probe.index].before == {"parent_ino", "child_ino"}

    def test_lockset_release_kills(self):
        func, cfg = cfg_of("""
            def f(self):
                self.locks.acquire(a)
                self.locks.release(a)
                probe()
        """)
        values = solve(cfg, LocksetAnalysis())
        assert values[stmt_node(cfg, func, "probe()").index].before == frozenset()


# ---------------------------------------------------------------------------
# call graph


class TestCallGraph:
    def test_typed_attribute_and_import_resolution(self):
        modules = parse_modules({
            "blockdev/device.py": """
                class Device:
                    def write_block(self, block, data):
                        pass
            """,
            "basefs/mgr.py": """
                from blockdev.device import Device

                class Manager:
                    def __init__(self):
                        self.device = Device()

                    def poke(self):
                        self.device.write_block(0, b"")
            """,
        })
        graph = CallGraph(modules)
        poke = "basefs/mgr.py::Manager.poke"
        assert "blockdev/device.py::Device.write_block" in graph.edges[poke]

    def test_reachability_and_chain(self):
        modules = parse_modules({
            "a.py": """
                def leaf():
                    pass

                def mid():
                    leaf()

                def top():
                    mid()
            """,
        })
        graph = CallGraph(modules)
        parents = graph.reachable(["a.py::top"])
        assert "a.py::leaf" in parents
        chain = graph.chain(parents, "a.py::leaf")
        assert chain == ["a.py::top", "a.py::mid", "a.py::leaf"]

    def test_loop_element_types_resolve_method_calls(self):
        modules = parse_modules({
            "ops.py": """
                class FsOp:
                    def apply(self, fs):
                        pass
            """,
            "driver.py": """
                from ops import FsOp

                def run_all(ops: list[FsOp]):
                    for index, op in enumerate(ops):
                        op.apply(None)
            """,
        })
        graph = CallGraph(modules)
        assert "ops.py::FsOp.apply" in graph.edges["driver.py::run_all"]

    def test_builtin_collection_methods_are_not_fallback_resolved(self):
        modules = parse_modules({
            "cachey.py": """
                class InodeCache:
                    def get(self, ino):
                        pass
            """,
            "user.py": """
                def f(mapping):
                    mapping.get(1)
            """,
        })
        graph = CallGraph(modules)
        assert graph.edges["user.py::f"] == set()

    def test_import_binding_is_independent_of_file_order(self):
        # Attribute types must resolve even when the importing module
        # sorts (and so parses) before the module defining the class;
        # import binding is a second pass over the full module set.
        modules = parse_modules({
            "basefs/aaa_user.py": """
                from basefs.zzz_table.fdtable import FdTable

                class Owner:
                    def __init__(self):
                        self.fd_table = FdTable()

                    def grab(self):
                        self.fd_table.allocate(3)
            """,
            "basefs/zzz_table/fdtable.py": """
                class FdTable:
                    def allocate(self, ino):
                        pass
            """,
        })
        graph = CallGraph(modules)
        assert (
            "basefs/zzz_table/fdtable.py::FdTable.allocate"
            in graph.edges["basefs/aaa_user.py::Owner.grab"]
        )


class TestFallbackCap:
    @staticmethod
    def _tree_with_candidates(count: int) -> dict[str, str]:
        files = {
            f"impl_{index}.py": f"""
                class Impl{index}:
                    def spin(self):
                        pass
            """
            for index in range(count)
        }
        files["caller.py"] = """
            def drive(obj):
                obj.spin()
        """
        return files

    def test_at_cap_links_every_candidate(self):
        graph = CallGraph(parse_modules(self._tree_with_candidates(FALLBACK_CAP)))
        assert graph.edges["caller.py::drive"] == {
            f"impl_{index}.py::Impl{index}.spin" for index in range(FALLBACK_CAP)
        }

    def test_over_cap_links_nothing(self):
        graph = CallGraph(parse_modules(self._tree_with_candidates(FALLBACK_CAP + 1)))
        assert graph.edges.get("caller.py::drive", set()) == set()

    def test_single_candidate_links(self):
        graph = CallGraph(parse_modules(self._tree_with_candidates(1)))
        assert graph.edges["caller.py::drive"] == {"impl_0.py::Impl0.spin"}

    def test_builtin_method_names_never_fallback_even_with_one_candidate(self):
        modules = parse_modules({
            "cachey.py": """
                class Journal:
                    def append(self, rec):
                        pass

                    def insert(self, index, rec):
                        pass
            """,
            "user.py": """
                def f(items, rec):
                    items.append(rec)
                    items.insert(0, rec)
            """,
        })
        graph = CallGraph(modules)
        assert graph.edges.get("user.py::f", set()) == set()

    def test_witness_chain_through_fallback_edge(self):
        modules = parse_modules({
            "impl.py": """
                class Engine:
                    def spin(self, device):
                        device.write_block(0, b"")
            """,
            "blockdev/device.py": """
                class Device:
                    def write_block(self, block, data):
                        pass
            """,
            "caller.py": """
                def drive(obj, device):
                    obj.spin(device)
            """,
        })
        graph = CallGraph(modules)
        parents = graph.reachable(["caller.py::drive"])
        target = "blockdev/device.py::Device.write_block"
        assert target in parents
        assert graph.chain(parents, target) == [
            "caller.py::drive",
            "impl.py::Engine.spin",
            target,
        ]


# ---------------------------------------------------------------------------
# SHADOW-REACH


SINK_MODULES = {
    "blockdev/device.py": """
        class Device:
            def write_block(self, block, data):
                pass

            def read_block(self, block):
                return b""
    """,
    "ondisk/util.py": """
        from blockdev.device import Device

        def poke(device: Device):
            device.write_block(0, b"")

        def peek(device: Device):
            return device.read_block(0)
    """,
}


class TestShadowReach:
    def test_transitive_device_write_is_flagged(self):
        files = dict(SINK_MODULES)
        files["shadowfs/fs.py"] = """
            from ondisk.util import poke

            class Shadow:
                def boom(self):
                    poke(self.dev)
        """
        findings = findings_of(ShadowReachRule(), files)
        assert [f.rule_id for f in findings] == ["SHADOW-REACH"]
        assert findings[0].path == "shadowfs/fs.py"
        assert "poke" in findings[0].message
        assert "write_block" in findings[0].message

    def test_spec_code_is_protected_too(self):
        files = dict(SINK_MODULES)
        files["spec/verifier.py"] = """
            from ondisk.util import poke

            def check(dev):
                poke(dev)
        """
        findings = findings_of(ShadowReachRule(), files)
        assert [f.rule_id for f in findings] == ["SHADOW-REACH"]
        assert findings[0].path == "spec/verifier.py"

    def test_read_only_chain_passes(self):
        files = dict(SINK_MODULES)
        files["shadowfs/fs.py"] = """
            from ondisk.util import peek

            class Shadow:
                def scan(self):
                    return peek(self.dev)
        """
        assert findings_of(ShadowReachRule(), files) == []

    def test_cache_mutation_reach_is_flagged(self):
        files = {
            "basefs/inode_cache.py": """
                class InodeCache:
                    def insert(self, ino, inode):
                        pass
            """,
            "basefs/helper.py": """
                from basefs.inode_cache import InodeCache

                def warm(cache: InodeCache):
                    cache.insert(1, None)
            """,
            "shadowfs/fs.py": """
                from basefs.helper import warm

                def hydrate(cache):
                    warm(cache)
            """,
        }
        findings = findings_of(ShadowReachRule(), files)
        assert [f.rule_id for f in findings] == ["SHADOW-REACH"]
        assert "cache mutation" in findings[0].message


# ---------------------------------------------------------------------------
# REPLAY-DETERMINISM


class TestReplayDeterminism:
    def test_time_call_in_replay_closure_is_flagged(self):
        files = {
            "shadowfs/replay.py": """
                import time

                class ReplayEngine:
                    def run(self, records):
                        for record in records:
                            self._one(record)

                    def _one(self, record):
                        started = time.monotonic()
                        return started
            """,
        }
        findings = findings_of(ReplayDeterminismRule(), files)
        assert [f.rule_id for f in findings] == ["REPLAY-DETERMINISM"]
        assert "time.monotonic" in findings[0].message
        assert "ReplayEngine.run" in findings[0].message  # witness chain

    def test_from_import_binding_is_flagged(self):
        files = {
            "shadowfs/replay.py": """
                from random import randint

                class Replayer:
                    def run(self):
                        return randint(0, 7)
            """,
        }
        findings = findings_of(ReplayDeterminismRule(), files)
        assert [f.rule_id for f in findings] == ["REPLAY-DETERMINISM"]
        assert "randint" in findings[0].message

    def test_set_iteration_is_flagged_and_sorted_is_not(self):
        files = {
            "shadowfs/filesystem.py": """
                class ShadowFilesystem:
                    def __init__(self):
                        self._orphans: set[int] = set()

                    def bad(self):
                        return [ino for ino in self._orphans]

                    def good(self):
                        return [ino for ino in sorted(self._orphans)]
            """,
        }
        findings = findings_of(ReplayDeterminismRule(), files)
        assert [f.rule_id for f in findings] == ["REPLAY-DETERMINISM"]
        assert "unordered set" in findings[0].message
        assert "_orphans" in findings[0].message

    def test_clean_replay_passes(self):
        files = {
            "shadowfs/replay.py": """
                class ReplayEngine:
                    def run(self, records):
                        return [self._one(r) for r in records]

                    def _one(self, record):
                        return sorted({record.seq})
            """,
        }
        assert findings_of(ReplayDeterminismRule(), files) == []

    def test_nondeterminism_outside_the_closure_is_not_flagged(self):
        files = {
            "shadowfs/replay.py": """
                class ReplayEngine:
                    def run(self):
                        return 1
            """,
            "bench/timer.py": """
                import time

                def now():
                    return time.time()
            """,
        }
        assert findings_of(ReplayDeterminismRule(), files) == []


# ---------------------------------------------------------------------------
# LOCK-ORDER


class TestLockOrder:
    def test_nested_acquire_without_sanction_is_flagged(self):
        files = {
            "basefs/filesystem.py": """
                class Fs:
                    def rmdir(self, parent_ino, child_ino):
                        try:
                            self.locks.acquire(parent_ino)
                            self.locks.acquire(child_ino)
                            self._remove(parent_ino, child_ino)
                        finally:
                            self.locks.release_all()
            """,
        }
        findings = findings_of(LockOrderRule(), files)
        assert [f.rule_id for f in findings] == ["LOCK-ORDER"]
        assert "parent_ino" in findings[0].message  # the held set
        assert "child_ino" in findings[0].message  # the nested acquire

    def test_parent_sanction_passes(self):
        files = {
            "basefs/filesystem.py": """
                class Fs:
                    def rmdir(self, parent_ino, child_ino):
                        try:
                            self.locks.acquire(parent_ino)
                            self.locks.acquire(child_ino, parent=parent_ino)
                            self._remove(parent_ino, child_ino)
                        finally:
                            self.locks.release_all()
            """,
        }
        assert findings_of(LockOrderRule(), files) == []

    def test_acquire_pair_first_passes_but_pair_under_held_is_flagged(self):
        files = {
            "basefs/filesystem.py": """
                class Fs:
                    def rename(self, a, b):
                        try:
                            self.locks.acquire_pair(a, b)
                            self._move(a, b)
                        finally:
                            self.locks.release_all()

                    def bad_rename(self, root, a, b):
                        try:
                            self.locks.acquire(root)
                            self.locks.acquire_pair(a, b)
                            self._move(a, b)
                        finally:
                            self.locks.release_all()
            """,
        }
        findings = findings_of(LockOrderRule(), files)
        assert len(findings) == 1
        assert findings[0].line > 0
        assert "acquire_pair" in findings[0].message

    def test_release_between_acquires_passes(self):
        files = {
            "basefs/filesystem.py": """
                class Fs:
                    def twice(self, a, b):
                        try:
                            self.locks.acquire(a)
                            self._work(a)
                        finally:
                            self.locks.release_all()
                        try:
                            self.locks.acquire(b)
                            self._work(b)
                        finally:
                            self.locks.release_all()
            """,
        }
        assert findings_of(LockOrderRule(), files) == []

    def test_rule_is_scoped_to_basefs(self):
        files = {
            "tools/helper.py": """
                def nested(locks, a, b):
                    locks.acquire(a)
                    locks.acquire(b)
            """,
        }
        assert findings_of(LockOrderRule(), files) == []


# ---------------------------------------------------------------------------
# JOURNAL-BEFORE-WRITE


class TestJournalBeforeWrite:
    def test_unjournaled_write_is_flagged(self):
        files = {
            "basefs/filesystem.py": """
                class Fs:
                    def sync(self):
                        self.device.write_block(7, b"data")
            """,
        }
        findings = findings_of(JournalBeforeWriteRule(), files)
        assert [f.rule_id for f in findings] == ["JOURNAL-BEFORE-WRITE"]
        assert "write_block" in findings[0].message

    def test_commit_dominates_write_passes(self):
        files = {
            "basefs/filesystem.py": """
                class Fs:
                    def sync(self):
                        self.journal.commit(self._txn())
                        self.device.write_block(7, b"data")
            """,
        }
        assert findings_of(JournalBeforeWriteRule(), files) == []

    def test_commit_on_one_branch_only_is_flagged(self):
        files = {
            "basefs/filesystem.py": """
                class Fs:
                    def sync(self, fast):
                        if not fast:
                            self.journal.commit(self._txn())
                        self.device.write_block(7, b"data")
            """,
        }
        findings = findings_of(JournalBeforeWriteRule(), files)
        assert [f.rule_id for f in findings] == ["JOURNAL-BEFORE-WRITE"]

    def test_writer_append_counts_as_marker(self):
        files = {
            "basefs/journal_mgr.py": """
                class JournalManager:
                    def commit_one(self, txn, cache):
                        self.writer.append(txn)
                        cache.writeback(3)
            """,
        }
        assert findings_of(JournalBeforeWriteRule(), files) == []

    def test_rule_is_scoped_to_basefs(self):
        files = {
            "ondisk/journal.py": """
                def reset_journal(device):
                    device.write_block(1, b"jsb")
            """,
        }
        assert findings_of(JournalBeforeWriteRule(), files) == []


# ---------------------------------------------------------------------------
# LOCK-RELEASE (CFG upgrade + with-form, satellite 3)


class TestLockReleaseCfg:
    def test_with_managed_acquire_passes(self):
        files = {
            "fs.py": """
                def mkdir(self, path):
                    with self.locks.acquire(2):
                        self._insert(path)
            """,
        }
        assert findings_of(LockReleaseRule(), files) == []

    def test_acquire_inside_unrelated_with_is_flagged(self):
        files = {
            "fs.py": """
                def mkdir(self, path):
                    with self._span("mkdir"):
                        self.locks.acquire(2)
                        self._insert(path)
            """,
        }
        findings = findings_of(LockReleaseRule(), files)
        assert [f.rule_id for f in findings] == ["LOCK-RELEASE"]

    def test_straight_line_release_misses_the_acquire_failure_path(self):
        files = {
            "fs.py": """
                def op(self, c):
                    self.locks.acquire_pair(2, 3)
                    self.locks.release_all()
            """,
        }
        # acquire_pair can raise after taking its first lock; without a
        # finally, that unwinding path skips the release.
        findings = findings_of(LockReleaseRule(), files)
        assert [f.rule_id for f in findings] == ["LOCK-RELEASE"]

    def test_module_level_acquire_is_still_checked(self):
        files = {
            "fs.py": """
                locks.acquire(1)
            """,
        }
        findings = findings_of(LockReleaseRule(), files)
        assert [f.rule_id for f in findings] == ["LOCK-RELEASE"]
        assert "module level" in findings[0].message
