"""Permutation cross-check: the replay matrix held to its word
dynamically.

``replaymatrix.json`` is a static proof sketch; this suite replays real
oplogs in permuted orders (:mod:`repro.sweep.permute`) and checks both
directions of the claim against the committed artifact:

* **seeded conflicts** — pairs the matrix marks ``conflict`` must
  actually diverge when their records are swapped.  These are the
  harness's own proof of power: if a wrong ``commute`` verdict ever
  crept into the matrix for such a pair, this machinery would catch it.
* **green twins** — ``conditional-on-disjoint-subtree`` pairs exercised
  with genuinely disjoint subtrees must permute without any observable
  difference.  (Unconditional ``commute`` pairs are read-only in this
  tree — readers are not recorded, so the conditional pairs are the
  strongest replayable-commute claim the matrix makes.)
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.commute.surface import validate_replay_matrix
from repro.api import OpenFlags, op
from repro.sweep.permute import (
    matrix_verdict,
    permutation_diverges,
    record_workload,
    replay_order,
    swapped_tail_order,
)

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def matrix() -> dict:
    payload = json.loads((REPO / "replaymatrix.json").read_text())
    validate_replay_matrix(payload)
    return payload


def swap_diverges(operations) -> list[str]:
    """Record ``operations`` and replay with the last two records
    swapped, returning the divergences."""
    records, image_s0 = record_workload(operations)
    return permutation_diverges(records, image_s0, swapped_tail_order(len(records)))


# ---------------------------------------------------------------------------
# seeded conflicts: permuted replay diverges, matrix says conflict


class TestSeededConflicts:
    def test_create_create_colliding_dirent_diverges(self, matrix):
        # Two O_CREAT opens of the same path: the second open must see
        # the first's inode, so order decides which create wins the
        # dirent and which fd binds to which recorded inode.
        problems = swap_diverges([
            op("open", path="/clash", flags=int(OpenFlags.CREAT)),
            op("open", path="/clash", flags=int(OpenFlags.CREAT)),
        ])
        assert problems, "colliding creates must diverge under permutation"
        assert "CrossCheckMismatch" in problems[0]
        assert matrix_verdict(matrix, "open", "open") == "conflict"

    def test_write_truncate_same_inode_diverges(self, matrix):
        # write-then-truncate leaves 10 bytes; truncate-then-write
        # leaves 5000.  Same inode, order-dependent final size.
        problems = swap_diverges([
            op("open", path="/f", flags=int(OpenFlags.CREAT)),
            op("write", fd=3, data=b"x" * 5000),
            op("truncate", path="/f", size=10),
        ])
        assert problems, "write/truncate on one inode must diverge under permutation"
        assert any("size" in problem for problem in problems)
        assert matrix_verdict(matrix, "write", "truncate") == "conflict"


# ---------------------------------------------------------------------------
# green twins: disjoint subtrees permute cleanly, matrix agrees


class TestDisjointTwins:
    def test_mkdir_twins_in_disjoint_subtrees_permute_green(self, matrix):
        problems = swap_diverges([
            op("mkdir", path="/a"),
            op("mkdir", path="/b"),
            op("mkdir", path="/a/x"),
            op("mkdir", path="/b/y"),
        ])
        assert problems == []
        assert matrix_verdict(matrix, "mkdir", "mkdir") == (
            "conditional-on-disjoint-subtree"
        )

    def test_symlink_and_mkdir_in_disjoint_subtrees_permute_green(self, matrix):
        problems = swap_diverges([
            op("mkdir", path="/a"),
            op("mkdir", path="/b"),
            op("symlink", target="/tgt", path="/a/s"),
            op("mkdir", path="/b/z"),
        ])
        assert problems == []
        assert matrix_verdict(matrix, "mkdir", "symlink") == (
            "conditional-on-disjoint-subtree"
        )

    def test_same_subtree_twins_show_the_condition_is_load_bearing(self, matrix):
        # The matrix says *conditional*, not commute — two creates under
        # one parent collide on that parent's dentry namespace, and the
        # permuted replay sees it (ino pinning makes the creates land on
        # different inodes per order).
        problems = swap_diverges([
            op("mkdir", path="/a"),
            op("mkdir", path="/a/x"),
            op("mkdir", path="/a/y"),
        ])
        assert problems, "same-parent creates must diverge: the condition is real"
        assert matrix_verdict(matrix, "mkdir", "mkdir") == (
            "conditional-on-disjoint-subtree"
        )


# ---------------------------------------------------------------------------
# harness mechanics


class TestHarness:
    def test_identity_order_is_always_green(self):
        records, image_s0 = record_workload([
            op("mkdir", path="/d"),
            op("open", path="/d/f", flags=int(OpenFlags.CREAT)),
            op("write", fd=3, data=b"payload"),
        ])
        assert permutation_diverges(
            records, image_s0, list(range(len(records)))
        ) == []

    def test_replays_over_one_image_are_independent(self):
        # Two full replays over the same S0 image: the shadow never
        # writes the device, so the second replay is not contaminated
        # by the first.
        records, image_s0 = record_workload([
            op("mkdir", path="/d"),
            op("open", path="/d/f", flags=int(OpenFlags.CREAT)),
        ])
        first = replay_order(records, image_s0)
        second = replay_order(records, image_s0)
        assert first.error is None and second.error is None
        assert first.fd_table == second.fd_table

    def test_reads_are_not_recorded(self):
        records, _ = record_workload([
            op("mkdir", path="/d"),
            op("stat", path="/d"),
            op("readdir", path="/"),
        ])
        assert [record.op.name for record in records] == ["mkdir"]

    def test_non_permutation_order_is_rejected(self):
        records, image_s0 = record_workload([
            op("mkdir", path="/a"),
            op("mkdir", path="/b"),
        ])
        with pytest.raises(ValueError, match="not a permutation"):
            permutation_diverges(records, image_s0, [0, 0])

    def test_swapped_tail_order_needs_two_records(self):
        assert swapped_tail_order(2) == [1, 0]
        assert swapped_tail_order(5) == [0, 1, 2, 4, 3]
        with pytest.raises(ValueError, match="at least two"):
            swapped_tail_order(1)

    def test_matrix_verdict_sorts_the_pair_key(self, matrix):
        assert matrix_verdict(matrix, "write", "truncate") == matrix_verdict(
            matrix, "truncate", "write"
        )
