"""The persistence rule family on seeded synthetic trees.

Mutation-style validation, mirroring test_concurrency_rules: every rule
fires on at least two distinct seeded crash-consistency bugs with the
right file/line witness, stays silent on the clean twin, and the
declared-spec machinery (durability protocols, write-site roles,
sanctions, config errors) behaves per docs/STATIC_ANALYSIS.md.  The
crash-surface catalog tests pin the committed ``crashpoints.json`` to
what the tree actually contains.
"""

from __future__ import annotations

import json
import subprocess
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_tree
from repro.analysis.baseline import Baseline
from repro.analysis.cli import main as raelint_main
from repro.analysis.engine import Analyzer, ParsedModule
from repro.analysis.persistence import PersistenceConfigError, model_for
from repro.analysis.persistence.surface import (
    build_crash_surface,
    render_crash_surface,
    validate_crash_surface,
)
from repro.analysis.rules import (
    CrashHookCoverageRule,
    FlushBarrierRule,
    PersistOrderRule,
)

REPO = Path(__file__).resolve().parent.parent


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def parse_tree(files: dict[str, str]) -> list[ParsedModule]:
    return [ParsedModule.parse(path, textwrap.dedent(src)) for path, src in files.items()]


def rule_ids(report) -> list[str]:
    return [finding.rule_id for finding in report.findings]


# ---------------------------------------------------------------------------
# FLUSH-BARRIER


#: Commit record then in-place write, no flush between: the reordering
#: window a crash would land in.
UNFLUSHED_COMMIT = """
    class Journal:
        def commit(self, txn):
            self.device.write_block(0, txn)
            self.device.write_block(7, txn)
"""

ROLES_COMMIT_THEN_CHECKPOINT = """
    WRITE_SITE_ROLES = {
        "Journal.commit": ("commit-record", "checkpoint"),
    }
"""


class TestFlushBarrier:
    def test_unflushed_commit_record_before_checkpoint_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/persistence.py": ROLES_COMMIT_THEN_CHECKPOINT,
            "basefs/journal.py": UNFLUSHED_COMMIT,
        })
        report = analyze_tree(root, rules=[FlushBarrierRule()])
        assert rule_ids(report) == ["FLUSH-BARRIER"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("basefs/journal.py", 5)
        # The witness names the unflushed commit-record write.
        assert "basefs/journal.py:4" in finding.message
        assert "add a device flush" in finding.message

    def test_unsealed_callee_write_is_flagged_at_the_call(self, tmp_path):
        # Second seeded bug, interprocedural: the in-place write lives in
        # a callee, the pending commit record in the caller — the finding
        # anchors at the call and names both.
        root = write_tree(tmp_path, {
            "spec/persistence.py": """
                WRITE_SITE_ROLES = {
                    "Store.commit": ("commit-record",),
                }
            """,
            "basefs/store.py": """
                class Store:
                    def commit(self, txn):
                        self.device.write_block(0, txn)
                        self.checkpoint_home(txn)

                    def checkpoint_home(self, txn):
                        self.device.write_block(9, txn)
            """,
        })
        report = analyze_tree(root, rules=[FlushBarrierRule()])
        assert rule_ids(report) == ["FLUSH-BARRIER"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("basefs/store.py", 5)
        assert "call into Store.checkpoint_home" in finding.message
        assert "basefs/store.py:8" in finding.message  # the overtaking write
        assert "basefs/store.py:4" in finding.message  # the pending record

    def test_flush_between_commit_record_and_checkpoint_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/persistence.py": ROLES_COMMIT_THEN_CHECKPOINT,
            "basefs/journal.py": """
                class Journal:
                    def commit(self, txn):
                        self.device.write_block(0, txn)
                        self.device.flush()
                        self.device.write_block(7, txn)
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[FlushBarrierRule()])) == []

    def test_callee_sealing_its_own_record_passes(self, tmp_path):
        # The JournalWriter.append story: the callee flushes the commit
        # record it wrote, so the caller's writeback is provably safe.
        root = write_tree(tmp_path, {
            "spec/persistence.py": """
                WRITE_SITE_ROLES = {
                    "Store.append_record": ("commit-record",),
                }
            """,
            "basefs/store.py": """
                class Store:
                    def commit(self, txn):
                        self.append_record(txn)
                        self.cache.writeback(txn)

                    def append_record(self, txn):
                        self.device.write_block(0, txn)
                        self.device.flush()
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[FlushBarrierRule()])) == []

    def test_silent_without_a_persistence_spec(self, tmp_path):
        root = write_tree(tmp_path, {
            "basefs/journal.py": UNFLUSHED_COMMIT,
        })
        assert rule_ids(analyze_tree(root, rules=[FlushBarrierRule()])) == []


# ---------------------------------------------------------------------------
# PERSIST-ORDER


def _protocol_spec(phases: str, roles: str, events: str = "{}") -> str:
    return f"""
        DURABILITY_PROTOCOL = {{
            "Log.append": {{"phases": {phases}, "events": {events}}},
        }}
        WRITE_SITE_ROLES = {{
            "Log.append": {roles},
        }}
    """


class TestPersistOrder:
    def test_out_of_order_phase_is_flagged(self, tmp_path):
        # Declared journal-write first; the code leads with the commit
        # record.
        root = write_tree(tmp_path, {
            "spec/persistence.py": _protocol_spec(
                '("journal-write", "commit-record", "barrier")', '("commit-record",)'
            ),
            "ondisk/log.py": """
                class Log:
                    def append(self, rec):
                        self.device.write_block(8, rec)
            """,
        })
        report = analyze_tree(root, rules=[PersistOrderRule()])
        assert rule_ids(report) == ["PERSIST-ORDER"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("ondisk/log.py", 4)
        assert "commit-record out of order in Log.append" in finding.message
        assert "'start'" in finding.message

    def test_incomplete_return_is_flagged(self, tmp_path):
        # Second seeded bug: the protocol starts but a normal return
        # skips the barrier.
        root = write_tree(tmp_path, {
            "spec/persistence.py": _protocol_spec(
                '("journal-write", "barrier")', '("journal-write",)'
            ),
            "ondisk/log.py": """
                class Log:
                    def append(self, rec):
                        self.device.write_block(8, rec)
                        return True
            """,
        })
        report = analyze_tree(root, rules=[PersistOrderRule()])
        assert rule_ids(report) == ["PERSIST-ORDER"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("ondisk/log.py", 5)
        assert "durability protocol incomplete" in finding.message
        assert "phases [barrier] not performed" in finding.message

    def test_loop_repetition_and_zero_iteration_paths_pass(self, tmp_path):
        # A loop of journal-block writes is one journal-write phase, and
        # the statically-possible zero-iteration path must not flag the
        # commit record as out of order (must-semantics).
        root = write_tree(tmp_path, {
            "spec/persistence.py": _protocol_spec(
                '("journal-write", "commit-record", "barrier")',
                '("journal-write", "commit-record")',
            ),
            "ondisk/log.py": """
                class Log:
                    def append(self, recs):
                        for rec in recs:
                            self.device.write_block(1, rec)
                        self.device.write_block(0, recs)
                        self.device.flush()
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[PersistOrderRule()])) == []

    def test_optional_phase_may_be_skipped(self, tmp_path):
        # "data-write?" is skippable: a commit with no dirty data pages.
        root = write_tree(tmp_path, {
            "spec/persistence.py": _protocol_spec(
                '("journal-write", "data-write?", "barrier")', '("journal-write",)'
            ),
            "ondisk/log.py": """
                class Log:
                    def append(self, rec):
                        self.device.write_block(1, rec)
                        self.device.flush()
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[PersistOrderRule()])) == []

    def test_exceptional_exit_is_exempt(self, tmp_path):
        # An exception abandons the transaction before its commit record
        # — exactly what journal replay recovers — so the raise path is
        # not an incomplete protocol.
        root = write_tree(tmp_path, {
            "spec/persistence.py": _protocol_spec(
                '("journal-write", "commit-record", "barrier")',
                '("journal-write", "commit-record")',
            ),
            "ondisk/log.py": """
                class Log:
                    def append(self, rec):
                        self.device.write_block(1, rec)
                        if not rec:
                            raise ValueError(rec)
                        self.device.write_block(0, rec)
                        self.device.flush()
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[PersistOrderRule()])) == []

    def test_early_return_before_protocol_starts_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/persistence.py": _protocol_spec(
                '("journal-write", "commit-record", "barrier")',
                '("journal-write", "commit-record")',
            ),
            "ondisk/log.py": """
                class Log:
                    def append(self, recs):
                        if not recs:
                            return 0
                        self.device.write_block(1, recs)
                        self.device.write_block(0, recs)
                        self.device.flush()
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[PersistOrderRule()])) == []

    def test_delegated_event_counts_as_its_declared_phase(self, tmp_path):
        # `self.journal.append(...)` performs the commit record on the
        # caller's behalf; the events map makes the typestate see it.
        spec = """
            DURABILITY_PROTOCOL = {
                "Fs.commit": {
                    "phases": ("commit-record", "barrier"),
                    "events": {"journal.append": "commit-record"},
                },
            }
        """
        clean = write_tree(tmp_path / "clean", {
            "spec/persistence.py": spec,
            "basefs/fs.py": """
                class Fs:
                    def commit(self, txn):
                        self.journal.append(txn)
                        self.device.flush()
            """,
        })
        assert rule_ids(analyze_tree(clean, rules=[PersistOrderRule()])) == []

        buggy = write_tree(tmp_path / "buggy", {
            "spec/persistence.py": spec,
            "basefs/fs.py": """
                class Fs:
                    def commit(self, txn):
                        self.journal.append(txn)
            """,
        })
        report = analyze_tree(buggy, rules=[PersistOrderRule()])
        assert rule_ids(report) == ["PERSIST-ORDER"]
        assert "phases [barrier] not performed" in report.findings[0].message


# ---------------------------------------------------------------------------
# CRASH-HOOK-COVERAGE


#: One hook-covered persistence point (sync -> flush_home) and one
#: uncovered one (mkfs).
PARTIAL_COVERAGE = """
    class Fs:
        def sync(self):
            self.hooks.fire("sync.pre")
            self.flush_home()

        def flush_home(self):
            self.device.write_block(0, b"x")

        def mkfs(self):
            self.device.write_block(1, b"x")
"""


class TestCrashHookCoverage:
    def test_unreachable_point_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/persistence.py": "PERSIST_SANCTIONS = {}\n",
            "blockdev/disk.py": """
                class Disk:
                    def zap(self):
                        self.device.write_block(0, b"")
            """,
        })
        report = analyze_tree(root, rules=[CrashHookCoverageRule()])
        assert rule_ids(report) == ["CRASH-HOOK-COVERAGE"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("blockdev/disk.py", 4)
        assert "Disk.zap" in finding.message
        assert "not reachable from any fault-injection hook" in finding.message

    def test_hook_covers_only_its_reachable_defs(self, tmp_path):
        # Second seeded bug: a hook exists but the call graph does not
        # carry it to mkfs; flush_home (reached through sync) is clean.
        root = write_tree(tmp_path, {
            "spec/persistence.py": "PERSIST_SANCTIONS = {}\n",
            "basefs/fs.py": PARTIAL_COVERAGE,
        })
        report = analyze_tree(root, rules=[CrashHookCoverageRule()])
        assert rule_ids(report) == ["CRASH-HOOK-COVERAGE"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("basefs/fs.py", 11)
        assert "Fs.mkfs" in finding.message

    def test_sanctioned_point_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/persistence.py": """
                PERSIST_SANCTIONS = {
                    "Fs.mkfs": "offline image build: no mounted state to recover",
                }
            """,
            "basefs/fs.py": PARTIAL_COVERAGE,
        })
        assert rule_ids(analyze_tree(root, rules=[CrashHookCoverageRule()])) == []

    def test_stale_sanction_on_covered_function_raises(self):
        modules = parse_tree({
            "spec/persistence.py": """
                PERSIST_SANCTIONS = {
                    "Fs.flush_home": "pretend this is unreachable",
                }
            """,
            "basefs/fs.py": PARTIAL_COVERAGE,
        })
        with pytest.raises(PersistenceConfigError, match="already\\s+.*hook-covered"):
            model_for(modules)

    def test_sanction_on_pointless_function_raises(self):
        modules = parse_tree({
            "spec/persistence.py": """
                PERSIST_SANCTIONS = {
                    "Fs.sync": "sync itself writes nothing",
                }
            """,
            "basefs/fs.py": PARTIAL_COVERAGE,
        })
        with pytest.raises(PersistenceConfigError, match="no persistence points"):
            model_for(modules)


# ---------------------------------------------------------------------------
# declared-spec config errors: always exit 2, never findings


class TestConfigErrors:
    def test_unknown_kind_raises_at_parse_time(self):
        modules = parse_tree({
            "spec/persistence.py": _protocol_spec(
                '("jornal-write",)', '("journal-write",)'
            ),
            "ondisk/log.py": "class Log:\n    def append(self, rec):\n        pass\n",
        })
        with pytest.raises(PersistenceConfigError, match="jornal-write"):
            model_for(modules)

    def test_unbound_protocol_raises(self):
        modules = parse_tree({
            "spec/persistence.py": """
                DURABILITY_PROTOCOL = {
                    "Ghost.commit": {"phases": ("barrier",), "events": {}},
                }
            """,
            "ondisk/log.py": "class Log:\n    def append(self, rec):\n        pass\n",
        })
        with pytest.raises(PersistenceConfigError, match="Ghost.commit.*names no function"):
            model_for(modules)

    def test_site_role_arity_mismatch_raises(self):
        modules = parse_tree({
            "spec/persistence.py": ROLES_COMMIT_THEN_CHECKPOINT,
            "basefs/journal.py": """
                class Journal:
                    def commit(self, txn):
                        self.device.write_block(0, txn)
            """,
        })
        with pytest.raises(PersistenceConfigError, match="declares 2 write_block sites"):
            model_for(modules)

    def test_cli_reports_spec_error_as_exit_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "spec/persistence.py": """
                PERSIST_SANCTIONS = {
                    "Ghost": "no such function anywhere",
                }
            """,
            "basefs/fs.py": PARTIAL_COVERAGE,
        })
        assert raelint_main([str(root)]) == 2
        err = capsys.readouterr().err
        assert "persistence spec error" in err
        assert "Ghost" in err
        # The error names the spec file and the offending line.
        assert "spec/persistence.py:3" in err


# ---------------------------------------------------------------------------
# the crash-surface catalog


class TestCrashSurface:
    def test_surface_structure_and_determinism(self):
        modules = parse_tree({
            "spec/persistence.py": """
                WRITE_SITE_ROLES = {
                    "Fs.commit": ("commit-record",),
                }
                CRASH_ENTRY_POINTS = {
                    "commit": "Fs.commit",
                }
            """,
            "basefs/fs.py": """
                class Fs:
                    def commit(self, txn):
                        self.hooks.fire("commit.pre")
                        self.device.write_block(0, txn)
                        self.device.flush()
            """,
        })
        model = model_for(modules)
        payload = build_crash_surface(model)
        validate_crash_surface(payload)
        refs = {point["ref"]: point for point in payload["points"]}
        assert set(refs) == {"basefs/fs.py:5", "basefs/fs.py:6"}
        record = refs["basefs/fs.py:5"]
        assert record["kind"] == "commit-record"
        assert record["function"] == "Fs.commit"
        assert record["hook"] == "commit.pre"
        assert record["ops"] == ["commit"]
        op = payload["ops"]["commit"]
        assert op["entry"] == "Fs.commit"
        assert {p["ref"] for p in op["points"]} == set(refs)
        # Determinism: render twice, round-trip, byte-identical.
        rendered = render_crash_surface(payload)
        assert rendered == render_crash_surface(build_crash_surface(model))
        validate_crash_surface(json.loads(rendered))

    def test_emitted_catalog_matches_committed_copy(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        root = str(REPO / "src" / "repro")
        assert raelint_main([root, "--emit-crash-surface", str(first)]) == 0
        assert raelint_main([root, "--emit-crash-surface", str(second)]) == 0
        assert first.read_text() == second.read_text()
        # The committed catalog is exactly what the tree regenerates —
        # the invariant the CI drift step enforces.
        assert first.read_text() == (REPO / "crashpoints.json").read_text()

    def test_committed_catalog_is_schema_valid_and_actionable(self):
        payload = json.loads((REPO / "crashpoints.json").read_text())
        validate_crash_surface(payload)
        assert payload["points"]
        # Every persistence point is on some op's crash path (the sweep
        # work-list has no orphans); hook-or-sanction is enforced by the
        # schema check above.
        assert all(point["ops"] for point in payload["points"])

    def test_emit_without_a_spec_exits_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "basefs/journal.py": UNFLUSHED_COMMIT,
        })
        out = tmp_path / "crashpoints.json"
        assert raelint_main([str(root), "--emit-crash-surface", str(out)]) == 2
        assert "spec/persistence.py" in capsys.readouterr().err
        assert not out.exists()


# ---------------------------------------------------------------------------
# satellite: atomic baseline save


class TestBaselineAtomicSave:
    def test_failed_replace_leaves_target_intact(self, tmp_path, monkeypatch):
        target = tmp_path / "raelint.baseline.json"
        Baseline(entries={("a.py", "RULE", "msg")}).save(target)
        original = target.read_text()

        def boom(src, dst):
            raise OSError("disk full")

        # Baseline.save delegates to the shared repro.util.atomic_write_json.
        monkeypatch.setattr("repro.util.os.replace", boom)
        with pytest.raises(OSError):
            Baseline(entries=set()).save(target)
        # The committed ratchet file is untouched and the staging file
        # does not linger.
        assert target.read_text() == original
        assert not target.with_name(target.name + ".tmp").exists()

    def test_save_replaces_and_leaves_no_staging_file(self, tmp_path):
        target = tmp_path / "raelint.baseline.json"
        Baseline(entries={("a.py", "RULE", "old")}).save(target)
        Baseline(entries={("a.py", "RULE", "new")}).save(target)
        assert not target.with_name(target.name + ".tmp").exists()
        assert Baseline.load(target).entries == {("a.py", "RULE", "new")}


# ---------------------------------------------------------------------------
# satellite: --changed-since


def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@example.com", *args],
        cwd=cwd, check=True, capture_output=True, text=True,
    )


class TestChangedSince:
    def test_scopes_reporting_to_the_merge_base_delta(self, tmp_path, capsys):
        # Base commit: spec + a buggy file (pre-existing debt).  Feature
        # commit: a second buggy file.  --changed-since base must report
        # only the feature file's finding.
        spec = """
            WRITE_SITE_ROLES = {
                "Cold.commit": ("commit-record", "checkpoint"),
                "Hot.commit": ("commit-record", "checkpoint"),
            }
        """
        write_tree(tmp_path, {
            "spec/persistence.py": spec,
            "basefs/cold.py": """
                class Cold:
                    def commit(self, txn):
                        self.device.write_block(0, txn)
                        self.device.write_block(7, txn)
            """,
        })
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-q", "-m", "base")
        _git(tmp_path, "branch", "base")
        write_tree(tmp_path, {
            "basefs/hot.py": """
                class Hot:
                    def commit(self, txn):
                        self.device.write_block(0, txn)
                        self.device.write_block(7, txn)
            """,
        })
        _git(tmp_path, "add", "-A")
        _git(tmp_path, "commit", "-q", "-m", "feature")

        args = [str(tmp_path), "--select", "FLUSH-BARRIER", "--fail-on-findings"]
        # Clean working tree: plain --changed-only has nothing to report.
        assert raelint_main(args + ["--changed-only"]) == 0
        assert "no changed files" in capsys.readouterr().out
        # Against the merge base, the feature file's finding surfaces —
        # and only it.
        assert raelint_main(args + ["--changed-only", "--changed-since", "base"]) == 1
        out = capsys.readouterr().out
        assert "basefs/hot.py" in out
        assert "basefs/cold.py" not in out

    def test_changed_since_requires_changed_only(self, tmp_path, capsys):
        assert raelint_main([str(tmp_path), "--changed-since", "main"]) == 2
        assert "--changed-since requires --changed-only" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# satellite: --format=github severity split


class TestGithubFormat:
    def test_baselined_findings_render_as_notice(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "spec/persistence.py": ROLES_COMMIT_THEN_CHECKPOINT,
            "basefs/journal.py": UNFLUSHED_COMMIT,
        })
        baseline = tmp_path / "baseline.json"
        args = [str(root), "--select", "FLUSH-BARRIER", "--baseline", str(baseline)]
        assert raelint_main(args + ["--write-baseline"]) == 0
        capsys.readouterr()
        # Known debt the ratchet already tracks: annotate, don't scream.
        assert raelint_main(args + ["--format", "github", "--fail-on-findings"]) == 0
        out = capsys.readouterr().out
        assert "::notice " in out
        assert "(baselined)" in out
        assert "::error" not in out

    def test_new_findings_render_as_error(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "spec/persistence.py": ROLES_COMMIT_THEN_CHECKPOINT,
            "basefs/journal.py": UNFLUSHED_COMMIT,
        })
        baseline = tmp_path / "baseline.json"  # absent: everything is new
        code = raelint_main([
            str(root), "--select", "FLUSH-BARRIER", "--baseline", str(baseline),
            "--format", "github", "--fail-on-findings",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "basefs/journal.py" in out


# ---------------------------------------------------------------------------
# the real tree: the spec binds and the family runs clean


class TestRealTree:
    def test_persistence_family_is_clean_on_src_repro(self):
        root = REPO / "src" / "repro"
        report = analyze_tree(root, rules=[
            FlushBarrierRule(), PersistOrderRule(), CrashHookCoverageRule(),
        ])
        assert rule_ids(report) == [], "\n".join(f.render() for f in report.findings)

    def test_model_binds_the_declared_surface(self):
        # The declarations are load-bearing: entry points resolve, points
        # exist, and no unflushed commit record survives composition.
        root = REPO / "src" / "repro"
        modules, _ = Analyzer(root).parse_all()
        model = model_for(modules)
        assert model is not None
        assert model.points
        assert {"commit", "mount", "journal-recover", "mkfs"} <= set(model.entries)
        assert model.violations == []
