"""Recovery is a deterministic function of (image, op log).

Replaying the same recorded window over the same starting image twice —
in fresh shadows — must produce byte-identical hand-off payloads: same
metadata blocks, same data pages, same fd table, same accounting.  This
is what makes recovery auditable (and what the separate-process mode
silently relies on: the child's answer must equal what an in-process
shadow would have said).
"""

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.core.oplog import OpLog
from repro.ondisk.image import clone_to_memory
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.replay import ReplayEngine
from repro.workloads import WorkloadGenerator, fileserver_profile
from tests.conftest import formatted_device


def build_window(n_ops: int, seed: int):
    device = formatted_device(16384)
    image_s0 = clone_to_memory(device)
    base = BaseFilesystem(device)
    log = OpLog()
    for index, operation in enumerate(WorkloadGenerator(fileserver_profile(), seed=seed).ops(n_ops)):
        if operation.name == "fsync":
            continue
        outcome = operation.apply(base, opseq=index + 1)
        if operation.is_mutation:
            log.record(index + 1, operation, outcome)
    return image_s0, log


def replay_once(image_s0, log, inflight=None):
    shadow = ShadowFilesystem(clone_to_memory(image_s0))
    engine = ReplayEngine(shadow)
    update = engine.run(log.entries, log.fd_snapshot, inflight)
    return update, engine.report


def test_handoff_payload_is_deterministic():
    image_s0, log = build_window(150, seed=91)
    inflight = (9999, op("mkdir", path="/inflight-dir"))
    first, report_a = replay_once(image_s0, log, inflight)
    second, report_b = replay_once(image_s0, log, inflight)

    assert first.metadata_blocks == second.metadata_blocks
    assert first.roles == second.roles
    assert first.data_pages == second.data_pages
    assert first.touched_inos == second.touched_inos
    assert {fd: (s.ino, s.offset, int(s.flags)) for fd, s in first.fd_table.items()} == {
        fd: (s.ino, s.offset, int(s.flags)) for fd, s in second.fd_table.items()
    }
    assert (first.free_blocks, first.free_inodes) == (second.free_blocks, second.free_inodes)
    assert first.inflight_result.same_outcome_as(second.inflight_result)
    assert report_a.constrained_ops == report_b.constrained_ops


def test_replay_is_independent_of_prior_replays():
    """A replay must not leak state into the image it reads: run one
    replay, then a second over the *same* (not re-cloned) fenced image."""
    image_s0, log = build_window(80, seed=92)
    shadow_one = ShadowFilesystem(image_s0)
    first = ReplayEngine(shadow_one).run(log.entries, log.fd_snapshot, None)
    shadow_two = ShadowFilesystem(image_s0)  # same device object
    second = ReplayEngine(shadow_two).run(log.entries, log.fd_snapshot, None)
    assert first.metadata_blocks == second.metadata_blocks
    assert first.data_pages == second.data_pages
