"""ENOSPC behaviour on a nearly-full device: early detection under
delayed allocation, base/shadow agreement, and recovery after frees."""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.blockdev.device import MemoryBlockDevice
from repro.errors import Errno, FsError
from repro.fsck import Fsck
from repro.ondisk.layout import BLOCK_SIZE
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.filesystem import ShadowFilesystem


def tiny_device() -> MemoryBlockDevice:
    device = MemoryBlockDevice(block_count=1024)  # one group, ~4 MiB
    mkfs(device)
    return device


class TestBaseEnospc:
    def test_delalloc_reservation_rejects_overcommit(self, seq):
        fs = BaseFilesystem(tiny_device())
        fd = fs.open("/hog", OpenFlags.CREAT, opseq=seq())
        free = fs.alloc.free_blocks
        with pytest.raises(FsError) as e:
            fs.write(fd, b"x" * ((free + 10) * BLOCK_SIZE), opseq=seq())
        assert e.value.errno == Errno.ENOSPC
        # The failed write reserved nothing permanently.
        assert fs.alloc.reserved_blocks == 0
        fs.close(fd, opseq=seq())

    def test_commit_never_fails_after_accepted_writes(self, seq):
        """The delalloc promise: any accepted write can be committed."""
        fs = BaseFilesystem(tiny_device())
        fd = fs.open("/f", OpenFlags.CREAT, opseq=seq())
        written = 0
        while True:
            try:
                fs.write(fd, b"y" * BLOCK_SIZE, opseq=seq())
                written += 1
            except FsError as err:
                assert err.errno == Errno.ENOSPC
                break
        fs.commit()  # must not raise
        assert fs.stat("/f").size == written * BLOCK_SIZE
        fs.close(fd, opseq=seq())
        fs.unmount()

    def test_mkdir_enospc_when_full(self, seq):
        fs = BaseFilesystem(tiny_device())
        fd = fs.open("/hog", OpenFlags.CREAT, opseq=seq())
        while True:
            try:
                fs.write(fd, b"z" * BLOCK_SIZE, opseq=seq())
            except FsError:
                break
        with pytest.raises(FsError) as e:
            fs.mkdir("/d", opseq=seq())
        assert e.value.errno == Errno.ENOSPC
        fs.close(fd, opseq=seq())

    def test_space_recovered_after_unlink_and_commit(self, seq):
        fs = BaseFilesystem(tiny_device())
        free_start = fs.alloc.free_blocks
        fd = fs.open("/hog", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"w" * (100 * BLOCK_SIZE), opseq=seq())
        fs.close(fd, opseq=seq())
        fs.commit()
        fs.unlink("/hog", opseq=seq())
        # Freed blocks are counted immediately...
        assert fs.alloc.free_blocks == free_start
        # ...but only reusable after the freeing transaction commits.
        fs.commit()
        fd = fs.open("/hog2", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"w" * (100 * BLOCK_SIZE), opseq=seq())
        fs.close(fd, opseq=seq())
        fs.commit()
        fs.unmount()
        device = fs.device
        assert Fsck(device).run().clean


class TestShadowEnospc:
    def test_shadow_enospc_matches_base_threshold(self, seq):
        """Fill both implementations identically; ENOSPC must land on the
        same write (the accounting-equality analysis in DESIGN)."""
        base = BaseFilesystem(tiny_device())
        shadow = ShadowFilesystem(tiny_device())
        base_fd = base.open("/f", OpenFlags.CREAT, opseq=1)
        shadow_fd = shadow.open("/f", OpenFlags.CREAT, opseq=1)
        step = 0
        while True:
            step += 1
            base_err = shadow_err = None
            try:
                base.write(base_fd, b"q" * (4 * BLOCK_SIZE), opseq=step + 1)
            except FsError as err:
                base_err = err.errno
            try:
                shadow.write(shadow_fd, b"q" * (4 * BLOCK_SIZE), opseq=step + 1)
            except FsError as err:
                shadow_err = err.errno
            assert base_err == shadow_err, f"step {step}: {base_err} vs {shadow_err}"
            if base_err is not None:
                break
        assert base.stat("/f").size == shadow.stat("/f").size
