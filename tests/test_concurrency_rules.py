"""The concurrency rule family on seeded synthetic trees.

Mutation-style validation: every rule fires on at least two distinct
seeded bugs with the right file/line witness, stays silent on the clean
twin, and the declared-spec machinery (registry seeding, sentinel
sanctions, config errors) behaves per docs/STATIC_ANALYSIS.md.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_tree
from repro.analysis.cli import main as raelint_main
from repro.analysis.concurrency import ConcurrencyConfigError, model_for
from repro.analysis.engine import ParsedModule
from repro.analysis.rules import (
    AsyncBlockingRule,
    AtomicRmwRule,
    AwaitHoldingLockRule,
    RaceLocksetRule,
)


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return tmp_path


def parse_tree(files: dict[str, str]) -> list[ParsedModule]:
    return [ParsedModule.parse(path, textwrap.dedent(src)) for path, src in files.items()]


def rule_ids(report) -> list[str]:
    return [finding.rule_id for finding in report.findings]


#: Registry + one guarded and one sanctioned attribute, shared by the
#: lockset fixtures.
SPEC = """
    SHARED_CLASSES = ("Counter",)
    GUARDED_BY = {
        "Counter.value": "self._lock",
        "Counter.tag": "<single-threaded>",
    }
"""

COUNTER = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.value = 0
            self.items = []
            self.tag = None
"""


def counter_file(suffix: str) -> str:
    """COUNTER plus extra top-level code; both parts dedent
    independently so the literals can live at different indents."""
    return textwrap.dedent(COUNTER) + textwrap.dedent(suffix)


# ---------------------------------------------------------------------------
# RACE-LOCKSET


class TestRaceLockset:
    def test_write_without_declared_guard_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def reset(c: Counter):
                    c.value = 0
            """),
        })
        report = analyze_tree(root, rules=[RaceLocksetRule()])
        assert rule_ids(report) == ["RACE-LOCKSET"]
        finding = report.findings[0]
        assert finding.path == "core/counter.py"
        assert finding.line == 12  # the unguarded c.value write
        assert "'self._lock'" in finding.message

    def test_write_with_no_guard_declaration_is_flagged(self, tmp_path):
        # Second seeded bug: a *different* attribute, mutated through a
        # container method, with no GUARDED_BY entry at all.
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def record(c: Counter, item):
                    with c._lock:
                        c.items.append(item)
            """),
        })
        report = analyze_tree(root, rules=[RaceLocksetRule()])
        assert rule_ids(report) == ["RACE-LOCKSET"]
        finding = report.findings[0]
        assert finding.path == "core/counter.py"
        assert finding.line == 13  # the append() mutation
        assert "no GUARDED_BY declaration" in finding.message

    def test_write_under_with_lock_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def reset(c: Counter):
                    with c._lock:
                        c.value = 0
            """),
        })
        assert rule_ids(analyze_tree(root, rules=[RaceLocksetRule()])) == []

    def test_write_between_manual_acquire_release_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def reset(c: Counter):
                    c._lock.acquire()
                    c.value = 0
                    c._lock.release()
            """),
        })
        assert rule_ids(analyze_tree(root, rules=[RaceLocksetRule()])) == []

    def test_single_threaded_sentinel_sanctions_the_write(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def retag(c: Counter):
                    c.tag = "x"
            """),
        })
        assert rule_ids(analyze_tree(root, rules=[RaceLocksetRule()])) == []

    def test_init_writes_are_exempt_and_reads_never_fire(self, tmp_path):
        # COUNTER's __init__ writes every attribute unguarded; reads of
        # shared attributes are not writes.  Neither may fire.
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def peek(c: Counter):
                    return c.value
            """),
        })
        assert rule_ids(analyze_tree(root, rules=[RaceLocksetRule()])) == []

    def test_silent_without_a_concurrency_spec(self, tmp_path):
        root = write_tree(tmp_path, {
            "core/counter.py": counter_file("""
                def reset(c: Counter):
                    c.value = 0
            """),
        })
        assert rule_ids(analyze_tree(root, rules=[RaceLocksetRule()])) == []


# ---------------------------------------------------------------------------
# ATOMIC-RMW


class TestAtomicRmw:
    def test_rmw_without_declared_guard_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def bump(c: Counter):
                    c.value += 1
            """),
        })
        report = analyze_tree(root, rules=[AtomicRmwRule()])
        assert rule_ids(report) == ["ATOMIC-RMW"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("core/counter.py", 12)
        assert "'self._lock'" in finding.message

    def test_unsynchronized_rmw_on_undeclared_attribute_is_flagged(self, tmp_path):
        # Second seeded bug: no GUARDED_BY entry for the attribute, and
        # no lock held at all.
        spec = 'SHARED_CLASSES = ("Gauge",)\nGUARDED_BY = {}\n'
        root = write_tree(tmp_path, {
            "spec/concurrency.py": spec,
            "core/gauge.py": """
                class Gauge:
                    def __init__(self):
                        self.hits = 0

                def tick(g: Gauge):
                    g.hits += 1
            """,
        })
        report = analyze_tree(root, rules=[AtomicRmwRule()])
        assert rule_ids(report) == ["ATOMIC-RMW"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("core/gauge.py", 7)
        assert "unsynchronized read-modify-write" in finding.message

    def test_read_then_write_split_by_await_is_flagged(self, tmp_path):
        spec = 'SHARED_CLASSES = ("Gauge",)\nGUARDED_BY = {}\n'
        root = write_tree(tmp_path, {
            "spec/concurrency.py": spec,
            "core/gauge.py": """
                class Gauge:
                    def __init__(self):
                        self.hits = 0

                async def slow_bump(g: Gauge):
                    snapshot = g.hits
                    await checkpoint()
                    g.hits = snapshot + 1

                async def checkpoint():
                    pass
            """,
        })
        report = analyze_tree(root, rules=[AtomicRmwRule()])
        assert rule_ids(report) == ["ATOMIC-RMW"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("core/gauge.py", 9)
        assert "split by an await" in finding.message

    def test_rmw_under_its_guard_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC,
            "core/counter.py": counter_file("""
                def bump(c: Counter):
                    with c._lock:
                        c.value += 1
            """),
        })
        assert rule_ids(analyze_tree(root, rules=[AtomicRmwRule()])) == []

    def test_await_compound_spanned_by_one_lock_passes(self, tmp_path):
        spec = 'SHARED_CLASSES = ("Gauge",)\nGUARDED_BY = {}\n'
        root = write_tree(tmp_path, {
            "spec/concurrency.py": spec,
            "core/gauge.py": """
                class Gauge:
                    def __init__(self):
                        self.hits = 0

                async def slow_bump(g: Gauge, big_lock):
                    async with g.hits_lock:
                        snapshot = g.hits
                        await checkpoint()
                        g.hits = snapshot + 1

                async def checkpoint():
                    pass
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[AtomicRmwRule()])) == []


# ---------------------------------------------------------------------------
# ASYNC-BLOCKING


class TestAsyncBlocking:
    def test_blocking_call_in_coroutine_body_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                async def serve():
                    handle = open("/tmp/data")
                    return handle
            """,
        })
        report = analyze_tree(root, rules=[AsyncBlockingRule()])
        assert rule_ids(report) == ["ASYNC-BLOCKING"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("svc/loop.py", 3)
        assert "open()" in finding.message
        assert "serve" in finding.message

    def test_blocking_call_behind_a_sync_helper_carries_the_chain(self, tmp_path):
        # Second seeded bug: time.sleep two sync hops away; the finding
        # must name the coroutine and the witness chain.
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                import time

                def nap():
                    time.sleep(0.1)

                def relay():
                    nap()

                async def serve():
                    relay()
            """,
        })
        report = analyze_tree(root, rules=[AsyncBlockingRule()])
        assert rule_ids(report) == ["ASYNC-BLOCKING"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("svc/loop.py", 5)
        assert "time.sleep()" in finding.message
        assert "serve -> relay -> nap" in finding.message

    def test_from_import_alias_is_resolved(self, tmp_path):
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                from time import sleep as snooze

                async def serve():
                    snooze(1)
            """,
        })
        report = analyze_tree(root, rules=[AsyncBlockingRule()])
        assert rule_ids(report) == ["ASYNC-BLOCKING"]
        assert "time.sleep()" in report.findings[0].message

    def test_sync_lock_acquire_in_coroutine_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                async def serve(lock):
                    lock.acquire()
            """,
        })
        report = analyze_tree(root, rules=[AsyncBlockingRule()])
        assert rule_ids(report) == ["ASYNC-BLOCKING"]
        assert "blocks the event loop" in report.findings[0].message

    def test_asyncio_idioms_pass(self, tmp_path):
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                import asyncio
                import time

                def blocking_work():
                    time.sleep(1)

                async def serve(lock):
                    await asyncio.sleep(1)
                    await lock.acquire()
                    # Executor dispatch passes the callable without
                    # calling it: the sanctioned escape hatch.
                    await asyncio.to_thread(blocking_work)
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[AsyncBlockingRule()])) == []

    def test_blocking_call_attributed_to_nearest_coroutine_only(self, tmp_path):
        # outer -> inner (async) -> nap: nap's sleep belongs to inner;
        # outer must not repeat it.
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                import time

                def nap():
                    time.sleep(0.1)

                async def inner():
                    nap()

                async def outer():
                    await inner()
            """,
        })
        report = analyze_tree(root, rules=[AsyncBlockingRule()])
        assert rule_ids(report) == ["ASYNC-BLOCKING"]
        assert "inner" in report.findings[0].message


# ---------------------------------------------------------------------------
# AWAIT-HOLDING-LOCK


class TestAwaitHoldingLock:
    def test_await_inside_sync_with_lock_is_flagged(self, tmp_path):
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                async def serve(lock):
                    with lock:
                        await checkpoint()

                async def checkpoint():
                    pass
            """,
        })
        report = analyze_tree(root, rules=[AwaitHoldingLockRule()])
        assert rule_ids(report) == ["AWAIT-HOLDING-LOCK"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("svc/loop.py", 4)
        assert "lock" in finding.message

    def test_await_after_manual_acquire_is_flagged(self, tmp_path):
        # Second seeded bug: the LockManager idiom — acquire by inode,
        # await before release.
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                async def rename(locks, ino):
                    locks.acquire(ino)
                    await checkpoint()
                    locks.release(ino)

                async def checkpoint():
                    pass
            """,
        })
        report = analyze_tree(root, rules=[AwaitHoldingLockRule()])
        assert rule_ids(report) == ["AWAIT-HOLDING-LOCK"]
        finding = report.findings[0]
        assert (finding.path, finding.line) == ("svc/loop.py", 4)

    def test_release_before_await_passes(self, tmp_path):
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                async def rename(locks, ino):
                    locks.acquire(ino)
                    locks.release(ino)
                    await checkpoint()

                async def checkpoint():
                    pass
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[AwaitHoldingLockRule()])) == []

    def test_asyncio_lock_idioms_pass(self, tmp_path):
        # `async with lock:` and `await lock.acquire()` are asyncio
        # locks; holding them across an await is the intended idiom.
        root = write_tree(tmp_path, {
            "svc/loop.py": """
                async def serve(lock):
                    async with lock:
                        await checkpoint()

                async def manual(lock):
                    await lock.acquire()
                    await checkpoint()
                    lock.release()

                async def checkpoint():
                    pass
            """,
        })
        assert rule_ids(analyze_tree(root, rules=[AwaitHoldingLockRule()])) == []


# ---------------------------------------------------------------------------
# the shared-state model: seeding and config validation


class TestModelSeeding:
    def test_escape_via_executor_submit_only(self):
        # No Thread, no registry entry: the *only* sharing evidence is
        # an executor submit of a bound method.
        modules = parse_tree({
            "spec/concurrency.py": "SHARED_CLASSES = ()\nGUARDED_BY = {}\n",
            "svc/workers.py": """
                class Job:
                    def __init__(self):
                        self.state = "new"

                    def run(self):
                        self.state = "done"

                def dispatch(executor):
                    job = Job()
                    executor.submit(job.run)
            """,
        })
        model = model_for(modules)
        assert any(key.endswith("::Job") for key in model.shared)
        reason = model.reason("Job.state")
        assert "executor submit" in reason and "svc/workers.py:11" in reason
        kinds = {site.kind for site in model.accesses["Job.state"]}
        assert kinds == {"write"}  # the __init__ write is exempt

    def test_thread_target_and_task_creation_seed_sharing(self):
        modules = parse_tree({
            "spec/concurrency.py": "SHARED_CLASSES = ()\nGUARDED_BY = {}\n",
            "svc/workers.py": """
                import asyncio
                import threading

                class Pump:
                    def spin(self):
                        pass

                class Drain:
                    async def flow(self):
                        pass

                def go():
                    p = Pump()
                    threading.Thread(target=p.spin).start()

                async def run():
                    d = Drain()
                    asyncio.create_task(d.flow())
            """,
        })
        model = model_for(modules)
        reasons = {key.rsplit("::", 1)[1]: reason for key, reason in model.shared.items()}
        assert "threading.Thread target" in reasons["Pump"]
        assert "asyncio task creation" in reasons["Drain"]

    def test_registered_but_never_constructed_class_is_checked(self, tmp_path):
        # Registration alone must bind (the class exists) and the rules
        # must still check accesses that arrive via annotations — the
        # "turn the checks on before the concurrent caller lands" story.
        root = write_tree(tmp_path, {
            "spec/concurrency.py": 'SHARED_CLASSES = ("Ledger",)\nGUARDED_BY = {}\n',
            "core/ledger.py": """
                class Ledger:
                    def __init__(self):
                        self.balance = 0

                def credit(ledger: Ledger, amount):
                    ledger.balance = amount
            """,
        })
        report = analyze_tree(root, rules=[RaceLocksetRule()])
        assert rule_ids(report) == ["RACE-LOCKSET"]
        assert report.findings[0].line == 7


class TestConfigErrors:
    def test_guard_for_nonexistent_attribute_raises(self):
        modules = parse_tree({
            "spec/concurrency.py": """
                SHARED_CLASSES = ("Counter",)
                GUARDED_BY = {
                    "Counter.valeu": "self._lock",
                }
            """,
            "core/counter.py": COUNTER,
        })
        with pytest.raises(ConcurrencyConfigError, match=r"Counter\.valeu"):
            model_for(modules)

    def test_unknown_shared_class_raises(self):
        modules = parse_tree({
            "spec/concurrency.py": 'SHARED_CLASSES = ("Ghost",)\nGUARDED_BY = {}\n',
            "core/counter.py": COUNTER,
        })
        with pytest.raises(ConcurrencyConfigError, match="Ghost"):
            model_for(modules)

    def test_cli_reports_config_error_as_exit_two(self, tmp_path, capsys):
        root = write_tree(tmp_path, {
            "spec/concurrency.py": SPEC.replace("Counter.value", "Counter.valeu"),
            "core/counter.py": COUNTER,
        })
        assert raelint_main([str(root)]) == 2
        err = capsys.readouterr().err
        assert "concurrency spec error" in err
        assert "Counter.valeu" in err
        # The error names the spec file and the offending line.
        assert "spec/concurrency.py:4" in err


# ---------------------------------------------------------------------------
# the real tree: the registry binds and the family runs clean


class TestRealTree:
    def test_concurrency_family_is_clean_on_src_repro(self):
        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        report = analyze_tree(root, rules=[
            RaceLocksetRule(), AtomicRmwRule(), AsyncBlockingRule(), AwaitHoldingLockRule(),
        ])
        assert rule_ids(report) == [], "\n".join(f.render() for f in report.findings)

    def test_registry_classes_have_access_sites(self):
        # The declarations are load-bearing: the model actually binds
        # them to supervisor-side access sites.
        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        from repro.analysis.engine import Analyzer

        modules, _ = Analyzer(root).parse_all()
        model = model_for(modules)
        assert model is not None
        owners = {key.split(".")[0] for key in model.shared_attr_keys()}
        assert {"RAEFilesystem", "OpLog", "Detector", "LockManager"} <= owners
