"""Unit tests for the interprocedural summary engine: local fact
extraction, errno masking, effect vocabulary, fixpoint convergence on
recursion, and run-to-run determinism."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.contracts.summaries import (
    EFFECT_CACHE_DIRTY,
    EFFECT_DEVICE_FLUSH,
    EFFECT_DEVICE_WRITE,
    EFFECT_FD_TABLE,
    EFFECT_JOURNAL_BEGIN,
    EFFECT_JOURNAL_COMMIT,
    EFFECT_LOCK_ACQUIRE,
    EFFECT_LOCK_RELEASE,
    UNKNOWN_ERRNO,
    SummaryEngine,
    local_summary,
    masked_calls,
)
from repro.analysis.engine import ParsedModule
from repro.analysis.flow.callgraph import CallGraph


def modules_from(sources: dict[str, str]) -> list[ParsedModule]:
    return [ParsedModule.parse(path, textwrap.dedent(src)) for path, src in sources.items()]


def first_func(module: ParsedModule) -> ast.FunctionDef:
    return next(n for n in ast.walk(module.tree) if isinstance(n, ast.FunctionDef))


def engine_for(sources: dict[str, str]) -> SummaryEngine:
    return SummaryEngine(CallGraph(modules_from(sources)))


class TestLocalSummary:
    def test_literal_errno_positional_and_keyword(self):
        [module] = modules_from({"m.py": """
            def f(path, cond):
                if cond:
                    raise FsError(Errno.ENOENT, path)
                raise FsError(errno=Errno.EISDIR)
        """})
        summary = local_summary(first_func(module))
        assert summary.errnos == {"ENOENT", "EISDIR"}

    def test_dynamic_errno_is_unknown_token(self):
        [module] = modules_from({"m.py": """
            def f(outcome):
                raise FsError(outcome.errno, outcome.path)
        """})
        assert local_summary(first_func(module)).errnos == {UNKNOWN_ERRNO}

    def test_non_fserror_raises_are_ignored(self):
        [module] = modules_from({"m.py": """
            def f():
                raise ValueError("not an fs outcome")
        """})
        assert local_summary(first_func(module)).errnos == frozenset()

    def test_effect_vocabulary(self):
        [module] = modules_from({"m.py": """
            def f(self, device, buf):
                self.locks.acquire(1)
                self.journal.begin()
                device.write_block(0, b"x")
                device.flush()
                buf.dirty = True
                self.page_cache.mark_dirty(0)
                self.fd_table.allocate(7)
                self.journal.commit()
                self.locks.release(1)
        """})
        summary = local_summary(first_func(module))
        assert summary.effects == {
            EFFECT_LOCK_ACQUIRE,
            EFFECT_JOURNAL_BEGIN,
            EFFECT_DEVICE_WRITE,
            EFFECT_DEVICE_FLUSH,
            EFFECT_CACHE_DIRTY,
            EFFECT_FD_TABLE,
            EFFECT_JOURNAL_COMMIT,
            EFFECT_LOCK_RELEASE,
        }

    def test_nested_defs_do_not_leak_into_enclosing_summary(self):
        [module] = modules_from({"m.py": """
            def f(device):
                def inner():
                    device.write_block(0, b"x")
                return inner
        """})
        assert local_summary(first_func(module)).effects == frozenset()


class TestMasking:
    def test_handler_catching_fserror_masks_try_body_calls(self):
        [module] = modules_from({"m.py": """
            def f(helper):
                try:
                    helper()
                except FsError:
                    return None
        """})
        func = first_func(module)
        calls = [n for n in ast.walk(func) if isinstance(n, ast.Call)]
        assert {id(c) for c in calls} == masked_calls(func)

    def test_bare_reraise_does_not_mask(self):
        [module] = modules_from({"m.py": """
            def f(helper):
                try:
                    helper()
                except FsError:
                    raise
        """})
        assert masked_calls(first_func(module)) == set()

    def test_unrelated_handler_does_not_mask(self):
        [module] = modules_from({"m.py": """
            def f(helper):
                try:
                    helper()
                except ValueError:
                    return None
        """})
        assert masked_calls(first_func(module)) == set()

    def test_handler_body_calls_are_not_masked(self):
        [module] = modules_from({"m.py": """
            def f(helper, fallback):
                try:
                    helper()
                except FsError:
                    fallback()
        """})
        func = first_func(module)
        masked = masked_calls(func)
        calls = {c.func.id: c for c in ast.walk(func) if isinstance(c, ast.Call)}
        assert id(calls["helper"]) in masked
        assert id(calls["fallback"]) not in masked


class TestEnginePropagation:
    def test_errnos_and_effects_flow_through_call_chain(self):
        engine = engine_for({"m.py": """
            def outer(device, path):
                middle(device, path)

            def middle(device, path):
                inner(device, path)

            def inner(device, path):
                device.write_block(0, b"x")
                raise FsError(Errno.ENOSPC, path)
        """})
        summary = engine.summaries["m.py::outer"]
        assert summary.errnos == {"ENOSPC"}
        assert summary.effects == {EFFECT_DEVICE_WRITE}

    def test_masked_site_drops_errnos_but_keeps_effects(self):
        engine = engine_for({"m.py": """
            def outer(device, path):
                try:
                    inner(device, path)
                except FsError:
                    return None

            def inner(device, path):
                device.write_block(0, b"x")
                raise FsError(Errno.ENOSPC, path)
        """})
        summary = engine.summaries["m.py::outer"]
        assert summary.errnos == frozenset()
        assert summary.effects == {EFFECT_DEVICE_WRITE}

    def test_mutual_recursion_converges(self):
        engine = engine_for({"m.py": """
            def even(n, path):
                if n == 0:
                    raise FsError(Errno.EINVAL, path)
                return odd(n - 1, path)

            def odd(n, path):
                if n == 0:
                    return False
                return even(n - 1, path)
        """})
        assert engine.summaries["m.py::even"].errnos == {"EINVAL"}
        assert engine.summaries["m.py::odd"].errnos == {"EINVAL"}
        assert engine.iterations < 100

    def test_self_recursion_converges(self):
        engine = engine_for({"m.py": """
            def walk(node, device):
                device.write_block(node.block, node.data)
                for child in node.children:
                    walk(child, device)
        """})
        assert engine.summaries["m.py::walk"].effects == {EFFECT_DEVICE_WRITE}

    def test_method_resolution_through_self(self):
        engine = engine_for({"shadowfs/fs.py": """
            class ShadowFilesystem:
                def stat(self, path):
                    return self._resolve(path)

                def _resolve(self, path):
                    raise FsError(Errno.EFBIG, path)
        """})
        summary = engine.summaries["shadowfs/fs.py::ShadowFilesystem.stat"]
        assert summary.errnos == {"EFBIG"}

    def test_deterministic_across_runs(self):
        sources = {"m.py": """
            def a(device, path):
                b(device, path)
                c(device, path)

            def b(device, path):
                c(device, path)
                raise FsError(Errno.ENOENT, path)

            def c(device, path):
                device.flush()
                a(device, path)
        """}
        first = engine_for(sources)
        second = engine_for(sources)
        assert first.summaries == second.summaries
