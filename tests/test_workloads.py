"""Tests for workload generation and the simulated application."""

import pytest

from repro.api import OP_SIGNATURES
from repro.basefs.filesystem import BaseFilesystem
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError, KernelBug
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec.model import SpecFilesystem
from repro.workloads import (
    Profile,
    SimulatedApplication,
    WorkloadGenerator,
    fileserver_profile,
    metadata_profile,
    varmail_profile,
    webserver_profile,
)
from tests.conftest import formatted_device


ALL_PROFILES = (fileserver_profile, varmail_profile, webserver_profile, metadata_profile)


class TestProfiles:
    def test_profiles_well_formed(self):
        for factory in ALL_PROFILES:
            profile = factory()
            assert profile.weights
            assert all(w >= 0 for w in profile.weights.values())

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            Profile(name="empty")
        with pytest.raises(ValueError):
            Profile(name="neg", weights={"read": -1})

    def test_personalities_differ(self):
        web = webserver_profile()
        mail = varmail_profile()
        assert web.weights["read"] > web.weights.get("write", 0)
        assert mail.weights["fsync"] > web.weights.get("fsync", 0)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(fileserver_profile(), seed=5).ops(100)
        b = WorkloadGenerator(fileserver_profile(), seed=5).ops(100)
        assert [op.describe() for op in a] == [op.describe() for op in b]
        c = WorkloadGenerator(fileserver_profile(), seed=6).ops(100)
        assert [op.describe() for op in a] != [op.describe() for op in c]

    def test_only_known_ops(self):
        for factory in ALL_PROFILES:
            for operation in WorkloadGenerator(factory(), seed=1).ops(150):
                assert operation.name in OP_SIGNATURES

    @pytest.mark.parametrize("factory", ALL_PROFILES)
    def test_streams_valid_on_all_implementations(self, factory, seq):
        operations = WorkloadGenerator(factory(), seed=3).ops(200)
        for make_fs in (lambda: BaseFilesystem(formatted_device(16384)),
                        lambda: ShadowFilesystem(formatted_device(16384)),
                        lambda: SpecFilesystem()):
            fs = make_fs()
            unexpected_errnos = 0
            for index, operation in enumerate(operations):
                if operation.name == "fsync" and isinstance(fs, ShadowFilesystem):
                    continue
                result = operation.apply(fs, opseq=index + 1)
                # The generator's model keeps ops valid; only ENOTEMPTY
                # noise from untracked symlinks under rmdir'd dirs is
                # tolerated.
                if result.errno is not None and result.errno.name != "ENOTEMPTY":
                    unexpected_errnos += 1
            assert unexpected_errnos == 0

    def test_prepopulation_separate(self):
        generator = WorkloadGenerator(webserver_profile(), seed=1)
        setup = generator.prepopulate()
        assert any(op.name == "open" for op in setup)
        measured = generator.ops(50, include_prepopulation=False)
        assert len(measured) == 50


class TestSimulatedApplication:
    def test_app_tracks_and_verifies(self):
        fs = RAEFilesystem(formatted_device(16384), RAEConfig())
        app = SimulatedApplication(fs, fileserver_profile(), seed=11)
        stats = app.run(300)
        assert stats.ops_attempted >= 300
        assert stats.runtime_failures == 0
        assert stats.corruption_detected == 0
        assert app.verify_all() == 0
        assert stats.availability == 1.0

    def test_app_detects_real_corruption(self):
        fs = RAEFilesystem(formatted_device(16384), RAEConfig())
        app = SimulatedApplication(fs, varmail_profile(), seed=12)
        app.run(100)
        # Tamper with a tracked file behind the app's back.
        path = next(p for p in sorted(app.expected) if len(app.expected[p]) > 0)
        fd = fs.open(path)
        fs.write(fd, b"\xde\xad\xbe\xef")
        fs.close(fd)
        assert app.verify_all() >= 1
        assert app.stats.corruption_detected >= 1

    def test_app_counts_runtime_failures(self, hooks):
        def bug(point, ctx):
            raise KernelBug("always")

        hooks.register("journal.commit", bug)
        fs = BaseFilesystem(formatted_device(16384), hooks=hooks)  # no RAE!
        app = SimulatedApplication(fs, varmail_profile(), seed=13)
        stats = app.run(200, stop_on_runtime_failure=True)
        assert stats.runtime_failures == 1
        assert stats.availability < 1.0

    def test_app_survives_with_rae(self, hooks):
        fired = {"n": 0}

        def sometimes_bug(point, ctx):
            fired["n"] += 1
            if fired["n"] % 40 == 0:
                raise KernelBug("periodic")

        hooks.register("page.write", sometimes_bug)
        fs = RAEFilesystem(formatted_device(16384), RAEConfig(), hooks=hooks)
        app = SimulatedApplication(fs, varmail_profile(), seed=14)
        stats = app.run(300)
        assert stats.runtime_failures == 0
        assert fs.recovery_count >= 1
        assert app.verify_all() == 0  # recovery preserved the app's view
