"""Shared fixtures.

Devices come pre-formatted from a cached template (mkfs once per
geometry) so the suite stays fast; every fixture yields a *fresh* state.
"""

from __future__ import annotations

import pytest

from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.blockdev.device import MemoryBlockDevice
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec.model import SpecFilesystem

_TEMPLATES: dict[tuple, bytes] = {}


def formatted_device(block_count: int = 4096, track_durability: bool = False) -> MemoryBlockDevice:
    device = MemoryBlockDevice(block_count=block_count, track_durability=track_durability)
    key = (block_count,)
    template = _TEMPLATES.get(key)
    if template is None:
        mkfs(device)
        template = device.snapshot()
        _TEMPLATES[key] = template
    else:
        device.restore(template)
    return device


@pytest.fixture
def device() -> MemoryBlockDevice:
    return formatted_device()


@pytest.fixture
def raw_device() -> MemoryBlockDevice:
    """Unformatted device."""
    return MemoryBlockDevice(block_count=4096)


@pytest.fixture
def base(device) -> BaseFilesystem:
    return BaseFilesystem(device)


@pytest.fixture
def shadow(device) -> ShadowFilesystem:
    return ShadowFilesystem(device, check_level=CheckLevel.FULL)


@pytest.fixture
def spec() -> SpecFilesystem:
    return SpecFilesystem()


@pytest.fixture
def hooks() -> HookPoints:
    return HookPoints()


@pytest.fixture
def rae(device, hooks) -> RAEFilesystem:
    return RAEFilesystem(device, RAEConfig(), hooks=hooks)


class SeqCounter:
    """Monotone opseq supply for tests that drive raw FilesystemAPI.

    Starts above the mkfs timestamp (1) so "mtime advanced" assertions
    hold from the first operation.
    """

    def __init__(self):
        self.value = 10

    def __call__(self) -> int:
        self.value += 1
        return self.value


@pytest.fixture
def seq() -> SeqCounter:
    return SeqCounter()
