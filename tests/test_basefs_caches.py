"""Tests for the base's cache components: dentry, inode, page caches."""

import pytest

from repro.basefs.dentry_cache import DentryCache
from repro.basefs.inode_cache import InodeCache
from repro.basefs.page_cache import PageCache
from repro.ondisk.inode import FileType, OnDiskInode, make_mode
from repro.ondisk.layout import BLOCK_SIZE


class TestDentryCache:
    def test_positive_lookup(self):
        cache = DentryCache()
        cache.insert(2, "a", 10)
        assert cache.lookup(2, "a") == 10
        assert cache.stats.hits == 1

    def test_negative_lookup(self):
        cache = DentryCache()
        cache.insert_negative(2, "ghost")
        assert cache.lookup(2, "ghost") == DentryCache.NEGATIVE
        assert cache.stats.negative_hits == 1

    def test_miss_returns_none(self):
        cache = DentryCache()
        assert cache.lookup(2, "nothing") is None
        assert cache.stats.misses == 1

    def test_insert_rejects_negative_via_positive_api(self):
        cache = DentryCache()
        with pytest.raises(ValueError):
            cache.insert(2, "a", 0)

    def test_invalidate_specific(self):
        cache = DentryCache()
        cache.insert(2, "a", 10)
        cache.invalidate(2, "a")
        assert cache.lookup(2, "a") is None
        assert cache.stats.invalidations == 1

    def test_invalidate_dir_sweeps(self):
        cache = DentryCache()
        cache.insert(2, "a", 10)
        cache.insert(2, "b", 11)
        cache.insert(3, "c", 12)
        cache.invalidate_dir(2)
        assert cache.lookup(2, "a") is None
        assert cache.lookup(3, "c") == 12

    def test_invalidate_ino_sweeps_targets(self):
        cache = DentryCache()
        cache.insert(2, "a", 10)
        cache.insert(3, "hard", 10)
        cache.invalidate_ino(10)
        assert cache.lookup(2, "a") is None
        assert cache.lookup(3, "hard") is None

    def test_lru_eviction(self):
        cache = DentryCache(capacity=2)
        cache.insert(2, "a", 10)
        cache.insert(2, "b", 11)
        cache.lookup(2, "a")  # a is now MRU
        cache.insert(2, "c", 12)
        assert cache.lookup(2, "b") is None
        assert cache.lookup(2, "a") == 10


class TestInodeCache:
    def make_inode(self):
        return OnDiskInode(mode=make_mode(FileType.REGULAR), nlink=1)

    def test_insert_get(self):
        cache = InodeCache()
        slot = cache.insert(5, self.make_inode())
        assert cache.get(5) is slot
        assert cache.stats.hits == 1

    def test_double_insert_rejected(self):
        cache = InodeCache()
        cache.insert(5, self.make_inode())
        with pytest.raises(ValueError):
            cache.insert(5, self.make_inode())

    def test_dirty_tracking_ordered(self):
        cache = InodeCache()
        cache.insert(9, self.make_inode())
        cache.insert(4, self.make_inode())
        cache.mark_dirty(9)
        cache.mark_dirty(4)
        assert [slot.ino for slot in cache.dirty_inodes()] == [4, 9]
        cache.clean(4)
        assert [slot.ino for slot in cache.dirty_inodes()] == [9]

    def test_pins_prevent_eviction(self):
        cache = InodeCache(capacity=2)
        cache.insert(1, self.make_inode())
        cache.pin(1)
        cache.insert(2, self.make_inode())
        cache.insert(3, self.make_inode())  # would evict LRU=1, but pinned
        assert 1 in cache and 2 not in cache

    def test_dirty_never_evicted(self):
        cache = InodeCache(capacity=1)
        cache.insert(1, self.make_inode(), dirty=True)
        cache.insert(2, self.make_inode(), dirty=True)
        assert 1 in cache and 2 in cache  # over capacity rather than lose dirty

    def test_unpin_validation(self):
        cache = InodeCache()
        cache.insert(1, self.make_inode())
        with pytest.raises(ValueError):
            cache.unpin(1)
        with pytest.raises(KeyError):
            cache.pin(99)

    def test_drop_all(self):
        cache = InodeCache()
        cache.insert(1, self.make_inode(), dirty=True)
        cache.drop_all()
        assert len(cache) == 0


class TestPageCache:
    def page(self, tag: int) -> bytes:
        return bytes([tag]) * BLOCK_SIZE

    def test_install_lookup(self):
        cache = PageCache()
        cache.install(5, 0, self.page(1), dirty=True)
        page = cache.lookup(5, 0)
        assert page is not None and page.dirty

    def test_dirty_pages_sorted(self):
        cache = PageCache()
        cache.install(5, 1, self.page(1), dirty=True)
        cache.install(4, 0, self.page(2), dirty=True)
        cache.install(5, 0, self.page(3), dirty=False)
        assert [(p.ino, p.logical) for p in cache.dirty_pages()] == [(4, 0), (5, 1)]

    def test_overwrite_keeps_dirty(self):
        cache = PageCache()
        cache.install(1, 0, self.page(1), dirty=True)
        cache.install(1, 0, self.page(2), dirty=False)
        assert cache.lookup(1, 0).dirty  # dirty is sticky until mark_clean

    def test_mark_clean(self):
        cache = PageCache()
        cache.install(1, 0, self.page(1), dirty=True)
        cache.mark_clean(1, 0)
        assert cache.dirty_count() == 0

    def test_eviction_spares_dirty(self):
        cache = PageCache(capacity_pages=2)
        cache.install(1, 0, self.page(1), dirty=True)
        cache.install(1, 1, self.page(2), dirty=False)
        cache.install(1, 2, self.page(3), dirty=False)
        assert cache.lookup(1, 0) is not None  # dirty survived
        assert len(cache) == 2

    def test_drop_ino_range(self):
        cache = PageCache()
        for logical in range(4):
            cache.install(7, logical, self.page(logical), dirty=True)
        cache.drop_ino(7, from_logical=2)
        assert cache.lookup(7, 1) is not None
        assert cache.lookup(7, 2) is None

    def test_readahead_sequential_only(self):
        cache = PageCache(readahead_window=2)
        assert cache.readahead_plan(1, 0, file_blocks=10) == []  # first access
        assert cache.readahead_plan(1, 1, file_blocks=10) == [2, 3]  # sequential
        assert cache.readahead_plan(1, 7, file_blocks=10) == []  # random jump

    def test_readahead_clamped_at_eof(self):
        cache = PageCache(readahead_window=4)
        cache.readahead_plan(1, 0, file_blocks=3)
        assert cache.readahead_plan(1, 1, file_blocks=3) == [2]

    def test_detach_attach_roundtrip(self):
        cache = PageCache()
        cache.install(1, 0, self.page(1), dirty=True)
        pages = cache.detach()
        assert len(cache) == 0
        cache.attach(pages)
        assert cache.lookup(1, 0) is not None

    def test_rejects_bad_page_size(self):
        cache = PageCache()
        with pytest.raises(ValueError):
            cache.install(1, 0, b"small", dirty=False)
