"""Tests for the bug study: classifiers, dataset, Table 1, Figure 1."""

from repro.bugstudy import (
    BugRecord,
    PAPER_TABLE1,
    PAPER_YEARS,
    build_dataset,
    build_figure1,
    build_table1,
    classify_consequence,
    classify_determinism,
)


def record(**overrides) -> BugRecord:
    fields = dict(
        bug_id="b-1",
        year=2020,
        title="ext4: fix something",
        message="plain message",
        has_reproducer=True,
        tags=frozenset(),
    )
    fields.update(overrides)
    return BugRecord(**fields)


class TestClassifiers:
    def test_reproducer_means_deterministic(self):
        assert classify_determinism(record(has_reproducer=True)) == "deterministic"

    def test_no_reproducer_means_nondeterministic(self):
        assert classify_determinism(record(has_reproducer=False)) == "nondeterministic"

    def test_io_tags_mean_nondeterministic(self):
        assert classify_determinism(record(tags=frozenset({"blk-mq"}))) == "nondeterministic"
        assert classify_determinism(record(message="needs multiple inflight requests")) == "nondeterministic"

    def test_threading_means_nondeterministic(self):
        assert classify_determinism(record(tags=frozenset({"race"}))) == "nondeterministic"
        assert classify_determinism(record(message="a race condition in unlink")) == "nondeterministic"

    def test_no_information_is_unknown(self):
        assert classify_determinism(record(has_reproducer=None)) == "unknown"

    def test_crash_markers(self):
        assert classify_consequence(record(message="NULL pointer dereference in foo")) == "crash"
        assert classify_consequence(record(message="use-after-free when remounting")) == "crash"

    def test_warn_beats_crash_language(self):
        msg = "hits a WARN_ON before the oops can happen"
        assert classify_consequence(record(message=msg)) == "warn"

    def test_nocrash_markers(self):
        assert classify_consequence(record(message="leads to data corruption")) == "nocrash"
        assert classify_consequence(record(message="causes a deadlock under load")) == "nocrash"

    def test_no_clues_is_unknown(self):
        assert classify_consequence(record(message="clean up return codes")) == "unknown"


class TestDataset:
    def test_size_and_determinism(self):
        records = build_dataset()
        assert len(records) == 256
        assert build_dataset() == records  # deterministic

    def test_table1_reproduces_paper_exactly(self):
        table = build_table1(build_dataset())
        assert table.counts == PAPER_TABLE1
        assert table.total == 256
        assert table.row_total("deterministic") == 165
        assert table.detected_deterministic == 89  # the headline number

    def test_figure1_totals_and_trend(self):
        figure = build_figure1(build_dataset())
        assert figure.total == 165
        assert {y: figure.year_total(y) for y in sorted(figure.by_year)} == PAPER_YEARS
        # The paper's observation: "More bugs are fixed in recent years."
        early = sum(PAPER_YEARS[y] for y in range(2013, 2018))
        late = sum(PAPER_YEARS[y] for y in range(2019, 2024))
        assert late > early

    def test_renders(self):
        records = build_dataset()
        table_text = build_table1(records).render()
        assert "Deterministic" in table_text and "165" in table_text
        figure_text = build_figure1(records).render()
        assert "2013" in figure_text and "2023" in figure_text

    def test_unique_ids(self):
        records = build_dataset()
        assert len({r.bug_id for r in records}) == 256

    def test_sources_follow_methodology(self):
        # Every record carries the paper's filter criterion.
        assert all(r.source in ("bugzilla", "reported-by") for r in build_dataset())
