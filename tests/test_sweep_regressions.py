"""Regression tests for the bugs the crash-point sweep flushed out.

Each test is the minimized reproducer of one finding, pinned so the bug
stays fixed:

* **durable-but-untruncated window** — a crash after the commit record
  is flushed but before the supervisor's op-log truncation used to
  replay the already-durable window on recovery, double-applying it;
* **swallowed blk-mq completion errors** — commit phase 1 drained and
  reaped the ordered data writes without checking ``request.error``,
  sealing journal commits whose data never hit the disk;
* **injector payload staleness across contained reboot** — NOCRASH
  payloads dispatched during recovery used to run against the fenced,
  discarded base until the supervisor's ``on_reboot`` retarget ran.
"""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.blockdev.device import MemoryBlockDevice
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import DeviceError, KernelBug
from repro.faults.catalog import BugSpec, Consequence, Determinism
from repro.faults.injector import Injector
from repro.ondisk.mkfs import mkfs


def _formatted_device(block_count=1024, journal_blocks=16) -> MemoryBlockDevice:
    mem = MemoryBlockDevice(block_count=block_count, track_durability=True)
    mkfs(mem, journal_blocks=journal_blocks)
    return mem


class TestDurableWindowRegression:
    """Bug #1: crash between journal seal and op-log truncation."""

    def _crash_after_seal(self, rae) -> None:
        # The raiser sits at on_commit index 0: it runs AFTER
        # journal.commit() sealed the transaction (the window is durable
        # on disk) but BEFORE the supervisor's own _on_commit callback
        # can truncate the op log — exactly the window the sweep hit.
        state = {"fired": False}

        def boom(_epoch):
            if not state["fired"]:
                state["fired"] = True
                raise KernelBug("post-seal crash in commit callback")

        rae.base.on_commit.insert(0, boom)

    def test_durable_window_is_not_double_applied(self):
        mem = _formatted_device()
        rae = RAEFilesystem(mem, config=RAEConfig(metrics=False, flight=False))
        fd = rae.open("/f", OpenFlags.CREAT | OpenFlags.APPEND)
        rae.write(fd, b"x" * 100)

        self._crash_after_seal(rae)
        rae.fsync(fd)  # crashes post-seal; recovery must not replay

        assert rae.stats.recoveries == 1
        # Double-apply would re-run the append and leave 200 bytes.
        assert rae.stat("/f").size == 100

        bundle = rae.last_bundle
        assert bundle is not None
        assert bundle["replay"]["window_durable"] is True
        assert bundle["outcome"] == "success"

    def test_durable_window_marks_clean_unmount(self):
        mem = _formatted_device()
        rae = RAEFilesystem(mem, config=RAEConfig(metrics=False, flight=False))
        fd = rae.open("/f", OpenFlags.CREAT | OpenFlags.APPEND)
        rae.write(fd, b"y" * 64)
        self._crash_after_seal(rae)
        rae.fsync(fd)
        rae.close(fd)
        rae.unmount()
        # A second supervisor generation sees the truncated log: nothing
        # stale left to replay, state intact.
        fs = BaseFilesystem(mem)
        assert fs.stat("/f").size == 64
        fs.unmount()

    def test_crash_before_seal_still_replays(self):
        # Control: a crash BEFORE the journal seals (first on_commit has
        # not happened — raise inside the write path via a pre-commit
        # hook) must keep the normal replay path.  We approximate with a
        # raiser on the FIRST commit attempt before any journal write by
        # crashing at commit entry via an armed hook bug.
        mem = _formatted_device()
        hooks = HookPoints()
        rae = RAEFilesystem(mem, config=RAEConfig(metrics=False, flight=False), hooks=hooks)
        injector = Injector(hooks)
        injector.retarget(rae.base)
        rae.on_reboot.append(injector.retarget)
        injector.arm(BugSpec(
            bug_id="pre-seal-crash",
            title="crash on first ordered data write",
            hook="blkmq.submit",
            determinism=Determinism.DETERMINISTIC,
            consequence=Consequence.CRASH,
            trigger=lambda ctx: ctx.get("op") == "write",
            max_fires=1,
        ))
        fd = rae.open("/f", OpenFlags.CREAT | OpenFlags.APPEND)
        rae.write(fd, b"z" * 32)
        rae.fsync(fd)  # crash mid-commit, before the seal
        assert rae.stats.recoveries == 1
        assert rae.stat("/f").size == 32
        assert rae.last_bundle["replay"]["window_durable"] is False


class _FailNextWrite:
    """Device shim that fails exactly one write_block with DeviceError."""

    def __init__(self, inner):
        self.inner = inner
        self.armed = False

    def read_block(self, block):
        return self.inner.read_block(block)

    def write_block(self, block, data):
        if self.armed:
            self.armed = False
            raise DeviceError(f"injected write error on block {block}")
        self.inner.write_block(block, data)

    def flush(self):
        self.inner.flush()


class TestReapErrorRegression:
    """Bug #2: commit must surface async blk-mq completion errors."""

    def test_failed_ordered_data_write_fails_the_commit(self):
        mem = _formatted_device()
        fs = BaseFilesystem(mem)
        fd = fs.open("/data", OpenFlags.CREAT)
        fs.write(fd, b"a" * 4096)

        # Interpose on the queue's device so the failure happens inside
        # _dispatch — completed-with-error, observable only via reap().
        shim = _FailNextWrite(fs.blkmq.device)
        fs.blkmq.device = shim
        shim.armed = True
        with pytest.raises(DeviceError, match="injected write error"):
            fs.commit()

    def test_clean_commit_unaffected_by_shim(self):
        mem = _formatted_device()
        fs = BaseFilesystem(mem)
        fd = fs.open("/data", OpenFlags.CREAT)
        fs.write(fd, b"b" * 4096)
        fs.blkmq.device = _FailNextWrite(fs.blkmq.device)  # never armed
        fs.commit()
        fs.close(fd)
        fs.unmount()
        check = BaseFilesystem(mem)
        check_fd = check.open("/data")
        assert check.read(check_fd, 4096) == b"b" * 4096


class TestInjectorRetargetRegression:
    """Satellite: NOCRASH payloads must never run against the fenced
    base while a contained reboot is replacing it."""

    def test_payload_skips_fenced_base_then_fires_on_new_base(self):
        mem = _formatted_device()
        hooks = HookPoints()
        rae = RAEFilesystem(mem, config=RAEConfig(metrics=False, flight=False), hooks=hooks)
        injector = Injector(hooks)
        injector.retarget(rae.base)
        rae.on_reboot.append(injector.retarget)

        payload_targets = []
        injector.arm(BugSpec(
            bug_id="payload-spy",
            title="records which fs the payload runs against",
            # inode.read fires during normal ops AND during the
            # replacement base's mount inside contained_reboot — the
            # window where the injector still points at the fenced base.
            hook="inode.read",
            determinism=Determinism.DETERMINISTIC,
            consequence=Consequence.NOCRASH,
            trigger=lambda ctx: True,
            payload=lambda fs, ctx: payload_targets.append(
                (fs, getattr(fs, "_mounted", None))
            ),
        ))
        injector.arm(BugSpec(
            bug_id="one-shot-crash",
            title="crash on the first ordered data write",
            hook="blkmq.submit",
            determinism=Determinism.DETERMINISTIC,
            consequence=Consequence.CRASH,
            trigger=lambda ctx: ctx.get("op") == "write",
            max_fires=1,
        ))

        old_base = rae.base
        fd = rae.open("/f", OpenFlags.CREAT)
        rae.write(fd, b"w" * 4096)
        rae.fsync(fd)  # data write fires: payload, then the crash

        assert rae.stats.recoveries == 1
        new_base = rae.base
        assert new_base is not old_base

        # The replacement base's mount fired inode.read while the
        # injector still pointed at the fenced base: the liveness gate
        # must have skipped the dispatch rather than mutate dead state.
        assert injector.stats.stale_skips >= 1
        # The invariant the fix enforces: a payload never observes an
        # unmounted (fenced) filesystem.
        assert all(mounted for _, mounted in payload_targets)

        # After on_reboot retargeting, payloads fire against live state.
        payload_targets.clear()
        rae.stat("/f")  # inode.read against the rebooted base
        assert payload_targets
        assert all(fs is new_base for fs, _ in payload_targets)

    def test_stale_skip_does_not_count_as_fire(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        ran_against = []

        class Fenced:
            _mounted = False

        class Live:
            _mounted = True

        injector.retarget(Fenced())
        injector.arm(BugSpec(
            bug_id="stale-payload",
            title="payload against fenced fs",
            hook="blkmq.submit",
            determinism=Determinism.DETERMINISTIC,
            consequence=Consequence.NOCRASH,
            trigger=lambda ctx: True,
            payload=lambda fs, ctx: ran_against.append(fs),
            max_fires=1,
        ))
        hooks.fire("blkmq.submit", op="write", block=1)
        assert injector.stats.stale_skips == 1
        assert injector.stats.total_fires == 0
        assert ran_against == []
        # The single max_fires budget was NOT consumed by the skip: the
        # payload still gets its one dispatch against live state.
        live = Live()
        injector.retarget(live)
        hooks.fire("blkmq.submit", op="write", block=2)
        assert ran_against == [live]
        assert injector.stats.total_fires == 1
