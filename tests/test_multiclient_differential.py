"""Differential testing under interleaved multi-client workloads.

Two identically seeded :class:`MultiClientWorkload` runs produce the
same operation interleaving; executing one on the base and one on the
shadow must yield equivalent final states — extending the §3.3
equivalence contract to the concurrent access patterns the base's
caches and lock manager see in practice.
"""

from repro.basefs.filesystem import BaseFilesystem
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec import capture_state, states_equivalent
from repro.workloads import fileserver_profile, metadata_profile
from repro.workloads.multi import MultiClientWorkload
from tests.conftest import formatted_device


def test_multiclient_base_shadow_equivalence():
    for profile_factory, seed in ((fileserver_profile, 71), (metadata_profile, 72)):
        base = BaseFilesystem(formatted_device(32768))
        shadow = ShadowFilesystem(formatted_device(32768))
        base_run = MultiClientWorkload(base, profile_factory(), clients=3, seed=seed)
        shadow_run = MultiClientWorkload(shadow, profile_factory(), clients=3, seed=seed)
        base_run.run(250)
        shadow_run.run(250)
        assert base_run.runtime_failures == shadow_run.runtime_failures == 0
        report = states_equivalent(capture_state(base), capture_state(shadow))
        assert report.equivalent, f"{profile_factory().name}: {report}"


def test_multiclient_errno_parity():
    base = BaseFilesystem(formatted_device(32768))
    shadow = ShadowFilesystem(formatted_device(32768))
    base_run = MultiClientWorkload(base, metadata_profile(), clients=2, seed=73)
    shadow_run = MultiClientWorkload(shadow, metadata_profile(), clients=2, seed=73)
    base_results = base_run.run(200)
    shadow_results = shadow_run.run(200)
    assert len(base_results) == len(shadow_results)
    for index, (a, b) in enumerate(zip(base_results, shadow_results)):
        assert a.errno == b.errno, f"op {index}: {a.errno} vs {b.errno}"
