"""Tests for repro.ondisk.layout."""

import pytest

from repro.ondisk.layout import BLOCK_SIZE, INODE_SIZE, INODES_PER_BLOCK, ROOT_INO, DiskLayout


def make(block_count=4096, **kwargs) -> DiskLayout:
    return DiskLayout(block_count=block_count, **kwargs)


def test_constants_consistent():
    assert BLOCK_SIZE % INODE_SIZE == 0
    assert INODES_PER_BLOCK == BLOCK_SIZE // INODE_SIZE
    assert ROOT_INO == 2


def test_group_count_and_partial_last_group():
    layout = make(block_count=2500, blocks_per_group=1024)
    assert layout.group_count == 3
    assert layout.group_block_count(0) == 1024
    assert layout.group_block_count(2) == 452


def test_group0_has_superblock_and_journal():
    layout = make()
    meta = layout.metadata_blocks(0)
    assert 0 in meta
    assert layout.journal_start == 1
    assert all(1 <= b for b in range(layout.journal_start, layout.journal_start + layout.journal_blocks))
    assert layout.block_bitmap_block(0) == 1 + layout.journal_blocks


def test_later_groups_have_no_journal():
    layout = make()
    assert layout.block_bitmap_block(1) == layout.group_start(1)
    assert layout.inode_bitmap_block(1) == layout.group_start(1) + 1


def test_data_start_after_inode_table():
    layout = make()
    for group in range(layout.group_count):
        assert layout.data_start(group) == layout.inode_table_start(group) + layout.inode_table_blocks


def test_metadata_blocks_disjoint_from_data():
    layout = make()
    for group in range(layout.group_count):
        meta = set(layout.metadata_blocks(group))
        data = set(layout.data_blocks_in_group(group))
        assert not meta & data


def test_is_metadata_block():
    layout = make()
    assert layout.is_metadata_block(0)
    assert layout.is_metadata_block(layout.journal_start)
    assert layout.is_metadata_block(layout.inode_table_start(1))
    assert not layout.is_metadata_block(layout.data_start(0))


def test_inode_location_arithmetic():
    layout = make()
    block, offset = layout.inode_location(1)
    assert block == layout.inode_table_start(0)
    assert offset == 0
    block2, offset2 = layout.inode_location(INODES_PER_BLOCK + 1)
    assert block2 == layout.inode_table_start(0) + 1
    assert offset2 == 0
    # first inode of group 1
    ino = layout.inodes_per_group + 1
    block3, _ = layout.inode_location(ino)
    assert block3 == layout.inode_table_start(1)


def test_group_of_ino():
    layout = make()
    assert layout.group_of_ino(1) == 0
    assert layout.group_of_ino(layout.inodes_per_group) == 0
    assert layout.group_of_ino(layout.inodes_per_group + 1) == 1


def test_range_validation():
    layout = make()
    with pytest.raises(ValueError):
        layout.check_ino(0)
    with pytest.raises(ValueError):
        layout.check_ino(layout.inode_count + 1)
    with pytest.raises(ValueError):
        layout.group_of_block(layout.block_count)
    with pytest.raises(ValueError):
        layout.group_start(layout.group_count)


def test_rejects_impossible_geometry():
    with pytest.raises(ValueError):
        make(blocks_per_group=4)  # too small
    with pytest.raises(ValueError):
        make(inodes_per_group=100)  # not a multiple of inodes-per-block
    with pytest.raises(ValueError):
        make(block_count=100)  # smaller than one group
    with pytest.raises(ValueError):
        make(journal_blocks=2)  # journal too small
    with pytest.raises(ValueError):
        DiskLayout(block_count=2048, blocks_per_group=90, journal_blocks=80)  # group 0 overflow


def test_inode_count():
    layout = make(block_count=2500, blocks_per_group=1024, inodes_per_group=256)
    assert layout.inode_count == 3 * 256
