"""Golden-vector tests pinning the on-disk ABI (docs/ONDISK_FORMAT.md).

These tests freeze the byte-level encodings.  If one fails, either the
format changed (update the spec, bump the version, regenerate vectors
deliberately) or an encoding regressed.  Vectors are asserted by SHA-256
to keep the file readable.
"""

import hashlib

from repro.ondisk.directory import DirBlock
from repro.ondisk.inode import FileType, OnDiskInode, make_mode
from repro.ondisk.layout import BLOCK_SIZE
from repro.ondisk.superblock import STATE_DIRTY, Superblock
from repro.util import checksum32


def sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class TestFieldOffsets:
    """Spot-check documented offsets directly against packed bytes."""

    def test_superblock_offsets(self):
        sb = Superblock(
            block_size=BLOCK_SIZE,
            block_count=0x11223344,
            blocks_per_group=1024,
            inodes_per_group=256,
            journal_blocks=64,
            free_blocks=0xAABBCCDD,
            free_inodes=0x55667788,
            root_ino=2,
            mount_state=STATE_DIRTY,
            mount_count=7,
            write_generation=0x0102030405060708,
        )
        raw = sb.pack()
        assert raw[0:4] == bytes.fromhex("4EF5D05A")  # magic LE
        assert raw[12:16] == bytes.fromhex("44332211")  # block_count LE
        assert raw[32:36] == bytes.fromhex("DDCCBBAA")  # free_blocks
        assert raw[44:48] == (2).to_bytes(4, "little")  # mount_state dirty
        assert raw[52:60] == bytes.fromhex("0807060504030201")  # generation
        assert int.from_bytes(raw[60:64], "little") == checksum32(raw[:60])
        assert raw[64:] == b"\x00" * (BLOCK_SIZE - 64)

    def test_inode_offsets(self):
        inode = OnDiskInode(
            mode=make_mode(FileType.REGULAR, 0o640),
            uid=0x1111,
            gid=0x2222,
            nlink=3,
            size=0x0000000012345678,
            atime=10,
            mtime=20,
            ctime=30,
        )
        inode.direct[0] = 0xAAAA
        inode.direct[11] = 0xBBBB
        inode.indirect = 0xCCCC
        inode.double_indirect = 0xDDDD
        raw = inode.pack()
        assert int.from_bytes(raw[0:4], "little") == (1 << 12) | 0o640
        assert int.from_bytes(raw[20:28], "little") == 0x12345678  # size at 20
        assert int.from_bytes(raw[56:60], "little") == 0xAAAA  # direct[0]
        assert int.from_bytes(raw[100:104], "little") == 0xBBBB  # direct[11]
        assert int.from_bytes(raw[104:108], "little") == 0xCCCC  # indirect
        assert int.from_bytes(raw[108:112], "little") == 0xDDDD  # double
        assert int.from_bytes(raw[112:116], "little") == checksum32(raw[:112])

    def test_dirent_layout(self):
        block = DirBlock()
        block.insert(0x0105, "abc", FileType.DIRECTORY)
        raw = block.to_block()
        assert int.from_bytes(raw[0:4], "little") == 0x0105
        # The entry claims the whole free record it landed in; the slack
        # stays inside its rec_len (ext2 discipline; see the spec §5).
        assert int.from_bytes(raw[4:6], "little") == BLOCK_SIZE
        assert raw[6] == 3  # name_len
        assert raw[7] == int(FileType.DIRECTORY)
        assert raw[8:11] == b"abc"
        # A second insert carves the slack: the first record shrinks to
        # its minimal 12-byte footprint.
        block.insert(0x0106, "zz", FileType.REGULAR)
        raw = block.to_block()
        assert int.from_bytes(raw[4:6], "little") == 12
        assert int.from_bytes(raw[12:16], "little") == 0x0106
        assert int.from_bytes(raw[16:18], "little") == BLOCK_SIZE - 12


class TestGoldenVectors:
    """Whole-structure hashes: any byte change anywhere trips these."""

    def test_superblock_vector(self):
        sb = Superblock(
            block_size=BLOCK_SIZE,
            block_count=4096,
            blocks_per_group=1024,
            inodes_per_group=256,
            journal_blocks=64,
            free_blocks=3958,
            free_inodes=1022,
            root_ino=2,
        )
        assert sha(sb.pack()) == "689510a4f724b4caa5ed8bc8024300ccc00015e2483de4ca62f4ae04b57a56c7"

    def test_inode_vector(self):
        inode = OnDiskInode(mode=make_mode(FileType.DIRECTORY, 0o755), nlink=2, size=4096, atime=1, mtime=1, ctime=1)
        inode.direct[0] = 130
        assert sha(inode.pack()) == "e6deacfe6a693667399d8a1be17e5d12ee524d491bca3ab5e2abd3e04721163f"

    def test_dirblock_vector(self):
        block = DirBlock()
        block.insert(2, ".", FileType.DIRECTORY)
        block.insert(2, "..", FileType.DIRECTORY)
        assert sha(block.to_block()) == "816efdac1c8da10ba9f0c792e0163a7b59d6fedf38fe7eccd4d22e56daf2b4c8"

    def test_mkfs_image_vector(self):
        """The entire mkfs output on a fixed geometry is reproducible."""
        from repro.blockdev.device import MemoryBlockDevice
        from repro.ondisk.mkfs import mkfs

        device = MemoryBlockDevice(block_count=2048)
        mkfs(device)
        assert sha(device.snapshot()) == "1da1f78b0607975572d2ec9fd5ede56d8cb7d683f58f3aefd8606526572ade1a"


def _regenerate():  # pragma: no cover — developer helper
    """Print current hashes (run manually when the format changes)."""
    from repro.blockdev.device import MemoryBlockDevice
    from repro.ondisk.mkfs import mkfs

    sb = Superblock(
        block_size=BLOCK_SIZE, block_count=4096, blocks_per_group=1024,
        inodes_per_group=256, journal_blocks=64, free_blocks=3958,
        free_inodes=1022, root_ino=2,
    )
    print("sb:", sha(sb.pack()))
    inode = OnDiskInode(mode=make_mode(FileType.DIRECTORY, 0o755), nlink=2, size=4096, atime=1, mtime=1, ctime=1)
    inode.direct[0] = 130
    print("inode:", sha(inode.pack()))
    block = DirBlock()
    block.insert(2, ".", FileType.DIRECTORY)
    block.insert(2, "..", FileType.DIRECTORY)
    print("dirblock:", sha(block.to_block()))
    device = MemoryBlockDevice(block_count=2048)
    mkfs(device)
    print("image:", sha(device.snapshot()))


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
