"""The errno conformance matrix.

One table of error scenarios, executed against base, shadow, and spec:
all three must return the *same* errno for the same request — the API
contract that makes constrained-mode cross-checking meaningful (§3.3:
"the output at the API level ... must be equivalent").

Each scenario is (setup ops, probe op, expected errno).  Setup ops are
assumed to succeed.
"""

import pytest

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.errors import Errno
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec.model import SpecFilesystem
from tests.conftest import formatted_device

CREAT = int(OpenFlags.CREAT)
EXCL = int(OpenFlags.EXCL)

#: (name, setup ops, probe, expected errno)
MATRIX = [
    ("mkdir-exists", [op("mkdir", path="/d")], op("mkdir", path="/d"), Errno.EEXIST),
    ("mkdir-missing-parent", [], op("mkdir", path="/no/sub"), Errno.ENOENT),
    ("mkdir-through-file", [op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("mkdir", path="/f/sub"), Errno.ENOTDIR),
    ("mkdir-on-root", [], op("mkdir", path="/"), Errno.EINVAL),
    ("rmdir-missing", [], op("rmdir", path="/ghost"), Errno.ENOENT),
    ("rmdir-nonempty", [op("mkdir", path="/d"), op("mkdir", path="/d/x")],
     op("rmdir", path="/d"), Errno.ENOTEMPTY),
    ("rmdir-of-file", [op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("rmdir", path="/f"), Errno.ENOTDIR),
    ("unlink-missing", [], op("unlink", path="/ghost"), Errno.ENOENT),
    ("unlink-of-dir", [op("mkdir", path="/d")], op("unlink", path="/d"), Errno.EISDIR),
    ("open-missing-nocreat", [], op("open", path="/ghost"), Errno.ENOENT),
    ("open-excl-exists", [op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("open", path="/f", flags=CREAT | EXCL), Errno.EEXIST),
    ("open-excl-dangling-symlink", [op("symlink", target="/nowhere", path="/s")],
     op("open", path="/s", flags=CREAT | EXCL), Errno.EEXIST),
    ("open-directory", [op("mkdir", path="/d")], op("open", path="/d"), Errno.EISDIR),
    ("open-symlink-loop", [op("symlink", target="/b", path="/a"), op("symlink", target="/a", path="/b")],
     op("open", path="/a"), Errno.ELOOP),
    ("stat-missing", [], op("stat", path="/ghost"), Errno.ENOENT),
    ("stat-loop", [op("symlink", target="/b", path="/a"), op("symlink", target="/a", path="/b")],
     op("stat", path="/a"), Errno.ELOOP),
    ("stat-dangling", [op("symlink", target="/nowhere", path="/s")], op("stat", path="/s"), Errno.ENOENT),
    ("readlink-of-file", [op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("readlink", path="/f"), Errno.EINVAL),
    ("readlink-of-dir", [op("mkdir", path="/d")], op("readlink", path="/d"), Errno.EINVAL),
    ("readdir-of-file", [op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("readdir", path="/f"), Errno.ENOTDIR),
    ("link-to-dir", [op("mkdir", path="/d")], op("link", existing="/d", new="/d2"), Errno.EPERM),
    ("link-exists", [op("open", path="/f", flags=CREAT), op("close", fd=3), op("mkdir", path="/d")],
     op("link", existing="/f", new="/d"), Errno.EEXIST),
    ("link-missing-source", [], op("link", existing="/ghost", new="/l"), Errno.ENOENT),
    ("symlink-exists", [op("mkdir", path="/d")], op("symlink", target="/x", path="/d"), Errno.EEXIST),
    ("symlink-empty-target", [], op("symlink", target="", path="/s"), Errno.EINVAL),
    ("rename-missing-src", [], op("rename", src="/ghost", dst="/new"), Errno.ENOENT),
    ("rename-dir-onto-file", [op("mkdir", path="/d"), op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("rename", src="/d", dst="/f"), Errno.ENOTDIR),
    ("rename-file-onto-dir", [op("mkdir", path="/d"), op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("rename", src="/f", dst="/d"), Errno.EISDIR),
    ("rename-onto-nonempty-dir", [op("mkdir", path="/a"), op("mkdir", path="/b"), op("mkdir", path="/b/x")],
     op("rename", src="/a", dst="/b"), Errno.ENOTEMPTY),
    ("rename-into-own-subtree", [op("mkdir", path="/a"), op("mkdir", path="/a/b")],
     op("rename", src="/a", dst="/a/b/c"), Errno.EINVAL),
    ("truncate-negative", [op("open", path="/f", flags=CREAT), op("close", fd=3)],
     op("truncate", path="/f", size=-1), Errno.EINVAL),
    ("truncate-of-dir", [op("mkdir", path="/d")], op("truncate", path="/d", size=0), Errno.EISDIR),
    ("truncate-of-symlink", [op("mkdir", path="/d"), op("symlink", target="/d2", path="/s")],
     op("truncate", path="/s", size=0), Errno.ENOENT),  # follows the dangling link
    ("read-bad-fd", [], op("read", fd=9, length=1), Errno.EBADF),
    ("write-bad-fd", [], op("write", fd=9, data=b"x"), Errno.EBADF),
    ("close-bad-fd", [], op("close", fd=9), Errno.EBADF),
    ("lseek-bad-whence", [op("open", path="/f", flags=CREAT)], op("lseek", fd=3, offset=0, whence=7), Errno.EINVAL),
    ("lseek-negative", [op("open", path="/f", flags=CREAT)], op("lseek", fd=3, offset=-5, whence=0), Errno.EINVAL),
    ("read-negative-length", [op("open", path="/f", flags=CREAT)], op("read", fd=3, length=-1), Errno.EINVAL),
    ("relative-path", [], op("stat", path="relative"), Errno.EINVAL),
    ("double-slash", [], op("mkdir", path="//a"), Errno.EINVAL),
    ("dot-component", [], op("mkdir", path="/a/./b"), Errno.EINVAL),
    ("name-too-long", [], op("mkdir", path="/" + "n" * 300), Errno.ENAMETOOLONG),
]


def implementations():
    return [
        ("base", BaseFilesystem(formatted_device())),
        ("shadow", ShadowFilesystem(formatted_device())),
        ("spec", SpecFilesystem()),
    ]


@pytest.mark.parametrize("name,setup,probe,expected", MATRIX, ids=[m[0] for m in MATRIX])
def test_errno_matrix(name, setup, probe, expected):
    for implementation_name, fs in implementations():
        for index, operation in enumerate(setup):
            result = operation.apply(fs, opseq=index + 1)
            assert result.ok, f"{implementation_name}: setup {operation.describe()} failed: {result}"
        result = probe.apply(fs, opseq=100)
        assert result.errno == expected, (
            f"{implementation_name}: {probe.describe()} -> {result.errno}, expected {expected.name}"
        )
