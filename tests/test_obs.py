"""Tests for repro.obs: metrics, tracing, supervisor wiring, purity."""

import ast
import json
from pathlib import Path

import pytest

from repro.api import OpResult, OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError, KernelBug
from repro.obs import Registry, Tracer
from repro.obs.metrics import Histogram
from tests.conftest import formatted_device
from tests.test_core_supervisor import crash_on_name

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class FakeClock:
    """Deterministic injected clock: advances by `step` per call."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ---------------------------------------------------------------------------
# Histogram bucketing


class TestHistogram:
    def test_log_scale_bucket_edges(self):
        hist = Histogram("h", lo=1.0, factor=2.0, buckets=4)
        assert hist.boundaries == [1.0, 2.0, 4.0, 8.0]
        hist.observe(0.5)  # below lo -> first bucket (le 1.0)
        hist.observe(1.0)  # exactly on a boundary -> that bucket (le semantics)
        hist.observe(1.0000001)  # just past -> next bucket
        hist.observe(8.0)  # top boundary -> last finite bucket
        hist.observe(8.0000001)  # past the top -> +inf overflow
        assert hist.bucket_counts == [2, 1, 0, 1]
        assert hist.overflow == 1
        assert hist.count == 5
        assert hist.min == 0.5
        assert hist.max == pytest.approx(8.0000001)
        assert hist.sum == pytest.approx(0.5 + 1.0 + 1.0000001 + 8.0 + 8.0000001)

    def test_snapshot_buckets_are_labelled(self):
        hist = Histogram("h", lo=1.0, factor=2.0, buckets=2)
        hist.observe(1.5)
        snap = hist.snapshot()
        assert snap["buckets"] == [["1", 0], ["2", 1], ["+inf", 0]]
        assert snap["count"] == 1

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", factor=1.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=0)


# ---------------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_counters_gauges_in_snapshot(self):
        reg = Registry()
        reg.counter("hits").inc()
        reg.counter("hits").inc(2)
        reg.gauge("depth").set(7.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"depth": 7.5}
        assert snap["enabled"] is True

    def test_disabled_registry_hands_out_null_instruments(self):
        reg = Registry(enabled=False)
        reg.counter("hits").inc(100)
        reg.gauge("depth").set(9)
        reg.histogram("lat").observe(1.0)
        snap = reg.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_collectors_namespaced_and_replaceable(self):
        reg = Registry()
        reg.register_collector("cache", lambda: {"hits": 1})
        assert reg.collect() == {"cache.hits": 1}
        reg.register_collector("cache", lambda: {"hits": 5, "misses": 2})
        assert reg.collect() == {"cache.hits": 5, "cache.misses": 2}

    def test_to_json_round_trips(self):
        reg = Registry(clock=FakeClock())
        reg.counter("c").inc()
        with reg.tracer.span("phase"):
            pass
        parsed = json.loads(reg.to_json())
        assert parsed["counters"] == {"c": 1}
        assert parsed["spans"][0]["name"] == "phase"
        assert parsed["spans"][0]["duration"] == 1.0


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_spans_with_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
        outer, inner = tracer.events
        assert (outer.name, outer.depth) == ("outer", 0)
        assert (inner.name, inner.depth) == ("inner", 1)
        # clock ticks: outer start=1, inner start=2, inner end=3, outer end=4
        assert inner.duration == 1.0
        assert outer.duration == 3.0
        assert inner.attrs == {"detail": 1}

    def test_error_marks_span_and_propagates(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(KernelBug):
            with tracer.span("doomed"):
                raise KernelBug("boom")
        (event,) = tracer.events
        assert event.attrs["error"] == "KernelBug"
        assert event.end is not None

    def test_event_ring_is_bounded(self):
        tracer = Tracer(clock=FakeClock(), limit=3)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        assert [e.name for e in tracer.events] == ["s7", "s8", "s9"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(clock=FakeClock(), enabled=False)
        with tracer.span("ghost") as event:
            assert event is None
        assert len(tracer.events) == 0

    def test_timeline_renders_depth_and_attrs(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("recovery", kind="bug"):
            with tracer.span("recovery.reboot"):
                pass
        text = tracer.timeline()
        lines = text.splitlines()
        assert lines[0].startswith("recovery ") and "kind=bug" in lines[0]
        assert lines[1].startswith("  recovery.reboot ")


# ---------------------------------------------------------------------------
# Supervisor wiring


class TestSupervisorObs:
    def test_op_latency_and_errno_counters(self, device, hooks):
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/a")
        with pytest.raises(FsError):
            rae.rmdir("/missing")
        snap = rae.obs.snapshot()
        assert snap["counters"]["op.count.mkdir"] == 1
        assert snap["counters"]["op.errno.ENOENT"] == 1
        assert snap["histograms"]["op.latency.mkdir"]["count"] == 1
        assert snap["histograms"]["op.latency.rmdir"]["count"] == 1

    def test_snapshot_covers_every_subsystem(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/evil-dir")  # forces a recovery
        assert rae.recovery_count == 1
        collected = rae.obs.snapshot()["collected"]
        prefixes = {name.split(".")[0] for name in collected}
        assert {"op", "oplog", "cache", "journal", "writeback", "device", "blkmq",
                "detector", "recovery"} <= prefixes
        assert collected["recovery.successes"] == 1
        assert collected["recovery.phase.total.mean_seconds"] > 0
        assert collected["device.reads"] > 0
        assert collected["journal.commits"] > 0

    def test_recovery_yields_complete_span_timeline(self, device, hooks):
        crash_on_name(hooks, "evil")
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/evil-dir")
        events = {e.name: e for e in rae.obs.tracer.events}
        assert set(events) == {
            "recovery", "recovery.reboot", "recovery.replay",
            "recovery.handoff", "recovery.post-commit",
        }
        assert events["recovery"].depth == 0
        for child in ("recovery.reboot", "recovery.replay", "recovery.handoff",
                      "recovery.post-commit"):
            assert events[child].depth == 1
        for event in events.values():
            assert event.end is not None and event.duration >= 0
        assert events["recovery"].attrs["kind"] == "bug"
        assert events["recovery.replay"].attrs["inflight"] is True

    def test_nested_recovery_spans_nest(self, device, hooks):
        """A bug during the post-recovery commit triggers a nested
        recovery: its span must sit *inside* the parent's post-commit."""
        crash_on_name(hooks, "evil")
        fired = {"n": 0}

        def commit_bug(point, ctx):
            fired["n"] += 1
            if fired["n"] == 1:
                raise KernelBug("post-recovery commit crash")

        hooks.register("journal.commit", commit_bug)
        rae = RAEFilesystem(device, RAEConfig(), hooks=hooks)
        rae.mkdir("/evil-dir")  # recovery -> post-commit crash -> nested recovery
        assert rae.recovery_count == 2
        recoveries = [e for e in rae.obs.tracer.events if e.name == "recovery"]
        assert len(recoveries) == 2
        outer, nested = recoveries
        assert outer.depth == 0 and outer.attrs["nesting"] == 0
        assert nested.depth == 2 and nested.attrs["nesting"] == 1  # inside post-commit
        post_commits = [e for e in rae.obs.tracer.events if e.name == "recovery.post-commit"]
        assert len(post_commits) == 2  # outer's (containing the nested) + nested's own
        # Nested recovery started while the outer post-commit was open.
        outer_post = post_commits[0]
        assert outer_post.start <= nested.start and nested.end <= outer_post.end

    def test_metrics_disabled_records_nothing(self, device, hooks):
        rae = RAEFilesystem(device, RAEConfig(metrics=False), hooks=hooks)
        rae.mkdir("/a")
        snap = rae.obs.snapshot()
        assert snap["enabled"] is False
        assert snap["counters"] == {} and snap["histograms"] == {}
        assert snap["spans"] == []
        # Collectors still answer (they read existing stats), so reports work.
        assert snap["collected"]["op.total"] == 1

    def test_injected_registry_and_clock(self, device, hooks):
        clock = FakeClock(step=0.5)
        # profile=False: the layer profiler's wrappers read the same
        # injected clock, which would add steps inside the measured op.
        rae = RAEFilesystem(
            device, RAEConfig(profile=False), hooks=hooks, obs=Registry(clock=clock)
        )
        rae.mkdir("/a")
        hist = rae.obs.snapshot()["histograms"]["op.latency.mkdir"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.5)  # exactly one clock step

    def test_differential_metrics_on_off_same_filesystem_state(self):
        """Instrumentation must be observationally free: identical op
        streams with metrics on vs off end in byte-identical images."""
        from repro.workloads import WorkloadGenerator, varmail_profile

        images = []
        for metrics in (True, False):
            device = formatted_device(4096)
            hooks = HookPoints()
            crash_on_name(hooks, "evil")
            rae = RAEFilesystem(
                device, RAEConfig(metrics=metrics), hooks=hooks
            )
            for index, operation in enumerate(
                WorkloadGenerator(varmail_profile(), seed=11).ops(120)
            ):
                operation.apply(rae, opseq=index + 1)
            rae.mkdir("/evil-dir")  # fault-injected recovery in both runs
            assert rae.recovery_count == 1
            rae.unmount()
            images.append(device.snapshot())
        assert images[0] == images[1]


# ---------------------------------------------------------------------------
# Shadow purity: no repro.obs anywhere in the replay closure


def _module_name(path: Path) -> str:
    rel = path.relative_to(SRC_ROOT.parent)  # e.g. repro/obs/trace.py
    parts = list(rel.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _repro_imports(path: Path) -> set[str]:
    tree = ast.parse(path.read_text())
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            found.update(a.name for a in node.names if a.name.startswith("repro"))
        elif isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
            found.add(node.module)
    return found


class TestShadowStaysInstrumentationFree:
    def test_obs_unreachable_from_shadowfs_and_spec(self):
        """Transitive import closure from shadowfs/ and spec/ must never
        touch repro.obs (REPLAY-DETERMINISM: no clocks in the replay
        closure)."""
        graph: dict[str, set[str]] = {}
        for path in SRC_ROOT.rglob("*.py"):
            graph[_module_name(path)] = _repro_imports(path)

        def resolve(name: str) -> set[str]:
            # an import of repro.a.b depends on repro.a.b and repro.a
            targets = set()
            parts = name.split(".")
            for end in range(len(parts), 1, -1):
                prefix = ".".join(parts[:end])
                if prefix in graph:
                    targets.add(prefix)
            return targets

        roots = [m for m in graph if m.startswith(("repro.shadowfs", "repro.spec"))]
        assert roots, "shadowfs/spec modules not found — did the tree move?"
        seen: set[str] = set()
        frontier = list(roots)
        while frontier:
            module = frontier.pop()
            if module in seen:
                continue
            seen.add(module)
            for imported in graph.get(module, ()):
                frontier.extend(resolve(imported))
        offenders = sorted(m for m in seen if m.startswith("repro.obs"))
        assert not offenders, (
            f"repro.obs is reachable from the replay closure via {offenders}; "
            "the shadow must stay instrumentation-free"
        )

    def test_forensics_modules_exist_and_stay_out_of_the_closure(self):
        """The forensics subsystem (events, flight recorder, bundles,
        artifact gate) must be present in the scanned tree — a rename
        would silently drop it from the transitive check above — and
        must never be imported, even indirectly, from shadowfs/ or
        spec/.  The divergence capture runs supervisor-side via the
        engine's ``_crosscheck`` seam; the shadow itself gains no
        observability imports."""
        forensics_modules = {
            "repro.obs.events",
            "repro.obs.flight",
            "repro.obs.forensics",
            "repro.obs.check",
            "repro.obs.prof",
            "repro.obs.prof.profiler",
        }
        graph = {
            _module_name(path): _repro_imports(path)
            for path in SRC_ROOT.rglob("*.py")
        }
        missing = forensics_modules - set(graph)
        assert not missing, f"forensics modules moved or deleted: {sorted(missing)}"
        shadow_modules = {
            m: imports for m, imports in graph.items()
            if m.startswith(("repro.shadowfs", "repro.spec"))
        }
        for module, imports in shadow_modules.items():
            hits = imports & forensics_modules
            assert not hits, f"{module} imports forensics modules {sorted(hits)}"

    def test_lint_rule_flags_obs_import_in_shadowfs(self, tmp_path):
        from tests.test_static_analysis import analyze_tree, write_tree
        from repro.analysis.rules.shadow_purity import ShadowPurityRule

        root = write_tree(tmp_path, {
            "shadowfs/sneaky.py": """
                from repro.obs import Registry

                def observe():
                    return Registry()
            """,
        })
        report = analyze_tree(root, rules=[ShadowPurityRule()])
        assert any("repro.obs" in f.message for f in report.findings)


# ---------------------------------------------------------------------------
# Export


class TestExport:
    def test_write_snapshot_and_bench_sections(self, tmp_path):
        from repro.obs import flush_bench_obs, record_section, write_snapshot

        reg = Registry(clock=FakeClock())
        reg.counter("c").inc()
        path = write_snapshot(str(tmp_path / "snap.json"), reg, meta={"run": 1})
        payload = json.loads(Path(path).read_text())
        assert payload["meta"] == {"run": 1}
        assert payload["snapshot"]["counters"] == {"c": 1}

        record_section("bench_a", reg, extra={"ops": 10})
        out = flush_bench_obs(str(tmp_path / "BENCH_obs.json"))
        bench = json.loads(Path(out).read_text())
        assert bench["schema"] == 1
        assert bench["sections"]["bench_a"]["extra"] == {"ops": 10}
        # flushing clears the staging area
        empty = json.loads(Path(flush_bench_obs(str(tmp_path / "empty.json"))).read_text())
        assert empty["sections"] == {}

    def test_write_snapshot_is_crash_safe(self, tmp_path):
        """write_snapshot goes through atomic_write_json: a payload that
        fails to serialize must leave an existing snapshot untouched and
        no temp file behind (serialization happens before the target is
        touched; replacement is a single os.replace)."""
        from repro.obs import write_snapshot

        target = tmp_path / "snap.json"
        target.write_text('{"old": true}')
        reg = Registry(clock=FakeClock())
        with pytest.raises(TypeError):
            write_snapshot(str(target), reg, meta={"bad": object()})
        assert json.loads(target.read_text()) == {"old": True}
        assert list(tmp_path.iterdir()) == [target]
