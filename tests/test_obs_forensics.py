"""Tests for the recovery flight recorder and forensic bundles:
repro.obs.events, repro.obs.flight, repro.obs.forensics, and their
supervisor wiring (correlation ids, freeze-at-detection, cross-check
divergence capture)."""

import json
import os
from pathlib import Path

import pytest

from repro.api import OpenFlags
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import RecoveryFailure
from repro.faults.catalog import make_dir_insert_crash_bug
from repro.faults.injector import Injector
from repro.obs import (
    BundleStore,
    CrossCheckCapture,
    EventLog,
    FlightRecorder,
    build_bundle,
    load_bundle,
    merge_timeline,
    render_bundle,
    render_timeline,
    write_bundle,
)
from repro.obs.flight import DETAIL_LIMIT
from repro.obs.metrics import Histogram
from tests.conftest import formatted_device
from tests.test_core_supervisor import crash_on_name
from tests.test_obs import FakeClock


# ---------------------------------------------------------------------------
# Event log


class TestEventLog:
    def test_emit_records_seq_ts_corr_id_fields(self):
        log = EventLog(clock=FakeClock())
        event = log.emit("detect", corr_id=7, kind_of_error="bug")
        assert event.seq == 1
        assert event.ts == 1.0
        assert event.corr_id == 7
        assert event.fields == {"kind_of_error": "bug"}
        assert log.counts == {"detect": 1}

    def test_ring_bounded_but_counts_cumulative(self):
        log = EventLog(clock=FakeClock(), limit=3)
        for i in range(5):
            log.emit("tick", corr_id=i)
        assert len(log) == 3
        assert log.emitted == 5
        assert log.dropped == 2
        assert log.counts == {"tick": 5}
        assert [e.corr_id for e in log.events] == [2, 3, 4]

    def test_since_slices_by_event_number(self):
        log = EventLog(clock=FakeClock())
        log.emit("before")
        mark = log.emitted
        log.emit("during", corr_id=1)
        log.emit("during", corr_id=2)
        sliced = log.since(mark)
        assert [e.corr_id for e in sliced] == [1, 2]
        assert log.since(log.emitted) == []

    def test_disabled_log_is_a_no_op(self):
        log = EventLog(clock=FakeClock(), enabled=False)
        assert log.emit("detect") is None
        assert log.emitted == 0
        assert log.snapshot() == []

    def test_bad_limit_rejected(self):
        with pytest.raises(ValueError):
            EventLog(limit=0)


# ---------------------------------------------------------------------------
# Flight recorder


class TestFlightRecorder:
    def test_ring_is_bounded_and_details_truncated(self):
        rec = FlightRecorder(clock=FakeClock(), size=3)
        for i in range(5):
            rec.note_op(i, "write", "x" * 500)
        assert len(rec) == 3
        assert rec.ops_seen == 5
        for entry in rec.entries:
            assert len(entry.detail) == DETAIL_LIMIT
            assert entry.detail.endswith("...")

    def test_freeze_copies_ring_and_stat_deltas(self):
        stats = {"journal.commits": 10}
        rec = FlightRecorder(clock=FakeClock(), stats_source=lambda: dict(stats))
        rec.rebaseline()
        stats["journal.commits"] = 14
        rec.note_op(1, "mkdir", "mkdir(path='/a')")
        frozen = rec.freeze("bug during op #1", trigger_seq=1)
        assert frozen.trigger_seq == 1
        assert frozen.reason == "bug during op #1"
        assert [e.seq for e in frozen.entries] == [1]
        assert frozen.stat_deltas == {"journal.commits": 4}
        assert rec.freezes == 1
        assert rec.last_frozen is frozen
        # The frozen copy is immutable: later ops don't leak into it.
        rec.note_op(2, "rmdir", "rmdir(path='/a')")
        assert len(frozen.entries) == 1

    def test_freeze_advances_baseline(self):
        stats = {"n": 0}
        rec = FlightRecorder(clock=FakeClock(), stats_source=lambda: dict(stats))
        rec.rebaseline()
        stats["n"] = 5
        assert rec.freeze("first").stat_deltas == {"n": 5}
        stats["n"] = 7
        assert rec.freeze("second").stat_deltas == {"n": 2}

    def test_disabled_recorder_records_and_freezes_nothing(self):
        rec = FlightRecorder(clock=FakeClock(), enabled=False)
        rec.note_op(1, "mkdir", "mkdir(path='/a')")
        rec.mark("detect")
        assert len(rec) == 0
        assert rec.freeze("bug") is None

    def test_marks_interleave_with_ops(self):
        rec = FlightRecorder(clock=FakeClock())
        rec.note_op(1, "mkdir", "mkdir(path='/a')")
        rec.mark("detect", seq=2, detail="bug during op #2")
        kinds = [e.kind for e in rec.entries]
        assert kinds == ["op", "mark"]

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(size=0)


# ---------------------------------------------------------------------------
# Histogram percentiles


class TestHistogramPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        hist = Histogram("h")
        assert hist.percentile(0.5) is None
        snap = hist.snapshot()
        assert snap["p50"] is None and snap["p95"] is None and snap["p99"] is None

    def test_invalid_quantile_rejected(self):
        hist = Histogram("h")
        for q in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                hist.percentile(q)

    def test_estimates_land_in_the_right_bucket(self):
        hist = Histogram("h", lo=1.0, factor=2.0, buckets=8)
        for value in [1.5] * 50 + [100.0] * 50:
            hist.observe(value)
        p50 = hist.percentile(0.50)
        p99 = hist.percentile(0.99)
        # p50 sits in the (1, 2] bucket, p99 in the (64, 128] one.
        assert 1.0 <= p50 <= 2.0
        assert 64.0 <= p99 <= 128.0

    def test_clamped_to_observed_extremes(self):
        hist = Histogram("h", lo=1.0, factor=2.0, buckets=4)
        hist.observe(3.0)
        # One sample: every quantile is that sample (bucket interpolation
        # would otherwise report a value inside the (2, 4] bucket).
        assert hist.percentile(0.01) == 3.0
        assert hist.percentile(1.0) == 3.0

    def test_overflow_rank_reports_max(self):
        hist = Histogram("h", lo=1.0, factor=2.0, buckets=2)
        hist.observe(1000.0)
        hist.observe(2000.0)
        assert hist.percentile(0.99) == 2000.0

    def test_snapshot_percentiles_are_ordered(self):
        hist = Histogram("h")
        for i in range(1, 200):
            hist.observe(i * 1e-5)
        snap = hist.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]


# ---------------------------------------------------------------------------
# Crash-safe BENCH_obs.json flush


class TestFlushCrashSafety:
    def test_flush_leaves_no_temp_file(self, tmp_path):
        from repro.obs import flush_bench_obs, record_section

        reg = __import__("repro.obs", fromlist=["Registry"]).Registry(clock=FakeClock())
        record_section("a", reg)
        target = tmp_path / "BENCH_obs.json"
        flush_bench_obs(str(target))
        assert target.exists()
        assert not (tmp_path / "BENCH_obs.json.tmp").exists()
        assert json.loads(target.read_text())["schema"] == 1

    def test_failed_flush_clears_staging_and_temp(self, tmp_path):
        from repro.obs import flush_bench_obs, record_section
        from repro.obs.export import _sections

        reg = __import__("repro.obs", fromlist=["Registry"]).Registry(clock=FakeClock())
        record_section("a", reg)
        # os.replace onto a directory fails after the temp write succeeds.
        target = tmp_path / "adir"
        target.mkdir()
        with pytest.raises(OSError):
            flush_bench_obs(str(target))
        assert _sections == {}
        assert not (tmp_path / "adir.tmp").exists()

    def test_interrupted_write_preserves_previous_artifact(self, tmp_path, monkeypatch):
        from repro.obs import flush_bench_obs, record_section

        reg = __import__("repro.obs", fromlist=["Registry"]).Registry(clock=FakeClock())
        record_section("good", reg)
        target = tmp_path / "BENCH_obs.json"
        flush_bench_obs(str(target))
        before = target.read_text()

        record_section("bad", reg)
        # Break the stage->rename step inside the shared atomic writer:
        # the failure must surface and the previous artifact must survive.
        import repro.util as util

        monkeypatch.setattr(
            util.os, "replace",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("disk full")),
        )
        with pytest.raises(RuntimeError):
            flush_bench_obs(str(target))
        # Readers still see the previous complete artifact, and the
        # staging temp file is cleaned up.
        assert target.read_text() == before
        assert not (tmp_path / "BENCH_obs.json.tmp").exists()


# ---------------------------------------------------------------------------
# Bundle primitives


class TestBundlePrimitives:
    def _minimal(self, **over):
        kwargs = dict(
            outcome="success",
            trigger={"corr_id": 1, "kind": "bug", "op": "mkdir",
                     "exception": "KernelBug", "message": "boom"},
            window=None,
            flight=None,
            phases={"reboot": 0.1, "replay": 0.2, "handoff": 0.1, "total": 0.4},
            replay=None,
            crosschecks=CrossCheckCapture().as_dict(),
            events=[],
        )
        kwargs.update(over)
        return build_bundle(**kwargs)

    def test_build_rejects_unknown_outcome(self):
        with pytest.raises(ValueError):
            self._minimal(outcome="maybe")

    def test_store_is_bounded_with_cumulative_built(self):
        store = BundleStore(limit=2)
        for i in range(4):
            store.add(self._minimal(nesting=i))
        assert store.built == 4
        assert store.dropped == 2
        assert len(store.bundles) == 2
        assert store.last["nesting"] == 3

    def test_write_load_round_trip(self, tmp_path):
        bundle = self._minimal()
        path = write_bundle(str(tmp_path / "b.json"), bundle)
        assert not os.path.exists(path + ".tmp")
        assert load_bundle(path) == bundle

    def test_load_rejects_missing_corrupt_and_wrong_schema(self, tmp_path):
        with pytest.raises(OSError):
            load_bundle(str(tmp_path / "nope.json"))
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        with pytest.raises(ValueError):
            load_bundle(str(corrupt))
        not_a_bundle = tmp_path / "other.json"
        not_a_bundle.write_text('{"schema": 1}')
        with pytest.raises(ValueError):
            load_bundle(str(not_a_bundle))
        wrong_schema = tmp_path / "schema.json"
        wrong_schema.write_text(json.dumps({**self._minimal(), "schema": 99}))
        with pytest.raises(ValueError):
            load_bundle(str(wrong_schema))

    def test_crosscheck_capture_is_bounded(self):
        class FakeOutcome:
            value, ino, errno = 1, None, None

            @staticmethod
            def same_outcome_as(other):
                return True

        class FakeOp:
            @staticmethod
            def describe():
                return "op()"

        class FakeRecord:
            seq, op, outcome = 1, FakeOp(), FakeOutcome()

        capture = CrossCheckCapture(limit=2)
        for _ in range(5):
            capture.note(FakeRecord(), FakeOutcome())
        assert capture.captured == 5
        assert capture.dropped == 3
        assert len(capture.rows) == 2


# ---------------------------------------------------------------------------
# End-to-end: injected fault → bundle


def _supervised_with_bug(config: RAEConfig | None = None):
    device = formatted_device()
    hooks = HookPoints()
    fs = RAEFilesystem(device, config or RAEConfig(), hooks=hooks)
    injector = Injector(hooks, seed=0)
    injector.arm(make_dir_insert_crash_bug())
    fs.on_reboot.append(injector.retarget)
    injector.retarget(fs.base)
    return fs


class TestForensicBundleEndToEnd:
    def _recovered_fs(self):
        fs = _supervised_with_bug()
        fs.mkdir("/a")
        fd = fs.open("/a/f", OpenFlags.CREAT)
        fs.write(fd, b"hello world")
        fs.close(fd)
        fs.mkdir("/a/this is evil")  # deterministic KernelBug → recovery
        assert fs.recovery_count == 1
        return fs

    def test_success_bundle_is_complete(self):
        fs = self._recovered_fs()
        bundle = fs.last_bundle
        assert bundle is not None
        assert bundle["outcome"] == "success"
        # Correlation id: the triggering op's log sequence number.
        trigger = bundle["trigger"]
        assert trigger["corr_id"] == 5
        assert trigger["kind"] == "bug"
        assert trigger["op"] == "mkdir"
        # Frozen pre-detection flight ring: the four preceding ops.
        flight = bundle["flight"]
        assert flight["trigger_seq"] == 5
        assert [e["seq"] for e in flight["entries"]] == [1, 2, 3, 4]
        assert any(delta > 0 for delta in flight["stat_deltas"].values())
        # Per-phase timings.
        assert set(bundle["phases"]) == {"reboot", "replay", "handoff", "total"}
        assert bundle["phases"]["total"] > 0
        # At least one populated constrained-mode cross-check row.
        rows = bundle["crosschecks"]["rows"]
        assert len(rows) >= 1
        assert all(row["match"] for row in rows)
        assert rows[0]["expected"]["value"] is not None or rows[0]["expected"]["ino"] is not None
        # Correlated events, detection first.
        kinds = [e["kind"] for e in bundle["events"]]
        assert kinds[0] == "detect"
        assert "recovery.succeeded" in kinds
        assert all(e["corr_id"] == 5 for e in bundle["events"])
        # Window names the replayed slice.
        assert bundle["window"]["first_seq"] == 1
        assert bundle["window"]["last_seq"] == 4

    def test_flight_freeze_precedes_reboot(self):
        """The frozen ring's stat deltas come from the *failed* base:
        its oplog tally counts the pre-detection window, which the
        contained reboot resets to zero."""
        fs = self._recovered_fs()
        frozen = fs.last_bundle["flight"]
        assert frozen["stat_deltas"]["oplog.recorded"] == 4
        # After recovery the recorder rebaselined against the new base.
        fs.mkdir("/b")
        second = fs.flight.freeze("manual")
        assert second.stat_deltas["oplog.recorded"] < 4

    def test_bundle_built_even_when_recovery_fails(self):
        config = RAEConfig(shadow_in_process=False)  # memory device → fails
        fs = _supervised_with_bug(config)
        fs.mkdir("/a")
        with pytest.raises(RecoveryFailure):
            fs.mkdir("/a/this is evil")
        bundle = fs.last_bundle
        assert bundle["outcome"] == "failure"
        assert bundle["failure"]["phase"] == "shadow-process"
        assert bundle["trigger"]["kind"] == "bug"
        assert bundle["flight"]["trigger_seq"] == bundle["trigger"]["corr_id"]
        assert set(bundle["phases"]) >= {"reboot", "replay", "handoff", "total"}
        kinds = [e["kind"] for e in bundle["events"]]
        assert "recovery.failed" in kinds

    def test_bundle_store_and_collector_track_history(self):
        fs = _supervised_with_bug()
        fs.mkdir("/a")
        fs.mkdir("/a/one evil")
        fs.mkdir("/a/two evil")
        assert fs.forensics.built == 2
        collected = fs.obs.collect()
        assert collected["forensics.bundles_built"] == 2
        assert collected["forensics.flight.freezes"] == 2
        assert collected["forensics.flight.ops_seen"] == fs.stats.ops

    def test_flight_disabled_still_builds_bundle(self):
        fs = _supervised_with_bug(RAEConfig(flight=False))
        fs.mkdir("/a")
        fs.mkdir("/a/x evil")
        bundle = fs.last_bundle
        assert bundle["outcome"] == "success"
        assert bundle["flight"] is None
        assert len(bundle["crosschecks"]["rows"]) >= 1

    def test_metrics_disabled_bundle_has_no_events_but_full_forensics(self):
        fs = _supervised_with_bug(RAEConfig(metrics=False))
        fs.mkdir("/a")
        fs.mkdir("/a/x evil")
        bundle = fs.last_bundle
        assert bundle["outcome"] == "success"
        assert bundle["events"] == []
        assert bundle["flight"] is not None
        assert len(bundle["crosschecks"]["rows"]) >= 1

    def test_render_bundle_names_the_story(self):
        fs = self._recovered_fs()
        text = render_bundle(fs.last_bundle)
        assert "success recovery" in text
        assert "corr_id=5" in text
        assert "flight ring (frozen at detection" in text
        assert "[MATCH]" in text
        assert "detect" in text

    def test_timeline_merges_spans_and_events_causally(self):
        fs = self._recovered_fs()
        snap = fs.obs.snapshot()
        merged = merge_timeline(snap["spans"], snap["events"])
        timestamps = [entry["ts"] for entry in merged]
        assert timestamps == sorted(timestamps)
        names = [entry["name"] for entry in merged]
        # Detection precedes the recovery span; the success event follows
        # the hand-off — one causally ordered narrative.
        assert names.index("detect") < names.index("recovery")
        assert names.index("recovery.handoff") < names.index("recovery.succeeded")
        text = render_timeline(merged)
        assert "span  recovery" in text
        assert "event detect" in text

    def test_registry_snapshot_carries_events(self):
        fs = self._recovered_fs()
        snap = fs.obs.snapshot()
        assert any(e["kind"] == "detect" for e in snap["events"])
        assert any(e["kind"] == "handoff.download" for e in snap["events"])
