"""Soak test: thousands of operations, the standard bug catalog armed,
multiple recoveries, full verification at the end.

The closest thing to a day in production: a self-verifying application
runs 3,000 operations over RAE with probabilistic and count-triggered
bugs live, fsyncs sprinkled by the profile, write-back ticking.  At the
end: zero runtime failures, zero corruption in the app's own audit,
fsck-clean image, and internal accounting that adds up.
"""

from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import KernelBug, KernelWarning
from repro.faults import Injector, make_blkmq_wedge_bug, make_lockdep_warn_bug
from repro.fsck import Fsck
from repro.workloads import SimulatedApplication, fileserver_profile
from tests.conftest import formatted_device


def test_soak_3000_ops_with_live_bug_catalog():
    hooks = HookPoints()
    injector = Injector(hooks, seed=5)
    injector.arm(make_blkmq_wedge_bug(probability=0.002))
    injector.arm(make_lockdep_warn_bug(probability=0.001))
    counter = {"n": 0}

    def occasional_crash(point, ctx):
        counter["n"] += 1
        if counter["n"] % 1009 == 0:  # prime, to drift across op types
            raise KernelBug("soak crash")

    hooks.register("vfs.lookup", occasional_crash)

    device = formatted_device(block_count=65536)  # 256 MiB
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    injector.retarget(fs.base)
    fs.on_reboot.append(injector.retarget)

    app = SimulatedApplication(fs, fileserver_profile(), seed=5)
    stats = app.run(3000)

    assert stats.runtime_failures == 0
    assert stats.availability == 1.0
    assert stats.corruption_detected == 0
    assert app.verify_all() == 0
    assert fs.recovery_count >= 2  # the catalog really fired
    assert all(event.discrepancies == 0 for event in fs.stats.events)

    # Accounting adds up after everything.
    assert fs.base.alloc.free_blocks == sum(
        bm.count_free() for bm in fs.base.alloc.block_bitmaps
    ) + len(fs.base.alloc.pending_free)

    fs.unmount()
    report = Fsck(device).run()
    assert report.clean, [str(f) for f in report.errors[:3]]
