"""Property: base and shadow are state-equivalent on arbitrary bug-free
streams (DESIGN §5.2 — the §3.3 'core functionality' contract), and the
base's durable state equals its in-memory logical state after commit.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.errors import FsError
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec import capture_state, states_equivalent
from tests.conftest import formatted_device

NAMES = st.sampled_from(["n1", "n2", "sub", "file.bin", "ln"])
PATHS = st.builds(lambda parts: "/" + "/".join(parts), st.lists(NAMES, min_size=1, max_size=2))
FDS = st.integers(min_value=3, max_value=5)


def ops_strategy():
    return st.lists(
        st.one_of(
            st.builds(lambda p: op("mkdir", path=p), PATHS),
            st.builds(lambda p: op("open", path=p, flags=int(OpenFlags.CREAT)), PATHS),
            st.builds(lambda f, d: op("write", fd=f, data=d), FDS, st.binary(max_size=9000)),
            st.builds(lambda f: op("close", fd=f), FDS),
            st.builds(lambda p: op("unlink", path=p), PATHS),
            st.builds(lambda a, b: op("rename", src=a, dst=b), PATHS, PATHS),
            st.builds(lambda a, b: op("link", existing=a, new=b), PATHS, PATHS),
            st.builds(lambda t, p: op("symlink", target=t, path=p), PATHS, PATHS),
            st.builds(lambda p, s: op("truncate", path=p, size=s), PATHS, st.integers(0, 30000)),
            st.builds(lambda p: op("rmdir", path=p), PATHS),
        ),
        min_size=1,
        max_size=20,
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=ops_strategy())
def test_base_equivalent_to_shadow(operations):
    base = BaseFilesystem(formatted_device())
    shadow = ShadowFilesystem(formatted_device())
    for index, operation in enumerate(operations):
        base_result = operation.apply(base, opseq=index + 1)
        shadow_result = operation.apply(shadow, opseq=index + 1)
        assert base_result.errno == shadow_result.errno, (
            f"op {index} {operation.describe()}: {base_result.errno} vs {shadow_result.errno}"
        )
    report = states_equivalent(capture_state(base), capture_state(shadow))
    assert report.equivalent, str(report)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=ops_strategy())
def test_commit_then_remount_preserves_logical_state(operations):
    device = formatted_device()
    fs = BaseFilesystem(device)
    for index, operation in enumerate(operations):
        operation.apply(fs, opseq=index + 1)
    before = capture_state(fs)
    fs.unmount()
    fs2 = BaseFilesystem(device)
    after = capture_state(fs2)
    report = states_equivalent(before, after, compare_ino_numbers=True, compare_dir_sizes=True)
    assert report.equivalent, str(report)
    fs2.unmount()
