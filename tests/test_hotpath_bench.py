"""Tests for the rae-bench hot-path surface: the mix harness and its
artifact schema, the calibration-normalized perf ratchet, the CLI round
trip, and the seeded-regression acceptance path (a sleep injected into
the device layer must be *attributed* to the device layer and must
*fail* the ratchet that a clean run passes)."""

import json
import time

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.hotpath import (
    MIX_PROFILES,
    calibration_score,
    run_hotpath_bench,
    run_mix,
    write_hotpath,
)
from repro.bench.ratchet import (
    BASELINE_SCHEMA,
    DEFAULT_TOLERANCE,
    baseline_from_artifact,
    check_against_baseline,
    load_baseline,
)
from repro.bench.reporting import render_hotpath
from repro.obs.check import (
    BENCH_HOTPATH_ENV,
    MIN_HOTPATH_MIXES,
    check_hotpath_payload,
)
from repro.obs.prof import LAYERS

# Small-but-real sizes: every test below runs actual supervisor ops, so
# keep the streams short and single-round.
OPS = 40
ROUNDS = 1


def _zero_layers(mix: dict) -> bool:
    return all(
        entry["self_seconds"] == 0.0 and entry["calls"] == 0
        for entry in mix["layers"].values()
    )


class TestHarness:
    def test_full_artifact_is_schema_valid(self):
        payload = run_hotpath_bench(ops=OPS, rounds=ROUNDS)
        assert check_hotpath_payload(payload) == []
        assert set(payload["mixes"]) == set(MIX_PROFILES)
        assert len(payload["mixes"]) >= MIN_HOTPATH_MIXES
        assert payload["meta"]["calibration_score"] > 0
        for mix in payload["mixes"].values():
            # ops counts the whole executed stream: prepopulation + the
            # OPS measured operations.
            assert mix["ops"] >= OPS
            assert mix["ops_per_second"] > 0
            assert set(mix["layers"]) == set(LAYERS)
            assert mix["latency_seconds"]["p50"] is not None
            # Shares are a partition of the measured self-time.
            assert sum(e["share"] for e in mix["layers"].values()) == pytest.approx(1.0)

    def test_mix_sections_have_a_deterministic_schema(self):
        """Two runs produce byte-identical key structure (values differ:
        wall time is real)."""

        def shape(value):
            if isinstance(value, dict):
                return {k: shape(v) for k, v in value.items()}
            return type(value).__name__

        a = run_mix("read_heavy", ops=OPS, rounds=ROUNDS)
        b = run_mix("read_heavy", ops=OPS, rounds=ROUNDS)
        assert shape(a) == shape(b)
        assert list(a["layers"]) == list(LAYERS)

    def test_unknown_mix_is_rejected(self):
        with pytest.raises(ValueError, match="unknown mix"):
            run_hotpath_bench(ops=10, rounds=1, mixes=["nope"])

    def test_attribution_off_zeroes_layers_but_still_measures(self):
        mix = run_mix("read_heavy", ops=OPS, rounds=ROUNDS, attribution=False)
        assert mix["ops_per_second"] > 0
        assert mix["latency_seconds"]["p50"] is not None
        assert set(mix["layers"]) == set(LAYERS)
        assert _zero_layers(mix)

    def test_write_hotpath_explicit_env_and_default(self, tmp_path, monkeypatch):
        payload = {"schema": 1, "meta": {}, "mixes": {}}
        explicit = tmp_path / "explicit.json"
        assert write_hotpath(payload, str(explicit)) == str(explicit)
        assert json.loads(explicit.read_text()) == payload

        via_env = tmp_path / "via_env.json"
        monkeypatch.setenv(BENCH_HOTPATH_ENV, str(via_env))
        assert write_hotpath(payload) == str(via_env)
        assert via_env.exists()

        monkeypatch.delenv(BENCH_HOTPATH_ENV)
        monkeypatch.chdir(tmp_path)
        assert write_hotpath(payload) == "BENCH_hotpath.json"
        assert (tmp_path / "BENCH_hotpath.json").exists()

    def test_calibration_score_is_positive(self):
        assert calibration_score(rounds=1) > 0


def _valid_artifact(cal=100.0):
    """A synthetic artifact that passes the schema gate (four canonical
    mixes, full layer tables) without running the harness."""
    mixes = {}
    for name in ("read_heavy", "write_heavy", "create_unlink_heavy", "lookup_heavy"):
        mixes[name] = {
            "ops": 10,
            "elapsed_seconds": 0.01,
            "ops_per_second": 1000.0,
            "latency_seconds": {"p50": 1e-4, "p95": 2e-4, "p99": 4e-4},
            "layers": {
                layer: {
                    "self_seconds": 0.0, "calls": 0, "share": 0.0,
                    "p50": None, "p95": None, "p99": None,
                }
                for layer in LAYERS
            },
        }
    return {"schema": 1, "meta": {"calibration_score": cal}, "mixes": mixes}


def _artifact(cal=100.0, ops_s=1000.0, p50=1e-4, p95=2e-4, p99=4e-4, name="m"):
    """A minimal synthetic artifact for ratchet unit tests."""
    return {
        "schema": 1,
        "meta": {"calibration_score": cal},
        "mixes": {
            name: {
                "ops_per_second": ops_s,
                "latency_seconds": {"p50": p50, "p95": p95, "p99": p99},
            }
        },
    }


class TestRatchet:
    def test_baseline_distills_artifact_and_carries_tolerance(self):
        baseline = baseline_from_artifact(_artifact(), tolerance={"p99": 9.0})
        assert baseline["schema"] == BASELINE_SCHEMA
        assert baseline["calibration_score"] == 100.0
        assert baseline["tolerance"]["p99"] == 9.0
        assert baseline["tolerance"]["p50"] == DEFAULT_TOLERANCE["p50"]
        assert baseline["mixes"]["m"]["ops_per_second"] == 1000.0
        assert baseline["mixes"]["m"]["latency_seconds"]["p95"] == 2e-4

    def test_identical_run_passes(self):
        artifact = _artifact()
        assert check_against_baseline(artifact, baseline_from_artifact(artifact)) == []

    def test_throughput_below_floor_fails(self):
        baseline = baseline_from_artifact(_artifact(ops_s=1000.0))
        # tolerance 0.60 -> floor at 400 ops/s normalized.
        slow = _artifact(ops_s=350.0)
        problems = check_against_baseline(slow, baseline)
        assert any("ops_per_second regressed" in p for p in problems)
        assert check_against_baseline(_artifact(ops_s=450.0), baseline) == []

    def test_latency_above_ceiling_fails(self):
        baseline = baseline_from_artifact(_artifact(p50=1e-4))
        # tolerance 1.50 -> ceiling at 2.5x baseline p50.
        slow = _artifact(p50=3e-4)
        problems = check_against_baseline(slow, baseline)
        assert any("latency p50 regressed" in p for p in problems)

    def test_calibration_normalization_cancels_machine_speed(self):
        """The same code on a 2x-faster machine (doubled calibration,
        doubled throughput, halved latency) is not a regression."""
        baseline = baseline_from_artifact(_artifact())
        faster = _artifact(cal=200.0, ops_s=2000.0, p50=5e-5, p95=1e-4, p99=2e-4)
        assert check_against_baseline(faster, baseline) == []
        # ...and a slower machine is not punished either.
        slower = _artifact(cal=50.0, ops_s=500.0, p50=2e-4, p95=4e-4, p99=8e-4)
        assert check_against_baseline(slower, baseline) == []

    def test_none_percentiles_are_skipped(self):
        baseline = baseline_from_artifact(_artifact(p99=None))
        assert check_against_baseline(_artifact(p99=None), baseline) == []
        assert check_against_baseline(_artifact(p99=1.0), baseline) == []

    def test_baseline_mix_missing_from_artifact_fails(self):
        baseline = baseline_from_artifact(_artifact(name="kept"))
        problems = check_against_baseline(_artifact(name="other"), baseline)
        assert any("missing from the artifact" in p for p in problems)

    def test_unbaselined_artifact_mix_fails(self):
        baseline = baseline_from_artifact(_artifact(name="m"))
        artifact = _artifact(name="m")
        artifact["mixes"]["fresh"] = dict(artifact["mixes"]["m"])
        problems = check_against_baseline(artifact, baseline)
        assert any("not in the baseline" in p and "fresh" in p for p in problems)
        assert any("--update-baseline" in p for p in problems)

    def test_missing_calibration_cannot_normalize(self):
        baseline = baseline_from_artifact(_artifact())
        broken = _artifact()
        del broken["meta"]["calibration_score"]
        assert check_against_baseline(broken, baseline) == [
            "calibration score missing or non-positive; cannot normalize"
        ]

    def test_load_baseline_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "base.json"
        bad.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="not a schema-1 hotpath baseline"):
            load_baseline(str(bad))


class TestCLI:
    def test_run_update_check_round_trip(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_hotpath.json"
        baseline = tmp_path / "hotpath.baseline.json"
        code = bench_main([
            "--ops", str(OPS), "--rounds", "1",
            "--out", str(artifact),
            "--baseline", str(baseline), "--update-baseline",
            "--quiet",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "baseline updated" in captured.out
        assert json.loads(baseline.read_text())["schema"] == BASELINE_SCHEMA

        # The CI shape: check a pre-existing artifact against the baseline.
        code = bench_main([
            "--artifact", str(artifact),
            "--baseline", str(baseline), "--check-baseline",
            "--quiet",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "baseline check ok" in captured.out

    def test_tables_render_unless_quiet(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_hotpath.json"
        assert bench_main([
            "--ops", "20", "--rounds", "1", "--mix", "read_heavy",
            "--out", str(artifact),
        ]) == 0
        captured = capsys.readouterr()
        assert "per-layer self-time" in captured.out
        assert "p99us" in captured.out
        # A --mix subset is an experiment: the gate notes, never fails.
        assert "note:" in captured.err

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        artifact = tmp_path / "BENCH_hotpath.json"
        artifact.write_text(json.dumps(_valid_artifact()))
        code = bench_main([
            "--artifact", str(artifact),
            "--baseline", str(tmp_path / "nope.json"), "--check-baseline",
            "--quiet",
        ])
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_corrupt_artifact_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_hotpath.json"
        bad.write_text("{truncated")
        assert bench_main(["--artifact", str(bad), "--quiet"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_schema_invalid_artifact_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_hotpath.json"
        bad.write_text(json.dumps({"schema": 99, "meta": {}, "mixes": {}}))
        assert bench_main(["--artifact", str(bad), "--quiet"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_mix_exits_2(self, capsys):
        assert bench_main(["--mix", "nope", "--quiet"]) == 2
        assert "unknown mix" in capsys.readouterr().err


class TestSeededRegression:
    """ISSUE acceptance: a synthetic sleep seeded into one layer is
    attributed to that layer and trips the ratchet; a clean run passes."""

    def test_device_sleep_is_attributed_and_fails_the_ratchet(self):
        def slow_device(device):
            real_write = device.write_block

            def write_block(block_no, data):
                time.sleep(0.002)  # the seeded synthetic regression
                return real_write(block_no, data)

            device.write_block = write_block

        kwargs = dict(ops=OPS, rounds=1, mixes=["write_heavy"])
        clean = run_hotpath_bench(**kwargs)
        slowed = run_hotpath_bench(**kwargs, device_tweak=slow_device)

        clean_device = clean["mixes"]["write_heavy"]["layers"]["device"]
        slow_device_layer = slowed["mixes"]["write_heavy"]["layers"]["device"]
        assert slow_device_layer["calls"] > 0
        # Attribution: the injected cost lands in the device layer, which
        # now dominates the breakdown instead of being a rounding error.
        assert slow_device_layer["share"] > clean_device["share"]
        assert slow_device_layer["share"] > 0.5
        assert slow_device_layer["self_seconds"] > clean_device["self_seconds"] * 5

        baseline = baseline_from_artifact(clean)
        assert check_against_baseline(clean, baseline) == []
        problems = check_against_baseline(slowed, baseline)
        assert problems, "seeded regression escaped the ratchet"
        assert all("write_heavy" in p for p in problems)


class TestRenderHotpath:
    def test_tables_carry_summary_and_layers(self):
        payload = run_hotpath_bench(ops=20, rounds=1, mixes=["lookup_heavy"])
        text = render_hotpath(payload)
        assert "hot-path throughput" in text
        assert "calibration=" in text
        assert "lookup_heavy — per-layer self-time" in text
        for column in ("ops/s", "p50us", "p95us", "p99us", "share"):
            assert column in text
        for layer in LAYERS:
            assert layer in text

    def test_none_percentiles_render_as_dash(self):
        payload = {
            "meta": {},
            "mixes": {
                "m": {
                    "ops": 1,
                    "ops_per_second": 10.0,
                    "latency_seconds": {"p50": None, "p95": None, "p99": None},
                    "layers": {},
                }
            },
        }
        lines = render_hotpath(payload).splitlines()
        row = next(line for line in lines if line.startswith("m "))
        assert row.count("-") >= 3
