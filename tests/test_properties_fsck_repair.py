"""Property: fsck repair converges on arbitrarily corrupted images.

For any populated image and any set of random byte flips outside the
superblock and journal region (those two have dedicated parse-failure
paths), ``repair_image`` must produce an image that (a) passes fsck with
zero errors and (b) mounts on both implementations.  Data loss is
allowed — honesty about it is fsck's job — but the structure must
always converge.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.fsck import Fsck, repair_image
from repro.ondisk.layout import BLOCK_SIZE, DiskLayout
from repro.shadowfs.filesystem import ShadowFilesystem
from tests.conftest import formatted_device


def populated_image():
    device = formatted_device()
    fs = BaseFilesystem(device)
    fs.mkdir("/docs", opseq=1)
    fs.mkdir("/docs/deep", opseq=2)
    fd = fs.open("/docs/a", OpenFlags.CREAT, opseq=3)
    fs.write(fd, b"alpha" * 4000, opseq=4)
    fs.close(fd, opseq=5)
    fs.symlink("/docs/a", "/s", opseq=6)
    fs.link("/docs/a", "/docs/b", opseq=7)
    fs.unmount()
    return device


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    flips=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4095),  # scaled to a block below
            st.integers(min_value=0, max_value=BLOCK_SIZE - 1),
            st.integers(min_value=1, max_value=255),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_repair_converges_after_random_corruption(flips):
    device = populated_image()
    layout = DiskLayout(block_count=device.block_count)
    protected = {0} | set(range(layout.journal_start, layout.journal_start + layout.journal_blocks))
    eligible = [b for b in range(device.block_count) if b not in protected]
    for block_pick, offset, xor in flips:
        block = eligible[block_pick % len(eligible)]
        raw = bytearray(device.read_block(block))
        raw[offset] ^= xor
        device.write_block(block, bytes(raw))

    repair_image(device)
    report = Fsck(device).run()
    assert report.clean, [str(f) for f in report.errors[:3]]

    # Both implementations must mount and walk whatever survived.
    shadow = ShadowFilesystem(device)
    shadow.readdir("/")
    fs = BaseFilesystem(device)
    fs.readdir("/")
    fs.unmount()
