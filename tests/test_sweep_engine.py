"""The crash-point sweep engine: catalog drift gating, crash-site
matching, outcome classification, replay determinism, and the full-sweep
acceptance — every (op, point) pair of the committed surface executes
with zero unsanctioned non-clean outcomes."""

import json
from pathlib import Path

import pytest

from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.blockdev.device import MemoryBlockDevice
from repro.ondisk.mkfs import mkfs
from repro.sweep.device import FAIL_STOP, POWER_LOSS, SweepDevice
from repro.sweep.engine import (
    OUTCOME_CLEAN,
    OUTCOME_UNREACHED,
    SweepConfig,
    SweepEngine,
)
from repro.sweep.sanctions import SWEEP_SANCTIONS, sanction_for, validate_sanctions
from repro.sweep.surface import SurfaceError, SweepPoint, iter_pairs, load_surface

REPO = Path(__file__).resolve().parent.parent
SURFACE = REPO / "crashpoints.json"
SRC_ROOT = REPO / "src" / "repro"


def _quick_config(**overrides) -> SweepConfig:
    base = dict(
        surface_path=str(SURFACE),
        src_root=str(SRC_ROOT),
        check_drift=False,
        profiles=("fileserver",),
        nops=12,
        minimize=False,
    )
    base.update(overrides)
    return SweepConfig(**base)


class TestSurface:
    def test_committed_catalog_loads_and_passes_drift_check(self):
        payload = load_surface(SURFACE, src_root=SRC_ROOT, check_drift=True)
        assert payload["version"] == 1

    def test_pair_count_matches_catalog(self):
        payload = load_surface(SURFACE, check_drift=False)
        pairs = iter_pairs(payload)
        expected = sum(len(body["points"]) for body in payload["ops"].values())
        assert len(pairs) == expected
        assert len(pairs) >= 50  # the committed surface holds 51 pairs

    def test_missing_file_raises_surface_error(self):
        with pytest.raises(SurfaceError, match="cannot read"):
            load_surface("/nonexistent/crashpoints.json", check_drift=False)

    def test_malformed_json_raises_surface_error(self, tmp_path):
        bad = tmp_path / "crashpoints.json"
        bad.write_text("{not json")
        with pytest.raises(SurfaceError, match="not valid JSON"):
            load_surface(bad, check_drift=False)

    def test_drifted_catalog_raises_surface_error(self, tmp_path):
        payload = json.loads(SURFACE.read_text())
        first_op = sorted(payload["ops"])[0]
        payload["ops"][first_op]["points"].pop()
        drifted = tmp_path / "crashpoints.json"
        drifted.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        with pytest.raises(SurfaceError, match="drifted"):
            load_surface(drifted, src_root=SRC_ROOT, check_drift=True)

    def test_cli_maps_drift_to_exit_2(self, tmp_path):
        from repro.sweep.cli import main

        payload = json.loads(SURFACE.read_text())
        first_op = sorted(payload["ops"])[0]
        payload["ops"][first_op]["points"].pop()
        drifted = tmp_path / "crashpoints.json"
        drifted.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        code = main(["--surface", str(drifted), "--src-root", str(SRC_ROOT), "--list"])
        assert code == 2


class TestSweepDeviceMatching:
    """The crash trigger fires at exactly the armed (site, entry) pair."""

    def _commit_point(self, entry="BaseFilesystem.commit") -> SweepPoint:
        return SweepPoint(
            op="commit",
            ref="ondisk/journal.py:181",
            kind="commit-record",
            path="ondisk/journal.py",
            line=181,
            entry=entry,
            entry_path="basefs/filesystem.py",
        )

    def _fs_with_armed_device(self, point, crash_kind=FAIL_STOP):
        mem = MemoryBlockDevice(block_count=1024, track_durability=True)
        mkfs(mem, journal_blocks=16)
        hooks = HookPoints()
        fired = []
        hooks.register(
            "blkmq.submit",
            lambda point, ctx: fired.append(ctx["persist_ref"])
            if ctx.get("persist_ref") else None,
        )
        dev = SweepDevice(mem, hooks)
        fs = BaseFilesystem(dev, hooks=hooks)
        dev.arm_point(point, crash_kind)
        return fs, dev, fired

    def test_commit_record_site_fires_during_commit(self):
        fs, dev, fired = self._fs_with_armed_device(self._commit_point())
        fs.mkdir("/d")
        fs.commit()
        assert "ondisk/journal.py:181" in fired
        assert dev.matches >= 1

    def test_wrong_entry_does_not_fire(self):
        # Same site, but armed for the unmount entry: a bare commit must
        # not match — each (op, point) tuple is its own run.
        point = self._commit_point(entry="BaseFilesystem.unmount")
        fs, dev, fired = self._fs_with_armed_device(point)
        fs.mkdir("/d")
        fs.commit()
        assert fired == []
        fs.mkdir("/e")  # dirty state so unmount's final commit journals
        fs.unmount()
        assert "ondisk/journal.py:181" in fired

    def test_disarmed_device_never_fires(self):
        fs, dev, fired = self._fs_with_armed_device(self._commit_point())
        dev.disarm_point()
        fs.mkdir("/d")
        fs.commit()
        assert fired == []

    def test_delegating_site_matches_through_callee(self):
        # journal_mgr.py:139 is `cache.writeback(block)` — the physical
        # write happens inside BufferCache; the stack walk must still
        # attribute it to the journal manager's home-write site.
        point = SweepPoint(
            op="commit",
            ref="basefs/journal_mgr.py:139",
            kind="checkpoint",
            path="basefs/journal_mgr.py",
            line=139,
            entry="BaseFilesystem.commit",
            entry_path="basefs/filesystem.py",
        )
        fs, dev, fired = self._fs_with_armed_device(point)
        fs.mkdir("/d")
        fs.commit()
        assert "basefs/journal_mgr.py:139" in fired

    def test_unknown_crash_kind_rejected(self):
        mem = MemoryBlockDevice(block_count=1024)
        dev = SweepDevice(mem, HookPoints())
        with pytest.raises(ValueError, match="crash kind"):
            dev.arm_point(self._commit_point(), "meteor-strike")


class TestClassification:
    def test_commit_record_fail_stop_recovers_clean(self):
        engine = SweepEngine(_quick_config(refs=("ondisk/journal.py:181",), ops=("commit",)))
        cases = engine.build_cases(engine.load_pairs())
        by_kind = {case.crash_kind: case for case in cases}
        result = engine.run_case(by_kind[FAIL_STOP])
        assert result.fired
        assert result.outcome == OUTCOME_CLEAN

    def test_commit_record_power_loss_recovers_clean(self):
        engine = SweepEngine(_quick_config(refs=("ondisk/journal.py:181",), ops=("commit",)))
        cases = engine.build_cases(engine.load_pairs())
        by_kind = {case.crash_kind: case for case in cases}
        result = engine.run_case(by_kind[POWER_LOSS])
        assert result.fired
        assert result.outcome == OUTCOME_CLEAN

    def test_submission_only_site_is_unreached(self):
        # filesystem.py:687 enqueues into blk-mq; no device call happens
        # while the line is live — the sweep must report it unreached
        # (and the sanctions table argues why that is correct).
        engine = SweepEngine(_quick_config(refs=("basefs/filesystem.py:687",), ops=("commit",)))
        cases = engine.build_cases(engine.load_pairs())
        result = engine.run_case(cases[0])
        assert not result.fired
        assert result.outcome == OUTCOME_UNREACHED
        assert sanction_for("commit", "basefs/filesystem.py:687", cases[0].crash_kind)


class TestDeterminism:
    """Satellite: one sweep seed, byte-identical replay."""

    def test_same_case_replays_byte_identically(self):
        config = _quick_config(refs=("ondisk/journal.py:181",), ops=("commit",))
        engine = SweepEngine(config)
        case = engine.build_cases(engine.load_pairs())[0]
        first = engine.run_case(case)
        second = SweepEngine(config).run_case(case)  # fresh engine, no caches
        assert first.outcome == second.outcome
        assert first.image == second.image
        assert first.image is not None

    def test_case_rebuilt_from_bundle_params_replays_identically(self):
        config = _quick_config(refs=("ondisk/journal.py:181",), ops=("commit",))
        engine = SweepEngine(config)
        case = engine.build_cases(engine.load_pairs())[0]
        original = engine.run_case(case)
        rebuilt = SweepEngine.case_from_params(case.params())
        assert rebuilt == case
        replay = SweepEngine(config).run_case(rebuilt)
        assert replay.outcome == original.outcome
        assert replay.image == original.image

    def test_different_seed_changes_sub_seeds(self):
        pairs = SweepEngine(_quick_config()).load_pairs()
        a = SweepEngine(_quick_config(seed=1)).build_cases(pairs)
        b = SweepEngine(_quick_config(seed=2)).build_cases(pairs)
        assert any(
            x.workload_seed != y.workload_seed or x.injector_seed != y.injector_seed
            for x, y in zip(a, b)
        )


class TestSanctions:
    def test_wildcard_lookup(self):
        assert sanction_for("commit", "blockdev/blkmq.py:222", "fail-stop")
        assert sanction_for("commit", "blockdev/blkmq.py:222", "power-loss")
        assert sanction_for("commit", "ondisk/journal.py:181", "fail-stop") is None

    def test_stale_sanction_detected(self):
        outcomes = {("commit", "blockdev/blkmq.py:222", "fail-stop"): "recovered-clean"}
        stale = validate_sanctions(outcomes, "recovered-clean")
        assert ("commit", "blockdev/blkmq.py:222", "*") in stale

    def test_unswept_sanction_is_not_stale(self):
        stale = validate_sanctions({("mkfs", "ondisk/mkfs.py:60", "fail-stop"): "recovered-clean"}, "recovered-clean")
        assert stale == []

    def test_live_sanction_is_not_stale(self):
        outcomes = {
            ("commit", "blockdev/blkmq.py:222", "fail-stop"): "unreached",
            ("commit", "blockdev/blkmq.py:222", "power-loss"): "recovered-clean",
        }
        assert ("commit", "blockdev/blkmq.py:222", "*") not in validate_sanctions(
            outcomes, "recovered-clean"
        )

    def test_every_sanction_has_an_argument(self):
        for key, why in SWEEP_SANCTIONS.items():
            assert len(why) > 40, f"sanction {key} needs a real argument"


class TestFullSweepAcceptance:
    """The ISSUE acceptance gate: the full sweep executes every (op,
    point) pair of the committed catalog with zero unsanctioned
    non-clean outcomes and no stale sanctions."""

    def test_full_sweep_is_clean(self):
        engine = SweepEngine(SweepConfig(
            surface_path=str(SURFACE),
            src_root=str(SRC_ROOT),
            check_drift=False,  # the drift gate has its own test + CI job
            minimize=False,     # nothing to minimize when the sweep is clean
        ))
        pairs = engine.load_pairs()
        assert len(pairs) >= 50
        report = engine.run(engine.build_cases(pairs))

        swept_pairs = {(op, ref) for op, ref, _ in report.pair_outcomes}
        assert swept_pairs == {(p.op, p.ref) for p in pairs}

        assert report.unsanctioned == []
        assert report.stale_sanctions == []
        counts = report.outcome_counts()
        # The healthy tree recovers clean everywhere it can crash; the
        # only non-clean outcomes are the argued unreachable sites.
        assert counts.get("recovered-clean", 0) >= 90
        assert set(counts) <= {"recovered-clean", "unreached"}
        for key, outcome in report.pair_outcomes.items():
            if outcome != "recovered-clean":
                assert sanction_for(*key), f"unsanctioned {key}: {outcome}"
