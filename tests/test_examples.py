"""Smoke-run every example script: the documentation must not rot.

Each example runs in a subprocess (they print a lot and one of them
forks); the assertions check the headline lines of their output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "survived a kernel BUG; recoveries so far: 1" in out
    assert "fsck after unmount: clean" in out


def test_crafted_image_attack():
    out = run_example("crafted_image_attack.py")
    assert "CLEAN" in out
    assert "KERNEL BUG" in out
    assert "RAE: /share listed fine" in out
    assert "image still clean after the whole episode: True" in out


def test_webserver_survival():
    out = run_example("webserver_survival.py")
    assert "--- without RAE ---" in out and "--- with RAE ---" in out
    assert "availability       : 100.0%" in out
    assert "0 mismatches" in out
    assert "fsck               : clean" in out


def test_post_error_testing():
    out = run_example("post_error_testing.py")
    assert "per-op discrepancies : 0" in out  # the healthy campaign
    assert "DISCREPANCY" in out  # the buggy one


def test_process_isolation():
    out = run_example("process_isolation.py")
    assert out.count("recovered: 1 recovery") == 2
    assert "parent survived" in out
