"""Tests for the replay engine: constrained/autonomous modes,
cross-checking, fd registry install, fsync skipping."""

import pytest

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.vfs import FdState
from repro.core.oplog import OpLog
from repro.errors import CrossCheckMismatch, Errno, RecoveryFailure
from repro.ondisk.image import clone_to_memory
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.replay import ReplayEngine
from tests.conftest import formatted_device


def record_on_base(operations, device=None):
    """Run ops on a fresh base over ``device`` (kept un-committed so the
    image stays at S0), recording into an OpLog."""
    device = device if device is not None else formatted_device()
    image_s0 = clone_to_memory(device)
    base = BaseFilesystem(device)
    log = OpLog()
    log.fd_snapshot = {}
    for index, operation in enumerate(operations):
        outcome = operation.apply(base, opseq=index + 1)
        if operation.is_mutation:
            log.record(index + 1, operation, outcome)
    return base, log, image_s0


def test_constrained_replay_reproduces_everything():
    ops = [
        op("mkdir", path="/a"),
        op("open", path="/a/f", flags=int(OpenFlags.CREAT)),
        op("write", fd=3, data=b"hello world" * 50),
        op("lseek", fd=3, offset=0, whence=0),
        op("read", fd=3, length=11),
        op("symlink", target="/a", path="/s"),
        op("close", fd=3),
        op("rename", src="/a/f", dst="/a/g"),
    ]
    base, log, image_s0 = record_on_base(ops)
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow, strict=True)
    update = engine.run(log.entries, {}, None)
    assert engine.report.clean
    assert engine.report.constrained_ops == len(log.entries)
    assert shadow.readdir("/a") == ["g"]
    # Constrained allocation: the shadow holds the base's inode numbers.
    assert shadow.stat("/a").ino == base.stat("/a").ino
    assert shadow.stat("/a/g").ino == base.stat("/a/g").ino
    # fd table matches (fd 3 was closed).
    assert update.fd_table == {}


def test_open_fds_survive_into_update():
    ops = [op("open", path="/f", flags=int(OpenFlags.CREAT)), op("write", fd=3, data=b"x" * 10)]
    base, log, image_s0 = record_on_base(ops)
    shadow = ShadowFilesystem(image_s0)
    update = ReplayEngine(shadow).run(log.entries, {}, None)
    assert 3 in update.fd_table
    assert update.fd_table[3].offset == 10


def test_error_outcomes_are_skipped():
    ops = [op("mkdir", path="/a"), op("mkdir", path="/a"), op("rmdir", path="/missing")]
    base, log, image_s0 = record_on_base(ops)
    assert log.entries[1].outcome.errno == Errno.EEXIST
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow)
    engine.run(log.entries, {}, None)
    assert engine.report.skipped_errors == 2
    assert engine.report.constrained_ops == 1


def test_fsync_records_skipped():
    ops = [op("open", path="/f", flags=int(OpenFlags.CREAT))]
    base, log, image_s0 = record_on_base(ops)
    log.record(99, op("fsync", fd=3), __import__("repro.api", fromlist=["OpResult"]).OpResult())
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow)
    engine.run(log.entries, {}, None)
    assert engine.report.skipped_fsyncs == 1


def test_autonomous_mode_executes_inflight():
    ops = [op("mkdir", path="/a")]
    base, log, image_s0 = record_on_base(ops)
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow)
    update = engine.run(log.entries, {}, inflight=(2, op("mkdir", path="/a/b")))
    assert engine.report.autonomous_ops == 1
    assert update.inflight_result is not None and update.inflight_result.ok
    assert shadow.readdir("/a") == ["b"]


def test_autonomous_inflight_fsync_is_delegated():
    ops = [op("open", path="/f", flags=int(OpenFlags.CREAT))]
    base, log, image_s0 = record_on_base(ops)
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow)
    update = engine.run(log.entries, {}, inflight=(2, op("fsync", fd=3)))
    assert update.inflight_result.value == "fsync-delegated"


def test_autonomous_legitimate_error_reported():
    base, log, image_s0 = record_on_base([])
    shadow = ShadowFilesystem(image_s0)
    update = ReplayEngine(shadow).run([], {}, inflight=(1, op("rmdir", path="/nope")))
    assert update.inflight_result.errno == Errno.ENOENT


def test_unusable_recorded_ino_aborts_recovery():
    ops = [op("mkdir", path="/a")]
    base, log, image_s0 = record_on_base(ops)
    log.entries[0].outcome.ino = 2  # the root inode: not usable
    shadow = ShadowFilesystem(image_s0)
    with pytest.raises(RecoveryFailure):
        ReplayEngine(shadow, strict=True).run(log.entries, {}, None)


def test_strict_crosscheck_raises_on_tampered_value():
    ops = [op("open", path="/f", flags=int(OpenFlags.CREAT)), op("write", fd=3, data=b"abc")]
    base, log, image_s0 = record_on_base(ops)
    log.entries[1].outcome.value = 2  # claim a short write
    shadow = ShadowFilesystem(image_s0)
    with pytest.raises(CrossCheckMismatch):
        ReplayEngine(shadow, strict=True).run(log.entries, {}, None)


def test_permissive_crosscheck_reports_and_continues():
    ops = [op("mkdir", path="/a"), op("mkdir", path="/b")]
    base, log, image_s0 = record_on_base(ops)
    log.entries[0].op.args["path"] = "/a2"  # replay diverges from record
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow, strict=False)
    engine.run(log.entries, {}, None)
    # '/a2' was created; its recorded outcome (for '/a') still matches in
    # value terms, so force a real mismatch instead: falsified read.
    assert shadow.readdir("/") == ["a2", "b"]


def test_permissive_mismatch_collected():
    ops = [op("open", path="/f", flags=int(OpenFlags.CREAT)), op("write", fd=3, data=b"abc")]
    base, log, image_s0 = record_on_base(ops)
    log.entries[1].outcome.value = 2  # claim a short write
    shadow = ShadowFilesystem(image_s0)
    engine = ReplayEngine(shadow, strict=False)
    engine.run(log.entries, {}, None)
    assert len(engine.report.discrepancies) == 1
    assert "write" in engine.report.discrepancies[0].op


def test_fd_registry_installed_before_replay():
    # Window: a write through a descriptor opened before the window.
    device = formatted_device()
    base = BaseFilesystem(device)
    fd = base.open("/f", OpenFlags.CREAT, opseq=1)
    base.write(fd, b"committed", opseq=2)
    base.commit()  # durability point: fd registry snapshot would be taken
    registry = base.fd_table.snapshot()
    image = clone_to_memory(device)

    window = [op("write", fd=fd, data=b"-tail")]
    log_entries = []
    for index, operation in enumerate(window):
        outcome = operation.apply(base, opseq=10 + index)
        from repro.core.oplog import OpRecord

        log_entries.append(OpRecord(seq=10 + index, op=operation, outcome=outcome))

    shadow = ShadowFilesystem(image)
    engine = ReplayEngine(shadow)
    update = engine.run(log_entries, registry, None)
    assert engine.report.clean
    # The shadow wrote at the registry offset, not at zero.
    shadow2 = ShadowFilesystem(image)
    assert update.fd_table[fd].offset == len(b"committed") + len(b"-tail")
