"""Injector edge cases the sweep leans on: disarm mid-run, overlapping
armed points on one hook, the non-raising WARN policy, and fire-count
accounting."""

import pytest

from repro.basefs.hooks import HookPoints
from repro.errors import KernelBug, KernelWarning
from repro.faults.catalog import BugSpec, Consequence, Determinism
from repro.faults.injector import Injector


def _spec(bug_id, consequence=Consequence.CRASH, hook="blkmq.submit", **kwargs):
    defaults = dict(
        title=f"test bug {bug_id}",
        determinism=Determinism.DETERMINISTIC,
        trigger=lambda ctx: True,
    )
    defaults.update(kwargs)
    return BugSpec(bug_id=bug_id, hook=hook, consequence=consequence, **defaults)


class TestDisarmMidSweep:
    def test_disarm_stops_firing_but_stays_registered(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        injector.arm(_spec("d1"))
        with pytest.raises(KernelBug):
            hooks.fire("blkmq.submit", op="write", block=1)
        assert injector.stats.total_fires == 1

        injector.disarm("d1")
        hooks.fire("blkmq.submit", op="write", block=2)  # no raise
        assert injector.stats.total_fires == 1
        assert injector.armed["d1"].enabled is False

    def test_disarmed_bug_stops_counting_invocations(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        armed = injector.arm(_spec("d2", consequence=Consequence.NOCRASH,
                                   payload=lambda fs, ctx: None))
        hooks.fire("blkmq.submit", op="write", block=1)
        injector.disarm("d2")
        hooks.fire("blkmq.submit", op="write", block=2)
        assert armed.invocations == 1

    def test_disarm_unknown_bug_raises(self):
        injector = Injector(HookPoints())
        with pytest.raises(KeyError):
            injector.disarm("never-armed")


class TestArmAllOverlapping:
    def test_two_bugs_on_same_hook_both_fire(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        ran = []
        armed = injector.arm_all([
            _spec("p1", consequence=Consequence.NOCRASH,
                  payload=lambda fs, ctx: ran.append("p1")),
            _spec("p2", consequence=Consequence.NOCRASH,
                  payload=lambda fs, ctx: ran.append("p2")),
        ])
        hooks.fire("blkmq.submit", op="write", block=1)
        assert ran == ["p1", "p2"]  # registration order
        assert [bug.fires for bug in armed] == [1, 1]
        assert injector.stats.total_fires == 2

    def test_earlier_crash_preempts_later_bug_on_same_hook(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        ran = []
        injector.arm_all([
            _spec("crash-first"),
            _spec("shadowed", consequence=Consequence.NOCRASH,
                  payload=lambda fs, ctx: ran.append("shadowed")),
        ])
        with pytest.raises(KernelBug):
            hooks.fire("blkmq.submit", op="write", block=1)
        # The raise unwound before the second handler — exactly how a
        # real BUG() would preempt later instrumentation on the path.
        assert ran == []
        assert injector.stats.fires_by_bug == {"crash-first": 1}

    def test_duplicate_bug_id_rejected(self):
        injector = Injector(HookPoints())
        injector.arm(_spec("dup"))
        with pytest.raises(ValueError, match="already armed"):
            injector.arm(_spec("dup"))

    def test_overlapping_triggers_select_disjoint_contexts(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        injector.arm_all([
            _spec("on-write", consequence=Consequence.NOCRASH,
                  trigger=lambda ctx: ctx.get("op") == "write",
                  payload=lambda fs, ctx: None),
            _spec("on-read", consequence=Consequence.NOCRASH,
                  trigger=lambda ctx: ctx.get("op") == "read",
                  payload=lambda fs, ctx: None),
        ])
        hooks.fire("blkmq.submit", op="write", block=1)
        hooks.fire("blkmq.submit", op="write", block=2)
        hooks.fire("blkmq.submit", op="read", block=3)
        assert injector.stats.fires_by_bug == {"on-write": 2, "on-read": 1}


class TestWarnPolicy:
    def test_warn_raises_by_default(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        injector.arm(_spec("w1", consequence=Consequence.WARN))
        with pytest.raises(KernelWarning):
            hooks.fire("blkmq.submit", op="write", block=1)

    def test_warn_raises_false_counts_silently(self):
        hooks = HookPoints()
        injector = Injector(hooks, warn_raises=False)
        armed = injector.arm(_spec("w2", consequence=Consequence.WARN))
        hooks.fire("blkmq.submit", op="write", block=1)
        hooks.fire("blkmq.submit", op="write", block=2)
        assert armed.warn_logs == 2
        # A logged-and-run-past WARN is still a fire for the stats.
        assert injector.stats.fires_by_bug == {"w2": 2}


class TestFireAccounting:
    def test_total_fires_sums_across_bugs(self):
        hooks = HookPoints()
        injector = Injector(hooks, warn_raises=False)
        injector.arm_all([
            _spec("a", consequence=Consequence.WARN),
            _spec("b", consequence=Consequence.NOCRASH, payload=lambda fs, ctx: None),
        ])
        for block in range(3):
            hooks.fire("blkmq.submit", op="write", block=block)
        assert injector.stats.fires_by_bug == {"a": 3, "b": 3}
        assert injector.stats.total_fires == 6

    def test_max_fires_caps_each_bug_independently(self):
        hooks = HookPoints()
        injector = Injector(hooks, warn_raises=False)
        capped = injector.arm(_spec("capped", consequence=Consequence.WARN, max_fires=1))
        uncapped = injector.arm(_spec("uncapped", consequence=Consequence.NOCRASH,
                                      payload=lambda fs, ctx: None))
        for block in range(4):
            hooks.fire("blkmq.submit", op="write", block=block)
        assert capped.fires == 1
        assert uncapped.fires == 4
        assert capped.invocations == 4  # still sees every hook crossing

    def test_untriggered_invocations_do_not_fire(self):
        hooks = HookPoints()
        injector = Injector(hooks)
        armed = injector.arm(_spec("picky", trigger=lambda ctx: ctx.get("block") == 99))
        hooks.fire("blkmq.submit", op="write", block=1)
        assert armed.invocations == 1
        assert armed.fires == 0
        assert injector.stats.total_fires == 0
