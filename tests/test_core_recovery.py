"""Tests for contained reboot, hand-off, and the recovery coordinator."""

import pytest

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.core.oplog import OpLog
from repro.core.reboot import contained_reboot
from repro.core.recovery import run_recovery
from repro.errors import FsError, KernelBug, RecoveryFailure
from repro.fsck import Fsck
from repro.ondisk.inode import FileType
from tests.conftest import formatted_device


class TestContainedReboot:
    def test_reboot_discards_uncommitted_state(self, device, seq):
        fs = BaseFilesystem(device)
        fs.mkdir("/committed", opseq=seq())
        fs.commit()
        fs.mkdir("/volatile", opseq=seq())
        result = contained_reboot(fs, device)
        new_fs = result.fs
        assert new_fs.stat("/committed").ftype == FileType.DIRECTORY
        with pytest.raises(FsError):
            new_fs.stat("/volatile")

    def test_old_instance_is_fenced(self, device, seq):
        fs = BaseFilesystem(device)
        result = contained_reboot(fs, device)
        from repro.errors import InvariantViolation

        with pytest.raises(InvariantViolation):
            fs.mkdir("/nope", opseq=seq())
        result.fs.mkdir("/yes", opseq=seq())

    def test_pages_preserved_as_clean(self, device, seq):
        fs = BaseFilesystem(device)
        fd = fs.open("/f", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"x" * 5000, opseq=seq())
        result = contained_reboot(fs, device)
        assert result.preserved_pages
        assert all(not page.dirty for page in result.preserved_pages.values())

    def test_hooks_survive(self, device, hooks, seq):
        fired = []
        hooks.register("mount", lambda point, ctx: fired.append(1))
        fs = BaseFilesystem(device, hooks=hooks)
        result = contained_reboot(fs, device)
        assert result.fs.hooks is hooks
        assert len(fired) == 2  # original mount + reboot mount

    def test_journal_replayed_on_reboot(self, seq):
        device = formatted_device(track_durability=True)
        device.flush()
        fs = BaseFilesystem(device)
        fs.mkdir("/durable", opseq=seq())
        fs.commit()
        device.crash()
        fs2 = BaseFilesystem(device)  # crash-remount replays
        # replayed_txns can be 0 if home writes beat the crash; the state
        # is what matters:
        assert fs2.stat("/durable").ftype == FileType.DIRECTORY


class TestRunRecovery:
    def build_window(self, device, seq):
        """A base with an uncommitted window and a populated oplog."""
        fs = BaseFilesystem(device)
        log = OpLog()
        operations = [
            op("mkdir", path="/w"),
            op("open", path="/w/f", flags=int(OpenFlags.CREAT)),
            op("write", fd=3, data=b"window data" * 100),
        ]
        for operation in operations:
            s = seq()
            outcome = operation.apply(fs, opseq=s)
            log.record(s, operation, outcome)
        return fs, log

    def test_recovery_reconstructs_window(self, device, seq):
        fs, log = self.build_window(device, seq)
        outcome = run_recovery(fs, device, log, inflight=None)
        new_fs = outcome.fs
        assert new_fs.stat("/w/f").size == len(b"window data") * 100
        assert 3 in new_fs.fd_table.open_fds()
        assert outcome.report.clean
        assert outcome.total_seconds > 0

    def test_recovery_completes_inflight(self, device, seq):
        fs, log = self.build_window(device, seq)
        outcome = run_recovery(fs, device, log, inflight=(seq(), op("mkdir", path="/w/sub")))
        assert outcome.update.inflight_result.ok
        assert outcome.fs.stat("/w/sub").ftype == FileType.DIRECTORY

    def test_recovered_state_commits_clean(self, device, seq):
        fs, log = self.build_window(device, seq)
        outcome = run_recovery(fs, device, log, inflight=None)
        outcome.fs.commit()
        outcome.fs.unmount()
        assert Fsck(device).run().clean

    def test_tampered_log_fails_recovery(self, device, seq):
        fs, log = self.build_window(device, seq)
        log.entries[2].outcome.value = 1  # falsified write length
        with pytest.raises(RecoveryFailure):
            run_recovery(fs, device, log, inflight=None)

    def test_process_mode_requires_file_device(self, device, seq):
        fs, log = self.build_window(device, seq)
        with pytest.raises(RecoveryFailure, match="file-backed"):
            run_recovery(fs, device, log, inflight=None, in_process=False)

    def test_process_mode_with_file_device(self, tmp_path, seq):
        from repro.blockdev.device import FileBlockDevice
        from repro.ondisk.mkfs import mkfs as run_mkfs

        device = FileBlockDevice(tmp_path / "img", block_count=4096)
        run_mkfs(device)
        fs, log = self.build_window(device, seq)
        outcome = run_recovery(fs, device, log, inflight=(seq(), op("mkdir", path="/w/sub")), in_process=False)
        assert outcome.update.inflight_result.ok
        assert outcome.fs.stat("/w/sub").ftype == FileType.DIRECTORY
        device.close()
