"""Tests for the shadow filesystem: never-write discipline, overlay,
checks, allocation hints, and POSIX behaviour parity spot checks."""

import pytest

from repro.api import OpenFlags
from repro.basefs.vfs import FdState
from repro.blockdev.device import MemoryBlockDevice
from repro.blockdev.faults import DeviceFaultPlan, FaultyBlockDevice
from repro.errors import DeviceError, Errno, FsError, InvariantViolation
from repro.ondisk.image import read_inode, write_inode
from repro.ondisk.inode import FileType
from repro.ondisk.layout import BLOCK_SIZE, ROOT_INO
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem


class TestNeverWrites:
    def test_device_untouched_by_mutations(self, device, seq):
        image_before = device.snapshot()
        shadow = ShadowFilesystem(device)
        shadow.mkdir("/a", opseq=seq())
        fd = shadow.open("/a/f", OpenFlags.CREAT, opseq=seq())
        shadow.write(fd, b"virtual" * 100, opseq=seq())
        shadow.close(fd, opseq=seq())
        shadow.unlink("/a/f", opseq=seq())
        assert device.snapshot() == image_before

    def test_overlay_accumulates_mutations(self, shadow, seq):
        shadow.mkdir("/a", opseq=seq())
        assert shadow.overlay.blocks  # sb, bitmaps, itable, dir blocks
        roles = set(shadow.overlay.roles.values())
        assert {"sb", "bitmap", "itable", "dir"} <= roles

    def test_reads_see_overlay(self, shadow, seq):
        shadow.mkdir("/a", opseq=seq())
        assert shadow.readdir("/") == ["a"]
        assert shadow.stat("/a").ftype == FileType.DIRECTORY

    def test_data_pages_tracked(self, shadow, seq):
        fd = shadow.open("/f", OpenFlags.CREAT, opseq=seq())
        shadow.write(fd, b"d" * (2 * BLOCK_SIZE), opseq=seq())
        shadow.close(fd, opseq=seq())
        ino = shadow.stat("/f").ino
        assert (ino, 0) in shadow.overlay.data_pages
        assert (ino, 1) in shadow.overlay.data_pages
        data = shadow.overlay.data_blocks()
        assert data[(ino, 0)] == b"d" * BLOCK_SIZE

    def test_fsync_unsupported(self, shadow, seq):
        fd = shadow.open("/f", OpenFlags.CREAT, opseq=seq())
        with pytest.raises(FsError) as e:
            shadow.fsync(fd, opseq=seq())
        assert e.value.errno == Errno.EINVAL


class TestChecks:
    def test_mount_validates_superblock_counts(self, device):
        # Corrupt the free count: FULL checks refuse the image.
        from repro.ondisk.superblock import Superblock

        sb = Superblock.unpack(device.read_block(0))
        sb.free_blocks += 5
        device.write_block(0, sb.pack())
        with pytest.raises(InvariantViolation):
            ShadowFilesystem(device, check_level=CheckLevel.FULL)
        # BASIC tolerates count skew (structure is still fine).
        ShadowFilesystem(device, check_level=CheckLevel.BASIC)

    def test_corrupt_inode_checksum_detected_on_iget(self, device, seq):
        shadow = ShadowFilesystem(device, check_level=CheckLevel.OFF)
        # Corrupt the root inode's raw bytes directly on the device.
        from repro.ondisk.layout import DiskLayout

        layout = DiskLayout(block_count=device.block_count)
        block, offset = layout.inode_location(ROOT_INO)
        raw = bytearray(device.read_block(block))
        raw[offset + 8] ^= 0x01
        device.write_block(block, bytes(raw))
        with pytest.raises(ValueError, match="checksum"):
            shadow.stat("/")

    def test_referenced_free_block_detected(self, device, seq):
        # Point the root directory at a block the bitmap says is free.
        from repro.ondisk.layout import DiskLayout

        layout = DiskLayout(block_count=device.block_count)
        root = read_inode(device, layout, ROOT_INO)
        root.direct[0] = layout.data_start(1) + 7  # free block in group 1
        write_inode(device, layout, ROOT_INO, root)
        shadow = ShadowFilesystem(device, check_level=CheckLevel.FULL)
        with pytest.raises(InvariantViolation, match="free in the block bitmap"):
            shadow.readdir("/")

    def test_check_level_off_skips(self, device):
        shadow = ShadowFilesystem(device, check_level=CheckLevel.OFF)
        shadow.readdir("/")
        assert shadow.checks.stats.checks_run == 0

    def test_full_checks_run_and_count(self, shadow, seq):
        shadow.mkdir("/a", opseq=seq())
        shadow.readdir("/a")
        assert shadow.checks.stats.checks_run > 10

    def test_input_validation(self, shadow, seq):
        with pytest.raises(InvariantViolation):
            shadow.mkdir(12345, opseq=seq())  # type: ignore[arg-type]


class TestConstrainedAllocation:
    def test_ino_hint_honoured(self, shadow, seq):
        shadow.ino_hint = 50
        shadow.mkdir("/pinned", opseq=seq())
        assert shadow.stat("/pinned").ino == 50

    def test_ino_hint_must_be_free(self, shadow, seq):
        shadow.ino_hint = ROOT_INO
        with pytest.raises(InvariantViolation, match="not free"):
            shadow.mkdir("/bad", opseq=seq())

    def test_hint_cleared_after_use(self, shadow, seq):
        shadow.ino_hint = 50
        shadow.mkdir("/a", opseq=seq())
        shadow.mkdir("/b", opseq=seq())
        assert shadow.stat("/b").ino != 50
        assert shadow.ino_hint is None

    def test_first_fit_allocation_order(self, shadow, seq):
        shadow.mkdir("/a", opseq=seq())
        shadow.mkdir("/b", opseq=seq())
        assert shadow.stat("/a").ino == 3
        assert shadow.stat("/b").ino == 4


class TestFdInstall:
    def test_install_and_use(self, device, shadow, seq):
        # Build a file first via the shadow itself.
        fd = shadow.open("/f", OpenFlags.CREAT, opseq=seq())
        shadow.write(fd, b"0123456789", opseq=seq())
        shadow.close(fd, opseq=seq())
        ino = shadow.stat("/f").ino
        shadow.install_fd(FdState(fd=7, ino=ino, flags=OpenFlags.NONE, offset=4))
        assert shadow.read(7, 3, opseq=seq()) == b"456"

    def test_install_rejects_directory(self, shadow):
        with pytest.raises(InvariantViolation):
            shadow.install_fd(FdState(fd=7, ino=ROOT_INO, flags=OpenFlags.NONE))

    def test_install_rejects_low_fd(self, shadow):
        with pytest.raises(InvariantViolation):
            shadow.install_fd(FdState(fd=1, ino=ROOT_INO, flags=OpenFlags.NONE))


class TestTransientFaultRetry:
    def test_reads_retry_transient_errors(self, seq):
        inner = MemoryBlockDevice(block_count=4096)
        mkfs(inner)
        # Root dir block fails twice then succeeds: the shadow retries.
        from repro.ondisk.layout import DiskLayout

        layout = DiskLayout(block_count=4096)
        faulty = FaultyBlockDevice(inner, DeviceFaultPlan().add_read_error(layout.data_start(0), times=2))
        shadow = ShadowFilesystem(faulty)
        assert shadow.readdir("/") == []

    def test_persistent_errors_propagate(self, seq):
        inner = MemoryBlockDevice(block_count=4096)
        mkfs(inner)
        from repro.ondisk.layout import DiskLayout

        layout = DiskLayout(block_count=4096)
        faulty = FaultyBlockDevice(inner, DeviceFaultPlan().add_read_error(layout.data_start(0), times=50))
        shadow = ShadowFilesystem(faulty)
        with pytest.raises(DeviceError):
            shadow.readdir("/")


class TestDirtyImageMount:
    def test_journal_absorbed_virtually(self, seq):
        from repro.basefs.filesystem import BaseFilesystem
        from tests.conftest import formatted_device

        device = formatted_device(track_durability=True)
        device.flush()
        fs = BaseFilesystem(device)
        fs.mkdir("/committed", opseq=seq())
        fs.commit()
        device.crash()  # dirty image with a committed journal txn
        image_before = device.snapshot()
        shadow = ShadowFilesystem(device)
        assert shadow.readdir("/") == ["committed"]
        assert device.snapshot() == image_before  # replay was virtual
