"""Tests for repro.ondisk.inode."""

import pytest

from repro.ondisk.inode import (
    FileType,
    MAX_FILE_SIZE,
    N_DIRECT,
    OnDiskInode,
    PTRS_PER_BLOCK,
    make_mode,
)
from repro.ondisk.layout import BLOCK_SIZE, INODE_SIZE


def test_make_mode_and_type_accessors():
    inode = OnDiskInode(mode=make_mode(FileType.DIRECTORY, 0o750))
    assert inode.is_dir and not inode.is_regular and not inode.is_symlink
    assert inode.perms == 0o750
    assert inode.ftype == FileType.DIRECTORY


def test_pack_unpack_roundtrip():
    inode = OnDiskInode(
        mode=make_mode(FileType.REGULAR, 0o644),
        uid=1000,
        gid=1000,
        nlink=2,
        size=123456,
        atime=1,
        mtime=2,
        ctime=3,
        generation=9,
    )
    inode.direct[0] = 77
    inode.direct[11] = 88
    inode.indirect = 99
    inode.double_indirect = 100
    restored = OnDiskInode.unpack(inode.pack())
    assert restored == inode
    assert len(inode.pack()) == INODE_SIZE


def test_zero_slot_is_free():
    inode = OnDiskInode.unpack(b"\x00" * INODE_SIZE)
    assert inode.is_free
    assert inode.ftype == FileType.NONE


def test_checksum_detects_corruption():
    raw = bytearray(OnDiskInode(mode=make_mode(FileType.REGULAR), nlink=1).pack())
    raw[8] ^= 0x40
    with pytest.raises(ValueError, match="checksum"):
        OnDiskInode.unpack(bytes(raw))
    OnDiskInode.unpack(bytes(raw), verify=False)  # tolerated when asked


def test_block_count_rounding():
    inode = OnDiskInode(size=1)
    assert inode.block_count() == 1
    inode.size = BLOCK_SIZE
    assert inode.block_count() == 1
    inode.size = BLOCK_SIZE + 1
    assert inode.block_count() == 2
    inode.size = 0
    assert inode.block_count() == 0


def test_max_file_size_formula():
    assert MAX_FILE_SIZE == (N_DIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK**2) * BLOCK_SIZE


def test_copy_is_deep_for_direct():
    inode = OnDiskInode()
    clone = inode.copy()
    clone.direct[0] = 5
    assert inode.direct[0] == 0


def test_direct_and_indirect_roots():
    inode = OnDiskInode()
    inode.direct[3] = 10
    inode.indirect = 20
    assert inode.direct_and_indirect_roots() == [10, 20]
    inode.double_indirect = 30
    assert 30 in inode.direct_and_indirect_roots()


def test_pack_rejects_wrong_pointer_count():
    inode = OnDiskInode()
    inode.direct = [0] * 5
    with pytest.raises(ValueError):
        inode.pack()


def test_invalid_type_bits_map_to_none():
    inode = OnDiskInode(mode=(9 << 12))
    assert inode.ftype == FileType.NONE
