"""Delta-minimization: ddmin unit behaviour plus the acceptance shrink —
a seeded failing workload sequence reduced to a handful of ops."""

import pytest

from repro.sweep.minimize import _chunks, ddmin
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import fileserver_profile


class TestChunks:
    def test_even_split(self):
        assert _chunks([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_uneven_split_front_loads_remainder(self):
        assert _chunks([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_chunks_than_items_drops_empties(self):
        assert _chunks([1, 2], 5) == [[1], [2]]

    def test_round_trip(self):
        items = list(range(17))
        for n in range(1, 20):
            assert [x for chunk in _chunks(items, n) for x in chunk] == items


class TestDdmin:
    def test_single_culprit(self):
        minimized, _ = ddmin(list(range(64)), lambda s: 37 in s)
        assert minimized == [37]

    def test_pair_of_culprits(self):
        minimized, _ = ddmin(list(range(64)), lambda s: 3 in s and 49 in s)
        assert sorted(minimized) == [3, 49]

    def test_preserves_order(self):
        minimized, _ = ddmin(list(range(40)), lambda s: 7 in s and 31 in s)
        assert minimized == [7, 31]

    def test_everything_needed_returns_everything(self):
        items = [1, 2, 3, 4]
        minimized, _ = ddmin(items, lambda s: s == items)
        assert minimized == items

    def test_max_tests_returns_best_so_far(self):
        calls = []

        def predicate(subset):
            calls.append(len(subset))
            return 5 in subset

        minimized, tests = ddmin(list(range(128)), predicate, max_tests=3)
        assert tests <= 3
        assert 5 in minimized  # still a valid reproducer, maybe not minimal

    def test_never_called_with_empty_list(self):
        seen = []

        def predicate(subset):
            seen.append(list(subset))
            return 0 in subset

        ddmin(list(range(16)), predicate)
        assert all(seen_subset for seen_subset in seen)

    def test_result_still_fails(self):
        def predicate(subset):
            return sum(subset) >= 30

        minimized, _ = ddmin(list(range(10)), predicate)
        assert predicate(minimized)


class TestSeededWorkloadShrink:
    """The ISSUE acceptance shape: a seeded failing op sequence from the
    real workload generator shrinks to <= 5 ops."""

    def test_seeded_sequence_shrinks_to_at_most_five_ops(self):
        ops = WorkloadGenerator(fileserver_profile(), seed=1234).ops(40)
        assert len(ops) >= 40  # prepopulation included

        # The "failure" depends on two specific mutations being present —
        # the classic shape of a crash-window double-apply interaction.
        mutations = [op for op in ops if op.is_mutation]
        assert len(mutations) >= 2
        culprit_a, culprit_b = mutations[1], mutations[-1]

        def still_fails(subset):
            return culprit_a in subset and culprit_b in subset

        minimized, tests = ddmin(ops, still_fails)
        assert still_fails(minimized)
        assert len(minimized) <= 5
        assert tests > 0

    def test_deterministic_given_seed(self):
        ops_a = WorkloadGenerator(fileserver_profile(), seed=77).ops(20)
        ops_b = WorkloadGenerator(fileserver_profile(), seed=77).ops(20)
        assert [op.describe() for op in ops_a] == [op.describe() for op in ops_b]
