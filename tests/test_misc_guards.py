"""Assorted guard-path coverage: dump_tree bounds, verifier divergence
plumbing, CLI error handling."""

import pytest

from repro.api import OpenFlags, op
from repro.errors import Errno, FsError
from repro.ondisk.image import dump_tree
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec.verifier import BoundedVerifier, Divergence, fresh_shadow
from repro.tools import main as tools_main
from tests.conftest import formatted_device


class TestDumpTreeGuards:
    def test_max_entries_guard(self, device):
        # Build 20 entries, then cap the walk below that.
        from repro.basefs.filesystem import BaseFilesystem

        fs = BaseFilesystem(device)
        for i in range(20):
            fs.mkdir(f"/d{i:02d}", opseq=i + 1)
        fs.unmount()
        with pytest.raises(ValueError, match="max_entries"):
            dump_tree(device, max_entries=5)

    def test_symlinks_listed_not_followed(self, device):
        from repro.basefs.filesystem import BaseFilesystem

        fs = BaseFilesystem(device)
        fs.mkdir("/d", opseq=1)
        fs.symlink("/d", "/s", opseq=2)
        fs.unmount()
        tree = dump_tree(device)
        assert "/s" in tree and "/d" in tree
        assert "/s/s" not in tree  # no recursion through the link


class TestVerifierPlumbing:
    def test_divergence_rendering(self):
        divergence = Divergence(prefix=["mkdir(path='/d')"], problem="spec vs shadow mismatch")
        text = str(divergence)
        assert "mkdir" in text and "mismatch" in text

    def test_broken_shadow_surfaces_in_bounded_run(self):
        def broken_factory():
            shadow = fresh_shadow()
            original = shadow.mkdir

            def flaky_mkdir(path, perms=0o755, opseq=0):
                raise FsError(Errno.EEXIST, path)

            shadow.mkdir = flaky_mkdir
            return shadow

        result = BoundedVerifier(max_depth=1, shadow_factory=broken_factory).run()
        assert not result.ok
        assert any("mkdir" in str(d) for d in result.divergences)
        # Diverging prefixes are not extended, so depth-1 count holds.
        assert result.sequences_checked == len(BoundedVerifier().alphabet)


class TestCliErrors:
    def test_cat_missing_file_is_clean_error(self, tmp_path, capsys):
        image = str(tmp_path / "e.img")
        tools_main(["mkfs", image, "--blocks", "4096"])
        code = tools_main(["cat", image, "/nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_ls_missing_dir_is_clean_error(self, tmp_path, capsys):
        image = str(tmp_path / "e.img")
        tools_main(["mkfs", image, "--blocks", "4096"])
        assert tools_main(["ls", image, "/missing"]) == 2


class TestShadowMiscGuards:
    def test_write_bytearray_accepted(self, shadow, seq):
        fd = shadow.open("/f", OpenFlags.CREAT, opseq=seq())
        assert shadow.write(fd, bytearray(b"abc"), opseq=seq()) == 3
        shadow.close(fd, opseq=seq())

    def test_empty_write_is_noop(self, shadow, seq):
        fd = shadow.open("/f", OpenFlags.CREAT, opseq=seq())
        mtime_before = shadow.stat("/f").mtime
        assert shadow.write(fd, b"", opseq=seq()) == 0
        assert shadow.stat("/f").mtime == mtime_before
        shadow.close(fd, opseq=seq())

    def test_read_zero_length(self, shadow, seq):
        fd = shadow.open("/f", OpenFlags.CREAT, opseq=seq())
        shadow.write(fd, b"xy", opseq=seq())
        shadow.lseek(fd, 0, 0, opseq=seq())
        assert shadow.read(fd, 0, opseq=seq()) == b""
        assert shadow.read(fd, 2, opseq=seq()) == b"xy"  # offset unmoved by 0-read
        shadow.close(fd, opseq=seq())
