"""Tests for repro.ondisk.mapping."""

import pytest

from repro.blockdev.device import MemoryBlockDevice
from repro.ondisk.inode import N_DIRECT, OnDiskInode, PTRS_PER_BLOCK
from repro.ondisk.layout import BLOCK_SIZE
from repro.ondisk.mapping import BlockMapReader, pack_pointers, unpack_pointers


@pytest.fixture
def device():
    return MemoryBlockDevice(block_count=4096)


def reader(device):
    return BlockMapReader(device.read_block)


def test_pointer_pack_roundtrip():
    pointers = [0] * PTRS_PER_BLOCK
    pointers[0], pointers[1023] = 42, 99
    assert unpack_pointers(pack_pointers(pointers)) == pointers


def test_pack_validates_length():
    with pytest.raises(ValueError):
        pack_pointers([1, 2, 3])
    with pytest.raises(ValueError):
        unpack_pointers(b"short")


def test_resolve_direct(device):
    inode = OnDiskInode()
    inode.direct[4] = 123
    assert reader(device).resolve(inode, 4) == 123
    assert reader(device).resolve(inode, 5) == 0  # hole


def test_resolve_single_indirect(device):
    inode = OnDiskInode()
    pointers = [0] * PTRS_PER_BLOCK
    pointers[7] = 555
    device.write_block(100, pack_pointers(pointers))
    inode.indirect = 100
    assert reader(device).resolve(inode, N_DIRECT + 7) == 555
    assert reader(device).resolve(inode, N_DIRECT + 8) == 0


def test_resolve_double_indirect(device):
    inode = OnDiskInode()
    inner = [0] * PTRS_PER_BLOCK
    inner[3] = 777
    device.write_block(200, pack_pointers(inner))
    outer = [0] * PTRS_PER_BLOCK
    outer[2] = 200
    device.write_block(201, pack_pointers(outer))
    inode.double_indirect = 201
    logical = N_DIRECT + PTRS_PER_BLOCK + 2 * PTRS_PER_BLOCK + 3
    assert reader(device).resolve(inode, logical) == 777


def test_resolve_missing_indirect_is_hole(device):
    inode = OnDiskInode()
    assert reader(device).resolve(inode, N_DIRECT) == 0
    assert reader(device).resolve(inode, N_DIRECT + PTRS_PER_BLOCK) == 0


def test_resolve_bounds(device):
    inode = OnDiskInode()
    with pytest.raises(ValueError):
        reader(device).resolve(inode, -1)
    with pytest.raises(ValueError):
        reader(device).resolve(inode, N_DIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK**2)


def test_iter_data_blocks_respects_size(device):
    inode = OnDiskInode(size=3 * BLOCK_SIZE)
    inode.direct[0], inode.direct[2] = 10, 30  # logical 1 is a hole
    assert list(reader(device).iter_data_blocks(inode)) == [(0, 10), (2, 30)]


def test_all_referenced_blocks_includes_pointer_blocks(device):
    inode = OnDiskInode()
    inode.direct[0] = 9
    pointers = [0] * PTRS_PER_BLOCK
    pointers[0] = 11
    device.write_block(10, pack_pointers(pointers))
    inode.indirect = 10
    assert sorted(reader(device).all_referenced_blocks(inode)) == [9, 10, 11]


def test_read_file_range_with_holes(device):
    inode = OnDiskInode(size=2 * BLOCK_SIZE + 100)
    device.write_block(50, b"A" * BLOCK_SIZE)
    inode.direct[0] = 50  # logical 1 hole, logical 2 mapped
    device.write_block(51, b"B" * BLOCK_SIZE)
    inode.direct[2] = 51
    r = reader(device)
    assert r.read_file_range(inode, 0, 4) == b"AAAA"
    assert r.read_file_range(inode, BLOCK_SIZE - 2, 4) == b"AA\x00\x00"
    assert r.read_file_range(inode, 2 * BLOCK_SIZE, 200) == b"B" * 100  # clamped at size
    assert r.read_file_range(inode, inode.size + 5, 10) == b""
    with pytest.raises(ValueError):
        r.read_file_range(inode, -1, 4)
