"""Tests for the rae-report CLI surface: the ``report`` command and the
``bundle``/``timeline`` subcommands, JSON output, exit codes on missing
or corrupt input, and the console-script dispatch."""

import json

import pytest

from repro.obs.check import main as check_main
from repro.tools import main as tools_main, rae_report_main


def _run_report(tmp_path, capsys, *extra):
    args = ["report", "--ops", "80", "--seed", "7", "--fault-every", "20", *extra]
    code = tools_main(args)
    return code, capsys.readouterr()


class TestReportCommand:
    def test_report_prints_summary_metrics_and_timeline(self, tmp_path, capsys):
        code, captured = _run_report(tmp_path, capsys)
        assert code == 0
        assert "RAE supervisor:" in captured.out
        assert "metrics snapshot" in captured.out
        assert "recovery timeline" in captured.out
        assert "forensic bundles:" in captured.out

    def test_report_histogram_lines_carry_percentiles(self, tmp_path, capsys):
        code, captured = _run_report(tmp_path, capsys)
        assert code == 0
        assert "p50=" in captured.out
        assert "p95=" in captured.out
        assert "p99=" in captured.out

    def test_report_json_export_includes_events(self, tmp_path, capsys):
        snap_path = tmp_path / "snap.json"
        code, _ = _run_report(tmp_path, capsys, "--json", str(snap_path))
        assert code == 0
        payload = json.loads(snap_path.read_text())
        assert payload["meta"]["ops"] == 80
        assert any(e["kind"] == "detect" for e in payload["snapshot"]["events"])

    def test_report_bundle_export(self, tmp_path, capsys):
        bundle_path = tmp_path / "bundle.json"
        code, captured = _run_report(tmp_path, capsys, "--bundle", str(bundle_path))
        assert code == 0
        assert "wrote forensic bundle" in captured.out
        bundle = json.loads(bundle_path.read_text())
        assert bundle["schema"] == 1
        assert bundle["outcome"] == "success"
        assert bundle["crosschecks"]["captured"] >= 1

    def test_report_bundle_without_recovery_fails(self, tmp_path, capsys):
        code = tools_main([
            "report", "--ops", "30", "--fault-every", "0",
            "--bundle", str(tmp_path / "none.json"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "no forensic bundle" in captured.err
        assert not (tmp_path / "none.json").exists()


class TestBundleCommand:
    @pytest.fixture
    def bundle_path(self, tmp_path, capsys):
        path = tmp_path / "bundle.json"
        assert _run_report(tmp_path, capsys, "--bundle", str(path))[0] == 0
        return path

    def test_pretty_print(self, bundle_path, capsys):
        assert tools_main(["bundle", str(bundle_path)]) == 0
        out = capsys.readouterr().out
        assert "forensic bundle: success recovery" in out
        assert "flight ring (frozen at detection" in out
        assert "cross-checks" in out

    def test_json_re_emit(self, bundle_path, capsys):
        assert tools_main(["bundle", str(bundle_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 1

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert tools_main(["bundle", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        assert tools_main(["bundle", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_shape_exits_2(self, tmp_path, capsys):
        not_bundle = tmp_path / "other.json"
        not_bundle.write_text('{"schema": 1}')
        assert tools_main(["bundle", str(not_bundle)]) == 2
        assert "not a forensic bundle" in capsys.readouterr().err


class TestTimelineCommand:
    @pytest.fixture
    def snap_path(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        assert _run_report(tmp_path, capsys, "--json", str(path))[0] == 0
        return path

    def test_renders_causal_merge(self, snap_path, capsys):
        assert tools_main(["timeline", str(snap_path)]) == 0
        out = capsys.readouterr().out
        assert "event detect" in out
        assert "span  recovery" in out
        # Chronological offsets from the first entry.
        assert out.startswith("[+0.000000s]")

    def test_accepts_raw_snapshot_payload(self, snap_path, tmp_path, capsys):
        raw = json.loads(snap_path.read_text())["snapshot"]
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps(raw))
        assert tools_main(["timeline", str(raw_path)]) == 0
        assert "event detect" in capsys.readouterr().out

    def test_footer_summarizes_span_durations(self, snap_path, capsys):
        assert tools_main(["timeline", str(snap_path)]) == 0
        footer = capsys.readouterr().out.strip().splitlines()[-1]
        assert footer.startswith("spans:")
        assert "closed" in footer
        for p in ("p50=", "p95=", "p99="):
            assert p in footer

    def test_json_output_is_sorted_by_ts(self, snap_path, capsys):
        assert tools_main(["timeline", str(snap_path), "--json"]) == 0
        merged = json.loads(capsys.readouterr().out)
        timestamps = [entry["ts"] for entry in merged]
        assert timestamps == sorted(timestamps)

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert tools_main(["timeline", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2")
        assert tools_main(["timeline", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_shape_exits_2(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text('{"meta": {}}')
        assert tools_main(["timeline", str(other)]) == 2
        assert "not a registry snapshot" in capsys.readouterr().err


class TestConsoleScriptDispatch:
    def test_bare_args_default_to_report(self, monkeypatch, capsys):
        monkeypatch.setattr(
            "sys.argv", ["rae-report", "--ops", "40", "--fault-every", "0"]
        )
        assert rae_report_main() == 0
        assert "RAE supervisor:" in capsys.readouterr().out

    def test_subcommand_names_dispatch(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{truncated")
        monkeypatch.setattr("sys.argv", ["rae-report", "bundle", str(bad)])
        assert rae_report_main() == 2
        monkeypatch.setattr("sys.argv", ["rae-report", "timeline", str(bad)])
        assert rae_report_main() == 2


class TestBenchObsSchemaGate:
    def test_missing_artifact_fails(self, tmp_path, capsys):
        assert check_main([str(tmp_path / "nope.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_corrupt_artifact_fails(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_obs.json"
        bad.write_text('{"schema": 1, "sections"')  # truncated write
        assert check_main([str(bad)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_schema_or_empty_sections_fail(self, tmp_path, capsys):
        target = tmp_path / "BENCH_obs.json"
        target.write_text(json.dumps({"schema": 99, "sections": {"a": {"snapshot": {}}}}))
        assert check_main([str(target)]) == 1
        target.write_text(json.dumps({"schema": 1, "sections": {}}))
        assert check_main([str(target)]) == 1
        target.write_text(json.dumps({"schema": 1, "sections": {"a": {}}}))
        assert check_main([str(target)]) == 1

    def test_valid_artifact_passes(self, tmp_path, capsys):
        from repro.obs import Registry, flush_bench_obs, record_section

        reg = Registry()
        record_section("bench_a", reg)
        target = flush_bench_obs(str(tmp_path / "BENCH_obs.json"))
        assert check_main([target]) == 0
        assert "ok (1 sections" in capsys.readouterr().out


class TestSchemaGateMultiArtifact:
    """The generalized gate: several artifacts, one invocation, each
    validated against its own schema (kind by filename, then content)."""

    def _valid_obs(self, tmp_path):
        from repro.obs import Registry, flush_bench_obs, record_section

        reg = Registry()
        record_section("bench_a", reg)
        return flush_bench_obs(str(tmp_path / "BENCH_obs.json"))

    def _valid_hotpath(self, tmp_path, name="BENCH_hotpath.json"):
        from tests.test_hotpath_bench import _valid_artifact

        path = tmp_path / name
        path.write_text(json.dumps(_valid_artifact()))
        return str(path)

    def test_both_kinds_in_one_invocation(self, tmp_path, capsys):
        obs = self._valid_obs(tmp_path)
        hotpath = self._valid_hotpath(tmp_path)
        assert check_main([obs, hotpath]) == 0
        out = capsys.readouterr().out
        assert "ok (1 sections" in out
        assert "ok (4 mixes" in out

    def test_any_failing_artifact_fails_the_whole_gate(self, tmp_path, capsys):
        obs = self._valid_obs(tmp_path)
        missing = str(tmp_path / "BENCH_hotpath.json")
        assert check_main([obs, missing]) == 1
        captured = capsys.readouterr()
        assert "ok (1 sections" in captured.out  # the good one still reports
        assert "cannot read" in captured.err

    def test_content_sniff_on_renamed_artifact(self, tmp_path, capsys):
        renamed = self._valid_hotpath(tmp_path, name="renamed-copy.json")
        assert check_main([renamed]) == 0
        assert "ok (4 mixes" in capsys.readouterr().out

    def test_unrecognized_artifact_fails(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text('{"schema": 1}')
        assert check_main([str(other)]) == 1
        assert "unrecognized artifact" in capsys.readouterr().err

    def test_hotpath_schema_violations_fail(self, tmp_path, capsys):
        from tests.test_hotpath_bench import _valid_artifact

        payload = _valid_artifact()
        del payload["meta"]["calibration_score"]
        payload["mixes"]["read_heavy"]["layers"].pop("device")
        bad = tmp_path / "BENCH_hotpath.json"
        bad.write_text(json.dumps(payload))
        assert check_main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "calibration_score" in err
        assert "layers must be exactly" in err


class TestHotpathCommand:
    @pytest.fixture
    def artifact_path(self, tmp_path):
        from tests.test_hotpath_bench import _valid_artifact

        path = tmp_path / "BENCH_hotpath.json"
        path.write_text(json.dumps(_valid_artifact()))
        return path

    def test_renders_layer_tables(self, artifact_path, capsys):
        assert tools_main(["hotpath", str(artifact_path)]) == 0
        out = capsys.readouterr().out
        assert "hot-path throughput" in out
        assert "per-layer self-time" in out
        assert "p99us" in out

    def test_json_re_emit(self, artifact_path, capsys):
        assert tools_main(["hotpath", str(artifact_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["mixes"]) >= {"read_heavy", "write_heavy"}

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert tools_main(["hotpath", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_wrong_shape_exits_2(self, tmp_path, capsys):
        other = tmp_path / "other.json"
        other.write_text('{"sections": {}}')
        assert tools_main(["hotpath", str(other)]) == 2
        assert "not a BENCH_hotpath artifact" in capsys.readouterr().err

    def test_console_script_dispatch(self, artifact_path, monkeypatch, capsys):
        monkeypatch.setattr("sys.argv", ["rae-report", "hotpath", str(artifact_path)])
        assert rae_report_main() == 0
        assert "per-layer self-time" in capsys.readouterr().out
