"""Tests for basefs support components: vfs, allocator, locks, hooks,
writeback, journal manager."""

import pytest

from repro.api import OpenFlags
from repro.basefs.allocator import AllocState, BlockAllocator, InodeAllocator
from repro.basefs.hooks import HOOK_NAMES, HookPoints
from repro.basefs.journal_mgr import JournalManager
from repro.basefs.locks import LockManager
from repro.basefs.vfs import FIRST_FD, FdState, FdTable
from repro.basefs.writeback import WritebackDaemon, WritebackPolicy
from repro.blockdev.cache import BufferCache
from repro.blockdev.device import MemoryBlockDevice
from repro.errors import Errno, FsError, InvariantViolation, KernelWarning
from repro.ondisk.layout import BLOCK_SIZE, DiskLayout
from repro.ondisk.mkfs import mkfs


class TestFdTable:
    def test_lowest_free_allocation(self):
        table = FdTable()
        assert table.allocate(10, OpenFlags.NONE).fd == FIRST_FD
        assert table.allocate(11, OpenFlags.NONE).fd == FIRST_FD + 1
        table.release(FIRST_FD)
        assert table.allocate(12, OpenFlags.NONE).fd == FIRST_FD  # reused

    def test_get_and_release_ebadf(self):
        table = FdTable()
        with pytest.raises(FsError) as e:
            table.get(3)
        assert e.value.errno == Errno.EBADF
        with pytest.raises(FsError):
            table.release(3)

    def test_install_specific(self):
        table = FdTable()
        table.install(FdState(fd=7, ino=1, flags=OpenFlags.NONE, offset=5))
        assert table.get(7).offset == 5
        with pytest.raises(ValueError):
            table.install(FdState(fd=7, ino=1, flags=OpenFlags.NONE))
        with pytest.raises(ValueError):
            table.install(FdState(fd=1, ino=1, flags=OpenFlags.NONE))

    def test_fds_for_ino(self):
        table = FdTable()
        table.allocate(5, OpenFlags.NONE)
        table.allocate(6, OpenFlags.NONE)
        table.allocate(5, OpenFlags.NONE)
        assert table.fds_for_ino(5) == [3, 5]

    def test_snapshot_is_deep(self):
        table = FdTable()
        state = table.allocate(5, OpenFlags.NONE)
        snap = table.snapshot()
        state.offset = 100
        assert snap[state.fd].offset == 0


@pytest.fixture
def alloc_state():
    device = MemoryBlockDevice(block_count=4096)
    mkfs(device)
    layout = DiskLayout(block_count=4096)
    return AllocState.load(layout, device.read_block), layout


class TestAllocators:
    def test_load_counts_match_mkfs(self, alloc_state):
        state, layout = alloc_state
        assert state.free_inodes == layout.inode_count - 2

    def test_block_allocate_prefers_goal_group(self, alloc_state):
        state, layout = alloc_state
        allocator = BlockAllocator(state, HookPoints())
        block = allocator.allocate(goal_group=2)
        assert layout.group_of_block(block) == 2
        assert not layout.is_metadata_block(block)

    def test_block_free_is_deferred_until_commit(self, alloc_state):
        state, _ = alloc_state
        allocator = BlockAllocator(state, HookPoints())
        block = allocator.allocate(0)
        before = state.free_blocks
        allocator.free(block)
        assert state.free_blocks == before + 1
        # The bit stays set until apply_pending_frees, so the block is
        # not immediately reusable.
        assert block in state.pending_free
        second = allocator.allocate(0)
        assert second != block
        allocator.free(second)
        assert allocator.apply_pending_frees() == 2
        assert not state.pending_free

    def test_double_free_detected(self, alloc_state):
        state, _ = alloc_state
        allocator = BlockAllocator(state, HookPoints())
        block = allocator.allocate(0)
        allocator.free(block)
        with pytest.raises(InvariantViolation):
            allocator.free(block)

    def test_free_metadata_block_rejected(self, alloc_state):
        state, _ = alloc_state
        allocator = BlockAllocator(state, HookPoints())
        with pytest.raises(InvariantViolation):
            allocator.free(0)

    def test_reservations_gate_allocation(self, alloc_state):
        state, _ = alloc_state
        allocator = BlockAllocator(state, HookPoints())
        state.reserve(state.free_blocks)  # reserve everything
        with pytest.raises(FsError) as e:
            allocator.allocate(0)
        assert e.value.errno == Errno.ENOSPC
        # ... but charged allocation against the reservation works
        allocator.allocate(0, charge_reservation=True)

    def test_over_reserve_rejected(self, alloc_state):
        state, _ = alloc_state
        with pytest.raises(FsError):
            state.reserve(state.free_blocks + 1)
        with pytest.raises(InvariantViolation):
            state.release_reservation(1)  # nothing outstanding

    def test_inode_allocate_dirs_spread(self, alloc_state):
        state, layout = alloc_state
        allocator = InodeAllocator(state, HookPoints())
        # group 0 has two used inodes; a directory goes to an emptier group.
        ino = allocator.allocate(parent_group=0, is_dir=True)
        assert layout.group_of_ino(ino) != 0

    def test_inode_allocate_files_follow_parent(self, alloc_state):
        state, layout = alloc_state
        allocator = InodeAllocator(state, HookPoints())
        ino = allocator.allocate(parent_group=1, is_dir=False)
        assert layout.group_of_ino(ino) == 1

    def test_inode_claim_and_free(self, alloc_state):
        state, _ = alloc_state
        allocator = InodeAllocator(state, HookPoints())
        allocator.claim(100)
        with pytest.raises(InvariantViolation):
            allocator.claim(100)
        allocator.free(100)
        with pytest.raises(InvariantViolation):
            allocator.free(100)


class TestLockManager:
    def test_acquire_release(self):
        locks = LockManager(HookPoints())
        locks.acquire(5)
        locks.acquire(9)
        assert locks.held == [5, 9]
        locks.release(5)
        assert locks.held == [9]
        locks.release_all()
        assert locks.held == []

    def test_order_violation_counted_not_raised(self):
        locks = LockManager(HookPoints())
        locks.acquire(9)
        locks.acquire(5)  # out of order: counted
        assert locks.stats.order_violations == 1

    def test_strict_mode_raises_warn(self):
        locks = LockManager(HookPoints(), strict=True)
        locks.acquire(9)
        with pytest.raises(KernelWarning):
            locks.acquire(5)

    def test_acquire_pair_is_ordered(self):
        locks = LockManager(HookPoints(), strict=True)
        locks.acquire_pair(9, 5)
        assert locks.held == [5, 9]

    def test_recursive_acquire_counts_contention(self):
        locks = LockManager(HookPoints())
        locks.acquire(5)
        locks.acquire(5)
        assert locks.stats.contentions == 1
        assert locks.held == [5]


class TestHooks:
    def test_fire_without_handlers_is_noop(self):
        hooks = HookPoints()
        hooks.fire("vfs.lookup", parent_ino=2, name="x")

    def test_register_and_fire(self):
        hooks = HookPoints()
        seen = []
        hooks.register("dir.insert", lambda point, ctx: seen.append(ctx["name"]))
        hooks.fire("dir.insert", dir_ino=2, name="hello", child_ino=3)
        assert seen == ["hello"]
        assert hooks.fired["dir.insert"] == 1

    def test_unknown_point_rejected(self):
        hooks = HookPoints()
        with pytest.raises(ValueError):
            hooks.register("no.such.hook", lambda point, ctx: None)

    def test_disabled_hooks_skip_handlers(self):
        hooks = HookPoints()
        hooks.register("mount", lambda point, ctx: (_ for _ in ()).throw(RuntimeError))
        hooks.enabled = False
        hooks.fire("mount")  # no raise

    def test_handler_mutation_visible(self):
        hooks = HookPoints()
        hooks.register("truncate", lambda point, ctx: ctx.update(new_size=0))
        ctx = hooks.fire("truncate", ino=1, old_size=10, new_size=5)
        assert ctx["new_size"] == 0

    def test_hook_names_cover_subsystems(self):
        prefixes = {name.split(".")[0] for name in HOOK_NAMES}
        assert {"vfs", "dir", "inode", "alloc", "page", "journal", "blkmq", "lock"} <= prefixes


class FakeFs:
    def __init__(self):
        self.dirty_pages = 0
        self.dirty_meta = 0
        self.commits = 0

    def dirty_page_count(self):
        return self.dirty_pages

    def dirty_metadata_count(self):
        return self.dirty_meta

    def commit(self):
        self.commits += 1
        self.dirty_pages = 0
        self.dirty_meta = 0


class TestWriteback:
    def test_interval_commit(self):
        fs = FakeFs()
        daemon = WritebackDaemon(fs, WritebackPolicy(commit_interval_ops=3))
        assert not daemon.tick() and not daemon.tick()
        assert daemon.tick()
        assert fs.commits == 1
        assert daemon.stats.interval_commits == 1

    def test_page_pressure_commit(self):
        fs = FakeFs()
        daemon = WritebackDaemon(fs, WritebackPolicy(dirty_page_high_water=5, commit_interval_ops=1000))
        fs.dirty_pages = 5
        assert daemon.tick()
        assert daemon.stats.pressure_commits == 1

    def test_metadata_pressure_commit(self):
        fs = FakeFs()
        daemon = WritebackDaemon(fs, WritebackPolicy(dirty_metadata_high_water=2, commit_interval_ops=1000))
        fs.dirty_meta = 3
        assert daemon.tick()

    def test_external_commit_resets_interval(self):
        fs = FakeFs()
        daemon = WritebackDaemon(fs, WritebackPolicy(commit_interval_ops=2))
        daemon.tick()
        daemon.note_commit()
        assert not daemon.tick()  # interval restarted

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            WritebackPolicy(commit_interval_ops=0)


class TestJournalManager:
    def make(self, validator=None, journal_blocks=64, block_count=2048, blocks_per_group=1024):
        device = MemoryBlockDevice(block_count=block_count)
        mkfs(device, blocks_per_group=blocks_per_group, journal_blocks=journal_blocks)
        layout = DiskLayout(
            block_count=block_count, blocks_per_group=blocks_per_group, journal_blocks=journal_blocks
        )
        cache = BufferCache(device, capacity=4096)
        return JournalManager(device, layout, validator=validator), cache, layout, device

    def test_commit_journals_then_writes_home(self):
        mgr, cache, layout, device = self.make()
        target = layout.data_start(0) + 5
        cache.write(target, b"j" * BLOCK_SIZE)
        mgr.commit({target: b"j" * BLOCK_SIZE}, cache)
        assert device.read_block(target) == b"j" * BLOCK_SIZE
        assert mgr.stats.commits == 1 and not cache.is_dirty(target)

    def test_empty_commit_is_noop(self):
        mgr, cache, _, _ = self.make()
        mgr.commit({}, cache)
        assert mgr.stats.commits == 0

    def test_validator_blocks_bad_txn(self):
        mgr, cache, layout, device = self.make(validator=lambda txn: ["bad block"])
        target = layout.data_start(0) + 7  # +0 holds the root dir from mkfs
        cache.write(target, b"x" * BLOCK_SIZE)
        with pytest.raises(InvariantViolation):
            mgr.commit({target: b"x" * BLOCK_SIZE}, cache)
        assert device.read_block(target) == b"\x00" * BLOCK_SIZE  # nothing persisted
        assert mgr.stats.validation_failures == 1

    def test_large_txn_chunks(self):
        # Chunking engages only past the descriptor tag budget (1016),
        # so this needs a journal region bigger than the budget.
        mgr, cache, layout, device = self.make(
            journal_blocks=2048, block_count=8192, blocks_per_group=4096
        )
        from repro.ondisk.journal import MAX_TAGS

        assert mgr.max_chunk == MAX_TAGS
        txn = {}
        base = layout.data_start(0) + 16
        for i in range(mgr.max_chunk + 5):
            block = base + i
            data = bytes([i % 256]) * BLOCK_SIZE
            cache.write(block, data)
            txn[block] = data
        mgr.commit(txn, cache)
        assert mgr.stats.chunks == 2
        # The group replays atomically (both chunks were final+non-final).
        from repro.ondisk.journal import replay_journal

        txns = replay_journal(device, layout, apply=False)
        assert len(txns) == 2

    def test_oversized_commit_rejected(self):
        from repro.errors import InvariantViolation as IV

        mgr, cache, layout, _ = self.make(journal_blocks=64)
        txn = {}
        base = layout.data_start(0) + 16
        for i in range(120):  # two chunks cannot fit a 64-block journal
            block = base + i
            data = bytes([i % 256]) * BLOCK_SIZE
            cache.write(block, data)
            txn[block] = data
        with pytest.raises(IV, match="journal-capacity|exceeds the journal"):
            mgr.commit(txn, cache)

    def test_crash_between_chunks_discards_group(self):
        """A torn multi-chunk group must not replay partially."""
        mgr, cache, layout, device = self.make(journal_blocks=256)
        base = layout.data_start(0) + 16
        writes_a = {base + i: bytes([1]) * BLOCK_SIZE for i in range(3)}
        writes_b = {base + 10 + i: bytes([2]) * BLOCK_SIZE for i in range(3)}
        mgr.writer.append(writes_a, more=True)  # non-final chunk...
        # ...and the final chunk never lands (crash).
        from repro.ondisk.journal import replay_journal

        assert replay_journal(device, layout, apply=True) == []
        assert device.read_block(base) == b"\x00" * BLOCK_SIZE
        # Whereas a completed group replays whole.
        mgr2, cache2, layout2, device2 = self.make(journal_blocks=256)
        mgr2.writer.append(writes_a, more=True)
        mgr2.writer.append(writes_b, more=False)
        txns = replay_journal(device2, layout2, apply=True)
        assert len(txns) == 2
        assert device2.read_block(base) == bytes([1]) * BLOCK_SIZE
        assert device2.read_block(base + 10) == bytes([2]) * BLOCK_SIZE

    def test_auto_reset_when_full(self):
        mgr, cache, layout, _ = self.make()
        base = layout.data_start(0)
        for round_number in range(6):
            txn = {}
            for i in range(15):
                block = base + i
                data = bytes([round_number]) * BLOCK_SIZE
                cache.write(block, data)
                txn[block] = data
            mgr.commit(txn, cache)
        assert mgr.stats.resets >= 1
