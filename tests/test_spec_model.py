"""Tests for the executable spec model — the semantics reference."""

import pytest

from repro.api import OpenFlags
from repro.errors import Errno, FsError
from repro.ondisk.inode import FileType


class TestSpecNamespace:
    def test_fresh_root(self, spec):
        st = spec.stat("/")
        assert st.ftype == FileType.DIRECTORY and st.nlink == 2
        assert spec.readdir("/") == []

    def test_mkdir_rmdir_cycle(self, spec, seq):
        spec.mkdir("/a", opseq=seq())
        assert spec.readdir("/") == ["a"]
        spec.rmdir("/a", opseq=seq())
        assert spec.readdir("/") == []

    def test_nested_paths(self, spec, seq):
        spec.mkdir("/a", opseq=seq())
        spec.mkdir("/a/b", opseq=seq())
        spec.mkdir("/a/b/c", opseq=seq())
        assert spec.stat("/a/b/c").ftype == FileType.DIRECTORY
        assert spec.stat("/a").nlink == 3

    def test_errno_precedence_open_excl_on_symlink(self, spec, seq):
        spec.symlink("/nowhere", "/s", opseq=seq())
        with pytest.raises(FsError) as e:
            spec.open("/s", OpenFlags.CREAT | OpenFlags.EXCL, opseq=seq())
        assert e.value.errno == Errno.EEXIST

    def test_rename_subtree_guard(self, spec, seq):
        spec.mkdir("/a", opseq=seq())
        spec.mkdir("/a/b", opseq=seq())
        with pytest.raises(FsError) as e:
            spec.rename("/a", "/a/b/under", opseq=seq())
        assert e.value.errno == Errno.EINVAL


class TestSpecData:
    def test_write_read(self, spec, seq):
        fd = spec.open("/f", OpenFlags.CREAT, opseq=seq())
        assert spec.write(fd, b"hello", opseq=seq()) == 5
        spec.lseek(fd, 0, 0, opseq=seq())
        assert spec.read(fd, 5, opseq=seq()) == b"hello"
        spec.close(fd, opseq=seq())

    def test_sparse_write(self, spec, seq):
        fd = spec.open("/f", OpenFlags.CREAT, opseq=seq())
        spec.lseek(fd, 100, 0, opseq=seq())
        spec.write(fd, b"end", opseq=seq())
        spec.lseek(fd, 0, 0, opseq=seq())
        assert spec.read(fd, 100, opseq=seq()) == b"\x00" * 100
        spec.close(fd, opseq=seq())

    def test_append_mode(self, spec, seq):
        fd = spec.open("/f", OpenFlags.CREAT | OpenFlags.APPEND, opseq=seq())
        spec.write(fd, b"a", opseq=seq())
        spec.lseek(fd, 0, 0, opseq=seq())
        spec.write(fd, b"b", opseq=seq())
        spec.close(fd, opseq=seq())
        assert bytes(spec._nodes[spec.stat("/f").ino].data) == b"ab"

    def test_orphan_semantics(self, spec, seq):
        fd = spec.open("/f", OpenFlags.CREAT, opseq=seq())
        spec.write(fd, b"ghost", opseq=seq())
        spec.unlink("/f", opseq=seq())
        spec.lseek(fd, 0, 0, opseq=seq())
        assert spec.read(fd, 5, opseq=seq()) == b"ghost"
        ino = spec.fstat_ino(fd)
        spec.close(fd, opseq=seq())
        assert ino not in spec._nodes  # destroyed at last close

    def test_fsync_is_noop_except_ebadf(self, spec, seq):
        with pytest.raises(FsError):
            spec.fsync(42, opseq=seq())

    def test_fd_numbering_matches_contract(self, spec, seq):
        a = spec.open("/a", OpenFlags.CREAT, opseq=seq())
        b = spec.open("/b", OpenFlags.CREAT, opseq=seq())
        assert (a, b) == (3, 4)
        spec.close(a, opseq=seq())
        c = spec.open("/c", OpenFlags.CREAT, opseq=seq())
        assert c == 3

    def test_ino_hint(self, spec, seq):
        spec.ino_hint = 77
        spec.mkdir("/d", opseq=seq())
        assert spec.stat("/d").ino == 77
