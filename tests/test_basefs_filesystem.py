"""Behavioural tests for the base filesystem's POSIX surface.

These run against ``BaseFilesystem`` directly (no RAE supervisor), with
explicit opseq stamping via the ``seq`` fixture.
"""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.errors import Errno, FsError
from repro.ondisk.inode import FileType, MAX_FILE_SIZE
from repro.ondisk.layout import BLOCK_SIZE


class TestNamespace:
    def test_mkdir_and_stat(self, base, seq):
        base.mkdir("/a", opseq=seq())
        st = base.stat("/a")
        assert st.ftype == FileType.DIRECTORY and st.nlink == 2 and st.size == BLOCK_SIZE

    def test_mkdir_updates_parent(self, base, seq):
        root_before = base.stat("/")
        base.mkdir("/a", opseq=seq())
        root_after = base.stat("/")
        assert root_after.nlink == root_before.nlink + 1
        assert root_after.mtime > root_before.mtime

    def test_mkdir_eexist(self, base, seq):
        base.mkdir("/a", opseq=seq())
        with pytest.raises(FsError) as e:
            base.mkdir("/a", opseq=seq())
        assert e.value.errno == Errno.EEXIST

    def test_mkdir_missing_parent(self, base, seq):
        with pytest.raises(FsError) as e:
            base.mkdir("/no/such", opseq=seq())
        assert e.value.errno == Errno.ENOENT

    def test_mkdir_through_file_is_enotdir(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.close(fd, opseq=seq())
        with pytest.raises(FsError) as e:
            base.mkdir("/f/sub", opseq=seq())
        assert e.value.errno == Errno.ENOTDIR

    def test_rmdir_empty_only(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.mkdir("/a/b", opseq=seq())
        with pytest.raises(FsError) as e:
            base.rmdir("/a", opseq=seq())
        assert e.value.errno == Errno.ENOTEMPTY
        base.rmdir("/a/b", opseq=seq())
        base.rmdir("/a", opseq=seq())
        assert base.readdir("/") == []

    def test_rmdir_decrements_parent_nlink(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.rmdir("/a", opseq=seq())
        assert base.stat("/").nlink == 2

    def test_rmdir_of_file_is_enotdir(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.close(fd, opseq=seq())
        with pytest.raises(FsError) as e:
            base.rmdir("/f", opseq=seq())
        assert e.value.errno == Errno.ENOTDIR

    def test_unlink_of_dir_is_eisdir(self, base, seq):
        base.mkdir("/a", opseq=seq())
        with pytest.raises(FsError) as e:
            base.unlink("/a", opseq=seq())
        assert e.value.errno == Errno.EISDIR

    def test_readdir_sorted_without_dots(self, base, seq):
        for name in ("zeta", "alpha", "mid"):
            base.mkdir(f"/{name}", opseq=seq())
        assert base.readdir("/") == ["alpha", "mid", "zeta"]

    def test_operations_on_root_rejected(self, base, seq):
        for call in (lambda: base.mkdir("/", opseq=seq()), lambda: base.rmdir("/", opseq=seq()),
                     lambda: base.unlink("/", opseq=seq())):
            with pytest.raises(FsError) as e:
                call()
            assert e.value.errno == Errno.EINVAL

    def test_many_entries_grow_directory(self, base, seq):
        base.mkdir("/big", opseq=seq())
        for i in range(600):
            fd = base.open(f"/big/file-with-a-longish-name-{i:05d}", OpenFlags.CREAT, opseq=seq())
            base.close(fd, opseq=seq())
        assert base.stat("/big").size > BLOCK_SIZE
        assert len(base.readdir("/big")) == 600


class TestRename:
    def test_simple_rename(self, base, seq):
        base.mkdir("/a", opseq=seq())
        fd = base.open("/a/f", OpenFlags.CREAT, opseq=seq())
        base.close(fd, opseq=seq())
        ino = base.stat("/a/f").ino
        base.rename("/a/f", "/a/g", opseq=seq())
        assert base.stat("/a/g").ino == ino
        with pytest.raises(FsError):
            base.stat("/a/f")

    def test_cross_directory_rename_of_dir_updates_dotdot_and_nlinks(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.mkdir("/b", opseq=seq())
        base.mkdir("/a/sub", opseq=seq())
        a_nlink = base.stat("/a").nlink
        b_nlink = base.stat("/b").nlink
        base.rename("/a/sub", "/b/sub", opseq=seq())
        assert base.stat("/a").nlink == a_nlink - 1
        assert base.stat("/b").nlink == b_nlink + 1
        # ".." now points at /b: rmdir /b/sub then /b works
        base.rmdir("/b/sub", opseq=seq())
        base.rmdir("/b", opseq=seq())

    def test_rename_replaces_file(self, base, seq):
        for name in ("src", "dst"):
            fd = base.open(f"/{name}", OpenFlags.CREAT, opseq=seq())
            base.write(fd, name.encode(), opseq=seq())
            base.close(fd, opseq=seq())
        base.rename("/src", "/dst", opseq=seq())
        fd = base.open("/dst", opseq=seq())
        assert base.read(fd, 10, opseq=seq()) == b"src"
        base.close(fd, opseq=seq())
        assert base.readdir("/") == ["dst"]

    def test_rename_dir_onto_nonempty_dir_rejected(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.mkdir("/b", opseq=seq())
        base.mkdir("/b/x", opseq=seq())
        with pytest.raises(FsError) as e:
            base.rename("/a", "/b", opseq=seq())
        assert e.value.errno == Errno.ENOTEMPTY

    def test_rename_dir_onto_empty_dir(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.mkdir("/b", opseq=seq())
        base.rename("/a", "/b", opseq=seq())
        assert base.readdir("/") == ["b"]

    def test_rename_into_own_subtree_rejected(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.mkdir("/a/b", opseq=seq())
        with pytest.raises(FsError) as e:
            base.rename("/a", "/a/b/c", opseq=seq())
        assert e.value.errno == Errno.EINVAL

    def test_rename_same_file_is_noop(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.close(fd, opseq=seq())
        base.link("/f", "/g", opseq=seq())
        base.rename("/f", "/g", opseq=seq())  # same inode: POSIX no-op
        assert base.readdir("/") == ["f", "g"]

    def test_rename_type_mismatch(self, base, seq):
        base.mkdir("/d", opseq=seq())
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.close(fd, opseq=seq())
        with pytest.raises(FsError) as e:
            base.rename("/d", "/f", opseq=seq())
        assert e.value.errno == Errno.ENOTDIR
        with pytest.raises(FsError) as e:
            base.rename("/f", "/d", opseq=seq())
        assert e.value.errno == Errno.EISDIR


class TestLinksAndSymlinks:
    def test_hard_link_shares_inode(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"shared", opseq=seq())
        base.close(fd, opseq=seq())
        base.link("/f", "/g", opseq=seq())
        assert base.stat("/f").ino == base.stat("/g").ino
        assert base.stat("/f").nlink == 2
        base.unlink("/f", opseq=seq())
        fd = base.open("/g", opseq=seq())
        assert base.read(fd, 10, opseq=seq()) == b"shared"
        base.close(fd, opseq=seq())
        assert base.stat("/g").nlink == 1

    def test_link_to_directory_rejected(self, base, seq):
        base.mkdir("/d", opseq=seq())
        with pytest.raises(FsError) as e:
            base.link("/d", "/d2", opseq=seq())
        assert e.value.errno == Errno.EPERM

    def test_symlink_resolution(self, base, seq):
        base.mkdir("/real", opseq=seq())
        base.symlink("/real", "/alias", opseq=seq())
        fd = base.open("/alias/f", OpenFlags.CREAT, opseq=seq())
        base.close(fd, opseq=seq())
        assert base.readdir("/real") == ["f"]
        assert base.readlink("/alias") == "/real"

    def test_relative_symlink(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.mkdir("/a/target", opseq=seq())
        base.symlink("target", "/a/rel", opseq=seq())
        assert base.stat("/a/rel").ino == base.stat("/a/target").ino

    def test_lstat_does_not_follow(self, base, seq):
        base.mkdir("/d", opseq=seq())
        base.symlink("/d", "/s", opseq=seq())
        assert base.lstat("/s").ftype == FileType.SYMLINK
        assert base.stat("/s").ftype == FileType.DIRECTORY

    def test_symlink_loop_is_eloop(self, base, seq):
        base.symlink("/b", "/a", opseq=seq())
        base.symlink("/a", "/b", opseq=seq())
        with pytest.raises(FsError) as e:
            base.stat("/a")
        assert e.value.errno == Errno.ELOOP

    def test_dangling_symlink(self, base, seq):
        base.symlink("/nowhere", "/s", opseq=seq())
        with pytest.raises(FsError) as e:
            base.stat("/s")
        assert e.value.errno == Errno.ENOENT
        # O_CREAT through the dangling link creates the target (POSIX).
        fd = base.open("/s", OpenFlags.CREAT, opseq=seq())
        base.close(fd, opseq=seq())
        assert base.stat("/nowhere").ftype == FileType.REGULAR

    def test_readlink_of_non_symlink(self, base, seq):
        base.mkdir("/d", opseq=seq())
        with pytest.raises(FsError) as e:
            base.readlink("/d")
        assert e.value.errno == Errno.EINVAL

    def test_unlink_symlink_removes_link_only(self, base, seq):
        base.mkdir("/d", opseq=seq())
        base.symlink("/d", "/s", opseq=seq())
        base.unlink("/s", opseq=seq())
        assert base.stat("/d").ftype == FileType.DIRECTORY
        with pytest.raises(FsError):
            base.lstat("/s")


class TestDataPath:
    def test_write_read_roundtrip(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        payload = bytes(range(256)) * 100  # 25.6 KB across blocks
        assert base.write(fd, payload, opseq=seq()) == len(payload)
        base.lseek(fd, 0, 0, opseq=seq())
        assert base.read(fd, len(payload), opseq=seq()) == payload
        base.close(fd, opseq=seq())

    def test_sparse_file_reads_zeros(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.lseek(fd, 3 * BLOCK_SIZE, 0, opseq=seq())
        base.write(fd, b"end", opseq=seq())
        base.lseek(fd, 0, 0, opseq=seq())
        head = base.read(fd, BLOCK_SIZE, opseq=seq())
        assert head == b"\x00" * BLOCK_SIZE
        assert base.stat("/f").size == 3 * BLOCK_SIZE + 3
        base.close(fd, opseq=seq())

    def test_append_flag(self, base, seq):
        fd = base.open("/log", OpenFlags.CREAT | OpenFlags.APPEND, opseq=seq())
        base.write(fd, b"one", opseq=seq())
        base.lseek(fd, 0, 0, opseq=seq())
        base.write(fd, b"two", opseq=seq())  # APPEND ignores the seek
        base.close(fd, opseq=seq())
        fd = base.open("/log", opseq=seq())
        assert base.read(fd, 10, opseq=seq()) == b"onetwo"
        base.close(fd, opseq=seq())

    def test_read_at_eof_empty(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"xy", opseq=seq())
        assert base.read(fd, 10, opseq=seq()) == b""  # offset at EOF
        base.close(fd, opseq=seq())

    def test_lseek_whence_variants(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"0123456789", opseq=seq())
        assert base.lseek(fd, 2, 0, opseq=seq()) == 2
        assert base.lseek(fd, 3, 1, opseq=seq()) == 5
        assert base.lseek(fd, -1, 2, opseq=seq()) == 9
        with pytest.raises(FsError):
            base.lseek(fd, -100, 0, opseq=seq())
        with pytest.raises(FsError):
            base.lseek(fd, 0, 9, opseq=seq())
        base.close(fd, opseq=seq())

    def test_open_trunc_clears(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"content", opseq=seq())
        base.close(fd, opseq=seq())
        fd = base.open("/f", OpenFlags.TRUNC, opseq=seq())
        assert base.stat("/f").size == 0
        base.close(fd, opseq=seq())

    def test_open_excl(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT | OpenFlags.EXCL, opseq=seq())
        base.close(fd, opseq=seq())
        with pytest.raises(FsError) as e:
            base.open("/f", OpenFlags.CREAT | OpenFlags.EXCL, opseq=seq())
        assert e.value.errno == Errno.EEXIST

    def test_open_excl_sees_dangling_symlink(self, base, seq):
        base.symlink("/nowhere", "/s", opseq=seq())
        with pytest.raises(FsError) as e:
            base.open("/s", OpenFlags.CREAT | OpenFlags.EXCL, opseq=seq())
        assert e.value.errno == Errno.EEXIST

    def test_open_directory_is_eisdir(self, base, seq):
        base.mkdir("/d", opseq=seq())
        with pytest.raises(FsError) as e:
            base.open("/d", opseq=seq())
        assert e.value.errno == Errno.EISDIR

    def test_bad_fd_is_ebadf(self, base, seq):
        for call in (lambda: base.read(99, 1, opseq=seq()), lambda: base.write(99, b"x", opseq=seq()),
                     lambda: base.close(99, opseq=seq()), lambda: base.fsync(99, opseq=seq())):
            with pytest.raises(FsError) as e:
                call()
            assert e.value.errno == Errno.EBADF

    def test_truncate_shrink_then_grow_zero_fills(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"A" * 1000, opseq=seq())
        base.close(fd, opseq=seq())
        base.truncate("/f", 10, opseq=seq())
        base.truncate("/f", 1000, opseq=seq())
        fd = base.open("/f", opseq=seq())
        data = base.read(fd, 1000, opseq=seq())
        assert data[:10] == b"A" * 10 and data[10:] == b"\x00" * 990
        base.close(fd, opseq=seq())

    def test_truncate_frees_blocks(self, base, seq):
        free_before = base.alloc.free_blocks
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"B" * (20 * BLOCK_SIZE), opseq=seq())
        base.fsync(fd, opseq=seq())
        base.close(fd, opseq=seq())
        base.truncate("/f", 0, opseq=seq())
        base.commit()
        assert base.alloc.free_blocks == free_before

    def test_write_too_big_is_efbig(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.lseek(fd, MAX_FILE_SIZE - 1, 0, opseq=seq())
        with pytest.raises(FsError) as e:
            base.write(fd, b"xx", opseq=seq())
        assert e.value.errno == Errno.EFBIG
        base.close(fd, opseq=seq())

    def test_unlinked_open_file_still_readable(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"survivor", opseq=seq())
        base.unlink("/f", opseq=seq())
        base.lseek(fd, 0, 0, opseq=seq())
        assert base.read(fd, 8, opseq=seq()) == b"survivor"
        free_inodes = base.alloc.free_inodes
        base.close(fd, opseq=seq())  # frees the orphan now
        assert base.alloc.free_inodes == free_inodes + 1


class TestDurability:
    def test_remount_after_unmount_preserves_everything(self, device, seq):
        fs = BaseFilesystem(device)
        fs.mkdir("/d", opseq=seq())
        fd = fs.open("/d/f", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"persist me", opseq=seq())
        fs.close(fd, opseq=seq())
        fs.unmount()
        fs2 = BaseFilesystem(device)
        fd = fs2.open("/d/f", opseq=seq())
        assert fs2.read(fd, 100, opseq=seq()) == b"persist me"
        fs2.close(fd, opseq=seq())
        fs2.unmount()

    def test_fsync_makes_durable_without_unmount(self, seq):
        from tests.conftest import formatted_device

        device = formatted_device(track_durability=True)
        fs = BaseFilesystem(device)
        fd = fs.open("/f", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"synced", opseq=seq())
        fs.fsync(fd, opseq=seq())
        fs.mkdir("/lost", opseq=seq())  # never committed
        device.crash()
        fs2 = BaseFilesystem(device)
        fd = fs2.open("/f", opseq=seq())
        assert fs2.read(fd, 10, opseq=seq()) == b"synced"
        fs2.close(fd, opseq=seq())
        with pytest.raises(FsError):
            fs2.stat("/lost")
        fs2.unmount()

    def test_write_without_fsync_lost_on_crash(self, seq):
        from tests.conftest import formatted_device

        device = formatted_device(track_durability=True)
        device.flush()
        fs = BaseFilesystem(device)
        fd = fs.open("/f", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"volatile", opseq=seq())
        device.crash()
        fs2 = BaseFilesystem(device)
        with pytest.raises(FsError):
            fs2.stat("/f")
        fs2.unmount()

    def test_commit_epoch_and_callbacks(self, base, seq):
        epochs = []
        base.on_commit.append(epochs.append)
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.fsync(fd, opseq=seq())
        base.fsync(fd, opseq=seq())
        base.close(fd, opseq=seq())
        assert epochs == [1, 2]

    def test_free_space_accounting_stable_across_remount(self, device, seq):
        fs = BaseFilesystem(device)
        fs.mkdir("/a", opseq=seq())
        fd = fs.open("/a/f", OpenFlags.CREAT, opseq=seq())
        fs.write(fd, b"y" * 50000, opseq=seq())
        fs.close(fd, opseq=seq())
        fs.unlink("/a/f", opseq=seq())
        fs.unmount()
        fs2 = BaseFilesystem(device)
        assert fs2.alloc.free_blocks == fs2.sb.free_blocks
        assert fs2.alloc.free_inodes == fs2.sb.free_inodes
        fs2.unmount()


class TestCachesInAction:
    def test_dentry_cache_hits_on_repeat_lookup(self, base, seq):
        base.mkdir("/a", opseq=seq())
        base.stat("/a")
        hits_before = base.dentry_cache.stats.hits
        base.stat("/a")
        assert base.dentry_cache.stats.hits > hits_before

    def test_negative_dentry_after_miss(self, base, seq):
        with pytest.raises(FsError):
            base.stat("/ghost")
        negative_before = base.dentry_cache.stats.negative_hits
        with pytest.raises(FsError):
            base.stat("/ghost")
        assert base.dentry_cache.stats.negative_hits > negative_before

    def test_readahead_populates_pages(self, base, seq):
        fd = base.open("/f", OpenFlags.CREAT, opseq=seq())
        base.write(fd, b"r" * (8 * BLOCK_SIZE), opseq=seq())
        base.fsync(fd, opseq=seq())
        base.close(fd, opseq=seq())
        # Evict everything, then read sequentially.
        base.page_cache.drop_all()
        fd = base.open("/f", opseq=seq())
        base.read(fd, BLOCK_SIZE, opseq=seq())
        base.read(fd, BLOCK_SIZE, opseq=seq())
        assert base.page_cache.stats.readahead_loads > 0
        base.close(fd, opseq=seq())

    def test_mount_replays_dirty_journal(self, seq):
        from tests.conftest import formatted_device

        device = formatted_device(track_durability=True)
        device.flush()
        fs = BaseFilesystem(device)
        fs.mkdir("/committed", opseq=seq())
        fs.commit()
        device.crash()  # after commit: journal has the txn, home may lag
        fs2 = BaseFilesystem(device)
        assert fs2.stat("/committed").ftype == FileType.DIRECTORY
        fs2.unmount()
