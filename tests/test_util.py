"""Tests for repro.util."""

from repro.util import LogicalClock, checksum32, make_rng


def test_checksum32_deterministic_and_sensitive():
    a = checksum32(b"hello world")
    assert a == checksum32(b"hello world")
    assert a != checksum32(b"hello worle")


def test_checksum32_range():
    assert 0 <= checksum32(b"") <= 0xFFFFFFFF
    assert 0 <= checksum32(b"\xff" * 4096) <= 0xFFFFFFFF


def test_logical_clock_monotone():
    clock = LogicalClock()
    first = clock.now()
    assert clock.tick() == first + 1
    assert clock.tick() == first + 2
    assert clock.now() == first + 2


def test_logical_clock_custom_start():
    assert LogicalClock(start=100).now() == 100


def test_make_rng_reproducible():
    assert make_rng(7).random() == make_rng(7).random()
    assert make_rng(7).random() != make_rng(8).random()
