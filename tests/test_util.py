"""Tests for repro.util."""

import json

import pytest

from repro.util import LogicalClock, atomic_write_json, checksum32, make_rng


def test_checksum32_deterministic_and_sensitive():
    a = checksum32(b"hello world")
    assert a == checksum32(b"hello world")
    assert a != checksum32(b"hello worle")


def test_checksum32_range():
    assert 0 <= checksum32(b"") <= 0xFFFFFFFF
    assert 0 <= checksum32(b"\xff" * 4096) <= 0xFFFFFFFF


def test_logical_clock_monotone():
    clock = LogicalClock()
    first = clock.now()
    assert clock.tick() == first + 1
    assert clock.tick() == first + 2
    assert clock.now() == first + 2


def test_logical_clock_custom_start():
    assert LogicalClock(start=100).now() == 100


def test_make_rng_reproducible():
    assert make_rng(7).random() == make_rng(7).random()
    assert make_rng(7).random() != make_rng(8).random()


class TestAtomicWriteJson:
    def test_writes_sorted_indented_json_with_trailing_newline(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"b": 1, "a": [2, 3]})
        text = target.read_text()
        assert text == json.dumps({"b": 1, "a": [2, 3]}, indent=2, sort_keys=True) + "\n"
        assert not (tmp_path / "out.json.tmp").exists()

    def test_sort_keys_false_preserves_payload_order(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"version": 1, "findings": []}, sort_keys=False)
        assert target.read_text().splitlines()[1].strip().startswith('"version"')

    def test_unserializable_payload_never_touches_target(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"ok": True})
        before = target.read_text()
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert target.read_text() == before
        assert not (tmp_path / "out.json.tmp").exists()

    def test_interrupted_replace_preserves_target_and_cleans_tmp(self, tmp_path, monkeypatch):
        import repro.util as util

        target = tmp_path / "out.json"
        atomic_write_json(target, {"ok": 1})
        before = target.read_text()
        monkeypatch.setattr(
            util.os, "replace",
            lambda *a, **k: (_ for _ in ()).throw(OSError("disk full")),
        )
        with pytest.raises(OSError):
            atomic_write_json(target, {"ok": 2})
        assert target.read_text() == before
        assert not (tmp_path / "out.json.tmp").exists()
