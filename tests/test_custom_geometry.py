"""Non-default geometry: the format generalizes beyond the defaults.

Everything else in the suite runs on the default geometry (1024-block
groups, 256 inodes/group, 64 journal blocks); these tests format with
unusual shapes — small groups, dense inodes, minimal journal, partial
last group — and run the full differential + fsck machinery over them.
"""

import pytest

from repro.api import OpenFlags
from repro.basefs.filesystem import BaseFilesystem
from repro.blockdev.device import MemoryBlockDevice
from repro.errors import FsError
from repro.fsck import Fsck
from repro.ondisk.mkfs import mkfs
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.spec import capture_state, states_equivalent
from repro.workloads import WorkloadGenerator, fileserver_profile

GEOMETRIES = [
    # (block_count, blocks_per_group, inodes_per_group, journal_blocks)
    ("small-groups", 2048, 256, 64, 16),
    ("dense-inodes", 3000, 1024, 1024, 64),
    ("minimal-journal", 2048, 512, 128, 16),
    ("partial-last-group", 2500, 1024, 256, 64),
    ("many-tiny-groups", 4096, 128, 16, 24),
]


def build(block_count, blocks_per_group, inodes_per_group, journal_blocks):
    device = MemoryBlockDevice(block_count=block_count)
    mkfs(
        device,
        blocks_per_group=blocks_per_group,
        inodes_per_group=inodes_per_group,
        journal_blocks=journal_blocks,
    )
    return device


@pytest.mark.parametrize("name,bc,bpg,ipg,jb", GEOMETRIES, ids=[g[0] for g in GEOMETRIES])
def test_geometry_end_to_end(name, bc, bpg, ipg, jb):
    base_device = build(bc, bpg, ipg, jb)
    shadow_device = build(bc, bpg, ipg, jb)
    assert Fsck(base_device).run().clean

    base = BaseFilesystem(base_device)
    shadow = ShadowFilesystem(shadow_device)
    operations = WorkloadGenerator(fileserver_profile(), seed=88).ops(150)
    for index, operation in enumerate(operations):
        base_result = operation.apply(base, opseq=index + 1)
        # The write-back daemon bounds journal transactions (tiny journals
        # need frequent commits); direct API users must tick it, exactly
        # as the supervisor does after every operation.
        base.writeback.tick()
        if operation.name == "fsync":
            continue
        shadow_result = operation.apply(shadow, opseq=index + 1)
        assert base_result.errno == shadow_result.errno, f"{name} op {index}"

    report = states_equivalent(capture_state(base), capture_state(shadow))
    assert report.equivalent, f"{name}: {report}"
    base.unmount()
    assert Fsck(base_device).run().clean, name


@pytest.mark.parametrize("name,bc,bpg,ipg,jb", GEOMETRIES[:3], ids=[g[0] for g in GEOMETRIES[:3]])
def test_geometry_recovery(name, bc, bpg, ipg, jb):
    from repro.basefs.hooks import HookPoints
    from repro.core.supervisor import RAEConfig, RAEFilesystem
    from repro.errors import KernelBug

    device = build(bc, bpg, ipg, jb)
    hooks = HookPoints()

    def bug(point, ctx):
        if ctx.get("name") == "trip":
            raise KernelBug("geometry recovery bug")

    hooks.register("dir.insert", bug)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    fs.mkdir("/a")
    fd = fs.open("/a/f", OpenFlags.CREAT)
    fs.write(fd, b"g" * 9000)
    fs.close(fd)
    fs.mkdir("/trip")
    assert fs.recovery_count == 1
    assert fs.readdir("/") == ["a", "trip"]
    fs.unmount()
    assert Fsck(device).run().clean, name


def test_inode_exhaustion_on_tiny_inode_geometry(seq):
    """16 inodes per group across 32 groups: inode ENOSPC before block
    ENOSPC, on both implementations at the same point."""
    base = BaseFilesystem(build(4096, 128, 16, 24))
    shadow = ShadowFilesystem(build(4096, 128, 16, 24))
    step = 0
    while True:
        step += 1
        base_err = shadow_err = None
        try:
            base.mkdir(f"/d{step:04d}", opseq=step)
        except FsError as err:
            base_err = err.errno
        try:
            shadow.mkdir(f"/d{step:04d}", opseq=step)
        except FsError as err:
            shadow_err = err.errno
        assert base_err == shadow_err
        if base_err is not None:
            break
    assert step > 100  # most of 16*32 - 2 inodes were usable