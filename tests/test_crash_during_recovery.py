"""Power failure during or right after RAE recovery.

Recovery itself must be crash-safe: the shadow writes nothing, contained
reboot's journal replay is idempotent, and the hand-off is volatile
until the post-recovery commit — so a power cut anywhere in that span
leaves the on-disk image exactly at the last durability point, fsck-
clean and remountable.
"""

import pytest

from repro.api import OpenFlags, op
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.core.supervisor import RAEConfig, RAEFilesystem
from repro.errors import FsError, KernelBug
from repro.fsck import Fsck
from repro.ondisk.inode import FileType
from tests.conftest import formatted_device


def build(seq):
    device = formatted_device(track_durability=True)
    device.flush()
    hooks = HookPoints()

    def bug(point, ctx):
        if ctx.get("name") == "trigger":
            raise KernelBug("crash during recovery test")

    hooks.register("dir.insert", bug)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    fd = fs.open("/durable", OpenFlags.CREAT)
    fs.write(fd, b"committed content")
    fs.fsync(fd)  # durability point
    fs.close(fd)
    fs.mkdir("/volatile")  # in the window
    return device, fs


def assert_rolled_back_to_durability_point(device):
    report = Fsck(device).run()
    assert report.clean, [str(f) for f in report.errors[:3]]
    fs = BaseFilesystem(device)
    assert fs.stat("/durable").ftype == FileType.REGULAR
    fd = fs.open("/durable", opseq=100)
    assert fs.read(fd, 100, opseq=101) == b"committed content"
    fs.close(fd, opseq=102)
    with pytest.raises(FsError):
        fs.stat("/volatile")  # the window is legitimately gone
    fs.unmount()


def test_durable_image_at_detection_instant_is_consistent(seq):
    """Freeze the *durable* image at the exact moment the bug fires —
    what a power cut at detection would leave on the platter — and
    verify it is the last durability point, fsck-clean."""
    from repro.blockdev.device import MemoryBlockDevice

    device = formatted_device(track_durability=True)
    device.flush()
    hooks = HookPoints()
    frozen: dict = {}

    def capture(point, ctx):
        if ctx.get("name") == "trigger" and not frozen:
            volatile = device.snapshot()
            device.crash()  # roll the live image back to the durable view
            frozen["image"] = device.snapshot()
            device.restore(volatile)  # let the run continue undisturbed

    def bug(point, ctx):
        if ctx.get("name") == "trigger":
            raise KernelBug("crash during recovery test")

    hooks.register("dir.insert", capture)  # must run before the bug
    hooks.register("dir.insert", bug)
    fs = RAEFilesystem(device, RAEConfig(), hooks=hooks)
    fd = fs.open("/durable", OpenFlags.CREAT)
    fs.write(fd, b"committed content")
    fs.fsync(fd)
    fs.close(fd)
    fs.mkdir("/volatile")

    fs.mkdir("/trigger")  # capture fires first, then the bug + recovery
    assert frozen
    platter = MemoryBlockDevice(block_count=device.block_count)
    platter.restore(frozen["image"])
    assert_rolled_back_to_durability_point(platter)


def test_power_cut_after_successful_recovery_before_its_commit(seq):
    device, fs = build(seq)
    # Disable the post-recovery commit so the recovered state stays
    # volatile, then cut power: everything since the fsync must vanish.
    fs.config.commit_after_recovery = False
    fs.mkdir("/trigger")
    assert fs.recovery_count == 1
    assert fs.stat("/trigger").ftype == FileType.DIRECTORY  # app-visible
    device.crash()
    assert_rolled_back_to_durability_point(device)


def test_power_cut_after_recovery_commit_keeps_everything(seq):
    device, fs = build(seq)
    fs.mkdir("/trigger")  # recovery + commit (default config)
    device.crash()
    report = Fsck(device).run()
    assert report.clean
    fs2 = BaseFilesystem(device)
    assert fs2.stat("/volatile").ftype == FileType.DIRECTORY
    assert fs2.stat("/trigger").ftype == FileType.DIRECTORY
    fs2.unmount()


def test_failed_recovery_leaves_no_shadow_trace_on_disk(seq):
    """The never-write property, end to end: a recovery aborted at the
    cross-check stage leaves every block untouched except the superblock
    (mount bookkeeping) and the journal region (replay/reset) — both
    written by the *contained reboot*, never by the shadow."""
    from repro.ondisk.layout import BLOCK_SIZE, DiskLayout

    device, fs = build(seq)
    # Poison the mkdir record (the last entry) so strict cross-check
    # fails mid-replay; the fsync/close records before it are immune.
    mkdir_record = next(r for r in fs.oplog.entries if r.op.name == "mkdir")
    mkdir_record.outcome.value = -1
    image_before = device.snapshot()
    with pytest.raises(Exception):  # noqa: B017 — RecoveryFailure et al.
        fs.mkdir("/trigger")

    layout = DiskLayout(block_count=device.block_count)
    image_after = device.snapshot()
    reboot_owned = {0} | set(range(layout.journal_start, layout.journal_start + layout.journal_blocks))
    for block in range(device.block_count):
        before = image_before[block * BLOCK_SIZE : (block + 1) * BLOCK_SIZE]
        after = image_after[block * BLOCK_SIZE : (block + 1) * BLOCK_SIZE]
        if block in reboot_owned:
            continue
        assert before == after, f"block {block} mutated by a failed recovery"
