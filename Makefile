# Convenience targets for the RAE reproduction.

PYTHON ?= python
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: all install lint lint-json lint-github lint-contracts lint-concurrency lint-persistence lint-commute crash-surface replay-matrix sweep sweep-smoke test bench bench-obs bench-hotpath bench-hotpath-check hotpath-baseline experiments examples verify clean

# Default flow: static analysis first (fast), then the tier-1 suite.
all: lint test

install:
	$(PYTHON) setup.py develop

lint:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --fail-on-findings

lint-json:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --fail-on-findings --format=json

# GitHub workflow-command annotations: findings render inline on the PR
# diff.  CI uses this for the main lint step; lint-json stays the
# machine-readable ratchet format.
lint-github:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --fail-on-findings --format=github

# One rule family alone, with the ratchet check: fails on any finding
# not in raelint.baseline.json AND on baseline entries that no longer
# fire (the baseline may only shrink).  `--select` resolves a family
# name to every rule in it, so these targets never drift from the rule
# registry.
lint-contracts:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --select contracts --check-baseline --fail-on-findings

# The concurrency rules alone (same shape as lint-contracts): the race
# detector and async-discipline checks for the parallel-recovery arc.
lint-concurrency:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --select concurrency --check-baseline --fail-on-findings

# The crash-consistency ordering rules alone (same shape): the static
# half of the durability story — flush barriers, declared persistence
# protocols, and fault-hook coverage of every persistence point.
lint-persistence:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --select persistence --check-baseline --fail-on-findings

# The replay-commutativity rules alone (same shape): footprint parity
# against the reviewed spec, vocabulary coverage of every write, and
# shard isolation — the static half of sharded replay.
lint-commute:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --select commute --check-baseline --fail-on-findings

# Regenerate the committed crash-surface catalog (ROADMAP item 3's
# sweep work-list).  CI runs this and fails on `git diff` drift, so the
# catalog can never silently fall behind the code.
crash-surface:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --emit-crash-surface crashpoints.json

# Regenerate the committed replay matrix (ROADMAP item 4's shard
# surface).  Same drift discipline as crash-surface: CI re-emits and
# fails on `git diff`.
replay-matrix:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --emit-replay-matrix replaymatrix.json

# Execute the full crash-point sweep: every (op, point) pair of the
# committed catalog, both crash kinds, drift-checked work-list, exit 1
# on any unsanctioned non-clean outcome (see docs/FAULT_SWEEP.md).
sweep:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.sweep

# Bounded sweep for CI: one profile, short workloads, capped case count.
# Failing tuples write reproducer bundles under sweep-bundles/ which the
# workflow uploads as artifacts.
sweep-smoke:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.sweep --smoke --bundle-dir sweep-bundles

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# The observability ablation alone, producing BENCH_obs.json and then
# FAILING (not skipping) if the artifact is missing or malformed — the
# schema gate is what keeps the CI artifact trustworthy.
bench-obs:
	$(PYTHONPATH_SRC) BENCH_OBS_PATH=BENCH_obs.json $(PYTHON) -m pytest benchmarks/test_ablation_obs_overhead.py --benchmark-only -q -s
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.obs.check BENCH_obs.json

# The hot-path throughput artifact (ROADMAP item 2): run every mix via
# rae-bench, then FAIL (not skip) if BENCH_hotpath.json is missing or
# malformed — same schema-gate discipline as bench-obs.
bench-hotpath:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.bench --out BENCH_hotpath.json
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.obs.check BENCH_hotpath.json

# The perf ratchet against the committed baseline (exit 1 on regression
# beyond the tolerance bands; see docs/OBSERVABILITY.md).
bench-hotpath-check:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.bench --check-baseline --artifact BENCH_hotpath.json

# Deliberately ratchet hotpath.baseline.json forward from a fresh run.
# Commit the result — CI compares every run against it.
hotpath-baseline:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.bench --out BENCH_hotpath.json --update-baseline

experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crafted_image_attack.py
	$(PYTHON) examples/webserver_survival.py
	$(PYTHON) examples/post_error_testing.py
	$(PYTHON) examples/process_isolation.py

verify:
	$(PYTHON) -m repro.tools verify --depth 3

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
