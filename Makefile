# Convenience targets for the RAE reproduction.

PYTHON ?= python
PYTHONPATH_SRC = PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: all install lint lint-json test bench experiments examples verify clean

# Default flow: static analysis first (fast), then the tier-1 suite.
all: lint test

install:
	$(PYTHON) setup.py develop

lint:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --fail-on-findings

lint-json:
	$(PYTHONPATH_SRC) $(PYTHON) -m repro.analysis src/repro --fail-on-findings --format=json

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crafted_image_attack.py
	$(PYTHON) examples/webserver_survival.py
	$(PYTHON) examples/post_error_testing.py
	$(PYTHON) examples/process_isolation.py

verify:
	$(PYTHON) -m repro.tools verify --depth 3

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
