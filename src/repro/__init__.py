"""repro — Shadow Filesystems: Robust Alternative Execution (RAE).

A full Python reproduction of "Shadow Filesystems: Recovering from
Filesystem Runtime Errors via Robust Alternative Execution"
(HotStorage '24): a performance-oriented base filesystem, a simple
never-writing shadow sharing its API and on-disk format, and the RAE
runtime that masks detected runtime errors by contained reboot, shadow
replay, and metadata hand-off.

Quickstart::

    from repro import MemoryBlockDevice, mkfs, RAEFilesystem, OpenFlags

    device = MemoryBlockDevice(block_count=8192)
    mkfs(device)
    fs = RAEFilesystem(device)
    fs.mkdir("/projects")
    fd = fs.open("/projects/notes.txt", OpenFlags.CREAT)
    fs.write(fd, b"hello")
    fs.fsync(fd)
    fs.close(fd)
    fs.unmount()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.api import FilesystemAPI, FsOp, OpenFlags, OpResult, StatResult, op
from repro.blockdev.device import FileBlockDevice, MemoryBlockDevice
from repro.errors import (
    Errno,
    FsError,
    InvariantViolation,
    KernelBug,
    KernelWarning,
    RecoveryFailure,
)
from repro.ondisk.mkfs import mkfs

__version__ = "1.0.0"

__all__ = [
    "FilesystemAPI",
    "FsOp",
    "op",
    "OpResult",
    "OpenFlags",
    "StatResult",
    "MemoryBlockDevice",
    "FileBlockDevice",
    "mkfs",
    "Errno",
    "FsError",
    "KernelBug",
    "KernelWarning",
    "InvariantViolation",
    "RecoveryFailure",
    "RAEFilesystem",
    "RAEConfig",
    "BaseFilesystem",
    "ShadowFilesystem",
    "SpecFilesystem",
    "__version__",
]

_LAZY = {
    "RAEFilesystem": "repro.core.supervisor",
    "RAEConfig": "repro.core.supervisor",
    "BaseFilesystem": "repro.basefs.filesystem",
    "ShadowFilesystem": "repro.shadowfs.filesystem",
    "SpecFilesystem": "repro.spec.model",
}


def __getattr__(name: str):
    # RAEFilesystem & friends import half the package; keeping them lazy
    # lets leaf modules (errors, api, ondisk) import `repro` cheaply.
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
