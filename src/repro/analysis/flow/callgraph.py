"""A project-wide call graph over the modules raelint already parses.

Python has no static types, so a sound call graph is impossible — but
this codebase is disciplined enough that a *useful* one is cheap.  The
resolver works outward from what is certain:

1. **Names** resolve through the module's own defs and its imports
   (``from repro.ondisk.journal import replay_journal``); calling a
   class is an edge to its ``__init__``.
2. **``self.m(...)``** resolves through the enclosing class and its
   bases (by name, depth-first).
3. **Typed receivers**: a light type pass records attribute types from
   dataclass/class-body annotations and ``self.x = ClassName(...)``
   constructor assignments, parameter annotations, local
   ``x = ClassName(...)`` assignments, and return annotations — so
   ``self.journal.commit(...)`` lands on ``JournalManager.commit`` and
   ``record.op.apply(...)`` lands on ``FsOp.apply``.
4. **Name-based fallback** for untyped receivers: an edge to every
   project method with that name, but only when there are at most
   :data:`FALLBACK_CAP` candidates and the name is not a builtin
   collection method (``get``, ``append``, ``items`` ... are almost
   always ``dict``/``list`` traffic, and linking them would weld the
   whole graph together).

The result over-approximates where it links and under-approximates
where dispatch is truly dynamic (``getattr``); rules that consume it —
SHADOW-REACH, REPLAY-DETERMINISM — treat reachability as evidence and
report the concrete call chain so a human can audit the path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.analysis.engine import ParsedModule

#: Max same-named candidates an untyped attribute call may fan out to.
FALLBACK_CAP = 4

#: Container annotation roots whose subscript names the element type.
_CONTAINER_NAMES = frozenset({
    "list", "tuple", "set", "frozenset", "List", "Tuple", "Set", "FrozenSet",
    "Sequence", "Iterable", "Iterator", "Collection", "MutableSequence", "deque",
})

#: Builtin collection/str methods never resolved by name alone.
_BUILTIN_METHODS = frozenset({
    "get", "items", "keys", "values", "setdefault", "popitem", "update",
    "add", "discard", "pop", "append", "extend", "insert", "remove",
    "clear", "sort", "reverse", "copy", "count", "index",
    "join", "split", "rsplit", "strip", "lstrip", "rstrip", "splitlines",
    "encode", "decode", "format", "startswith", "endswith", "lower",
    "upper", "title", "replace", "zfill", "hex", "to_bytes", "ljust",
    "rjust", "most_common",
})


def _key(path: str, qualname: str) -> str:
    return f"{path}::{qualname}"


@dataclass
class DefInfo:
    """One function/method definition."""

    key: str
    path: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_key: str | None = None  # owning class, for methods

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    key: str
    path: str
    qualname: str
    node: ast.ClassDef
    methods: dict[str, str] = field(default_factory=dict)  # name -> def key
    attr_types: dict[str, str] = field(default_factory=dict)  # attr -> class key
    base_names: list[str] = field(default_factory=list)
    base_keys: list[str] = field(default_factory=list)


class CallGraph:
    """Defs, classes, and call edges for a parsed module set."""

    def __init__(self, modules: Sequence[ParsedModule]):
        self.modules = list(modules)
        self.defs: dict[str, DefInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: dict[str, set[str]] = {}
        self.call_sites: dict[tuple[str, str], ast.Call] = {}
        # per-module: name -> ("def", key) | ("class", key) | ("module", path)
        self._scope: dict[str, dict[str, tuple[str, str]]] = {}
        self._methods_by_name: dict[str, list[str]] = {}
        self._paths = {m.path for m in self.modules}
        self._index()
        self._bind_imports()
        self._link_bases()
        self._infer_attr_types()
        self._build_edges()

    # ------------------------------------------------------------------
    # pass 1: index defs, classes, imports

    def _module_for_dotted(self, dotted: str) -> str | None:
        """Map an import string (``repro.basefs.locks``) onto a parsed
        module path (``basefs/locks.py``) by longest-suffix match."""
        parts = dotted.split(".")
        for start in range(len(parts)):
            tail = parts[start:]
            candidate = "/".join(tail) + ".py"
            if candidate in self._paths:
                return candidate
            candidate = "/".join(tail) + "/__init__.py"
            if candidate in self._paths:
                return candidate
        return None

    def _index(self) -> None:
        for module in self.modules:
            scope: dict[str, tuple[str, str]] = {}
            self._scope[module.path] = scope
            self._index_body(module.path, module.tree.body, prefix="", class_key=None, scope=scope)

    def _index_body(
        self,
        path: str,
        body: list[ast.stmt],
        prefix: str,
        class_key: str | None,
        scope: dict[str, tuple[str, str]],
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                key = _key(path, qualname)
                self.defs[key] = DefInfo(key=key, path=path, qualname=qualname, node=stmt, class_key=class_key)
                if class_key is not None:
                    self.classes[class_key].methods.setdefault(stmt.name, key)
                    self._methods_by_name.setdefault(stmt.name, []).append(key)
                elif not prefix:
                    scope.setdefault(stmt.name, ("def", key))
                # Nested defs are indexed with a dotted qualname; their
                # own nesting is handled when edges are built.
                self._index_body(path, stmt.body, prefix=qualname + ".", class_key=None, scope=scope)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{prefix}{stmt.name}"
                key = _key(path, qualname)
                info = ClassInfo(
                    key=key,
                    path=path,
                    qualname=qualname,
                    node=stmt,
                    base_names=[ast.unparse(b) for b in stmt.bases],
                )
                self.classes[key] = info
                if not prefix:
                    scope.setdefault(stmt.name, ("class", key))
                self._index_body(path, stmt.body, prefix=qualname + ".", class_key=key, scope=scope)
            # Imports are bound in a separate pass (_bind_imports) once
            # every module's defs and classes are indexed; resolving them
            # here would make the graph depend on module indexing order.

    def _bind_imports(self) -> None:
        """Pass 1b: bind imports into each module's scope.

        Runs after :meth:`_index` has seen *every* module, so a
        ``from repro.basefs.vfs import FdTable`` in a module that sorts
        before ``basefs/vfs.py`` still resolves — resolving during the
        indexing walk made bindings (and therefore typed edges) depend
        on the alphabetical indexing order.  Imports anywhere in the
        file bind the module scope, including ones nested under
        ``if TYPE_CHECKING:`` or ``try`` fallbacks.
        """
        for module in self.modules:
            scope = self._scope[module.path]
            for stmt in ast.walk(module.tree):
                if isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        target = self._module_for_dotted(alias.name)
                        if target is not None:
                            scope[alias.asname or alias.name.split(".")[0]] = ("module", target)
                elif isinstance(stmt, ast.ImportFrom):
                    if stmt.module is None:
                        continue
                    target = self._module_for_dotted(stmt.module)
                    if target is None:
                        continue
                    for alias in stmt.names:
                        bound = alias.asname or alias.name
                        resolved = self._lookup_in_module(target, alias.name)
                        if resolved is not None:
                            scope[bound] = resolved
                        else:
                            submodule = self._module_for_dotted(f"{stmt.module}.{alias.name}")
                            if submodule is not None:
                                scope[bound] = ("module", submodule)

    def _lookup_in_module(self, path: str, name: str) -> tuple[str, str] | None:
        for kind, store in (("def", self.defs), ("class", self.classes)):
            key = _key(path, name)
            if key in store:
                return (kind, key)
        return None

    def _link_bases(self) -> None:
        for info in self.classes.values():
            for base in info.base_names:
                resolved = self._resolve_class_name(info.path, base.split("[")[0].split(".")[-1])
                if resolved is not None:
                    info.base_keys.append(resolved)

    def _resolve_class_name(self, path: str, name: str) -> str | None:
        entry = self._scope.get(path, {}).get(name)
        if entry is not None and entry[0] == "class":
            return entry[1]
        key = _key(path, name)
        return key if key in self.classes else None

    # ------------------------------------------------------------------
    # pass 2: attribute types

    def _class_from_annotation(self, path: str, ann: ast.expr | None) -> str | None:
        if ann is None:
            return None
        if isinstance(ann, ast.Name):
            return self._resolve_class_name(path, ann.id)
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return self._resolve_class_name(path, ann.value.strip("'\""))
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self._class_from_annotation(path, ann.left) or self._class_from_annotation(path, ann.right)
        if isinstance(ann, ast.Attribute):
            return self._resolve_class_name(path, ann.attr)
        return None

    def _class_of_call(self, path: str, call: ast.Call) -> str | None:
        """The class constructed by ``call``, if its callee is a class."""
        func = call.func
        if isinstance(func, ast.Name):
            entry = self._scope.get(path, {}).get(func.id)
            if entry is not None and entry[0] == "class":
                return entry[1]
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            entry = self._scope.get(path, {}).get(func.value.id)
            if entry is not None and entry[0] == "module":
                resolved = self._lookup_in_module(entry[1], func.attr)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
        return None

    def _infer_attr_types(self) -> None:
        for info in self.classes.values():
            for stmt in info.node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                    cls = self._class_from_annotation(info.path, stmt.annotation)
                    if cls is not None:
                        info.attr_types[stmt.target.id] = cls
            for method_key in info.methods.values():
                method = self.defs[method_key]
                for node in ast.walk(method.node):
                    target: ast.expr | None = None
                    value: ast.expr | None = None
                    ann: ast.expr | None = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value, ann = node.target, node.value, node.annotation
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    cls = self._class_from_annotation(info.path, ann)
                    if cls is None and isinstance(value, ast.Call):
                        cls = self._class_of_call(info.path, value)
                    if cls is not None:
                        info.attr_types.setdefault(target.attr, cls)

    # ------------------------------------------------------------------
    # pass 3: edges

    def _build_edges(self) -> None:
        for info in self.defs.values():
            self.edges[info.key] = set()
            locals_types = self._local_types(info)
            for call in self._own_calls(info.node):
                for callee in self._resolve_call(info, call, locals_types):
                    self.edges[info.key].add(callee)
                    self.call_sites.setdefault((info.key, callee), call)

    @staticmethod
    def _own_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.Call]:
        """Call expressions in ``func``'s own body, not in nested defs."""
        calls: list[ast.Call] = []
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                calls.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return calls

    def _element_class(self, path: str, ann: ast.expr | None) -> str | None:
        """``Sequence[FsOp]`` / ``list[OpRecord]`` -> the element class."""
        if not isinstance(ann, ast.Subscript):
            return None
        root = ann.value
        root_name = root.id if isinstance(root, ast.Name) else getattr(root, "attr", "")
        if root_name not in _CONTAINER_NAMES:
            return None
        inner: ast.expr = ann.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return self._class_from_annotation(path, inner)

    def _local_types(self, info: DefInfo) -> dict[str, str]:
        """Parameter annotations + ``x = ClassName(...)`` assignments +
        loop targets over typed containers."""
        types: dict[str, str] = {}
        elem_types: dict[str, str] = {}
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            cls = self._class_from_annotation(info.path, arg.annotation)
            if cls is not None:
                types[arg.arg] = cls
            elem = self._element_class(info.path, arg.annotation)
            if elem is not None:
                elem_types[arg.arg] = elem

        def elem_of(expr: ast.expr) -> str | None:
            if isinstance(expr, ast.Name):
                return elem_types.get(expr.id)
            if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) and expr.args:
                if expr.func.id in {"sorted", "list", "tuple", "reversed", "iter"}:
                    return elem_of(expr.args[0])
            return None

        def bind_loop(target: ast.expr, it: ast.expr) -> None:
            # `for index, x in enumerate(ops)` types x like `for x in ops`.
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id == "enumerate"
                and it.args
                and isinstance(target, ast.Tuple)
                and len(target.elts) == 2
            ):
                target, it = target.elts[1], it.args[0]
            if isinstance(target, ast.Name):
                cls = elem_of(it)
                if cls is not None:
                    types.setdefault(target.id, cls)

        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                # Constructor calls, typed-attribute reads (op = record.op),
                # and typed-returning calls all flow into the local.
                cls = self._type_of(info, node.value, types)
                if cls is not None:
                    types.setdefault(node.targets[0].id, cls)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                bind_loop(node.target, node.iter)
            elif isinstance(node, ast.comprehension):
                bind_loop(node.target, node.iter)
        return types

    def _method_in_class(self, class_key: str, name: str, seen: set[str] | None = None) -> str | None:
        """Resolve a method through the class and its bases (DFS)."""
        seen = seen or set()
        if class_key in seen or class_key not in self.classes:
            return None
        seen.add(class_key)
        info = self.classes[class_key]
        if name in info.methods:
            return info.methods[name]
        for base in info.base_keys:
            found = self._method_in_class(base, name, seen)
            if found is not None:
                return found
        return None

    def _type_of(self, info: DefInfo, expr: ast.expr, locals_types: dict[str, str]) -> str | None:
        """Best-effort class of ``expr`` inside ``info``'s body."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and info.class_key is not None:
                return info.class_key
            if expr.id in locals_types:
                return locals_types[expr.id]
            entry = self._scope.get(info.path, {}).get(expr.id)
            if entry is not None and entry[0] == "class":
                return entry[1]  # the class object itself: Superblock.unpack
            return None
        if isinstance(expr, ast.Attribute):
            owner = self._type_of(info, expr.value, locals_types)
            if owner is not None:
                return self._attr_type(owner, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            cls = self._class_of_call(info.path, expr)
            if cls is not None:
                return cls
            callee = self._resolve_callable(info, expr.func, locals_types)
            if callee is not None:
                returns = self.defs[callee].node.returns
                return self._class_from_annotation(self.defs[callee].path, returns)
            return None
        return None

    def _attr_type(self, class_key: str, attr: str, seen: set[str] | None = None) -> str | None:
        seen = seen or set()
        if class_key in seen or class_key not in self.classes:
            return None
        seen.add(class_key)
        info = self.classes[class_key]
        if attr in info.attr_types:
            return info.attr_types[attr]
        for base in info.base_keys:
            found = self._attr_type(base, attr, seen)
            if found is not None:
                return found
        return None

    def _resolve_callable(
        self, info: DefInfo, func: ast.expr, locals_types: dict[str, str]
    ) -> str | None:
        """Resolve ``func`` to a single def key when unambiguous."""
        if isinstance(func, ast.Name):
            # Nested function of the current def?
            nested = _key(info.path, f"{info.qualname}.{func.id}")
            if nested in self.defs:
                return nested
            entry = self._scope.get(info.path, {}).get(func.id)
            if entry is None:
                return None
            if entry[0] == "def":
                return entry[1]
            if entry[0] == "class":
                return self._method_in_class(entry[1], "__init__")
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name):
                entry = self._scope.get(info.path, {}).get(func.value.id)
                if entry is not None and entry[0] == "module":
                    resolved = self._lookup_in_module(entry[1], func.attr)
                    if resolved is None:
                        return None
                    if resolved[0] == "def":
                        return resolved[1]
                    return self._method_in_class(resolved[1], "__init__")
            owner = self._type_of(info, func.value, locals_types)
            if owner is not None:
                return self._method_in_class(owner, func.attr)
        return None

    def _resolve_call(
        self, info: DefInfo, call: ast.Call, locals_types: dict[str, str]
    ) -> list[str]:
        resolved = self._resolve_callable(info, call.func, locals_types)
        if resolved is not None:
            return [resolved]
        # Untyped attribute receiver: capped name-based fallback.
        if isinstance(call.func, ast.Attribute):
            name = call.func.attr
            if name.startswith("__") or name in _BUILTIN_METHODS:
                return []
            candidates = self._methods_by_name.get(name, [])
            if 0 < len(candidates) <= FALLBACK_CAP:
                return list(candidates)
        return []

    # ------------------------------------------------------------------
    # queries

    def defs_where(self, predicate: Callable[[DefInfo], bool]) -> list[DefInfo]:
        return [info for info in self.defs.values() if predicate(info)]

    def local_types(self, key: str) -> dict[str, str]:
        """Public view of the per-def local type environment (parameter
        annotations, constructor assignments, typed loop targets) — the
        concurrency shared-state model resolves attribute receivers
        through it."""
        return self._local_types(self.defs[key])

    def expr_class(
        self, key: str, expr: ast.expr, locals_types: dict[str, str] | None = None
    ) -> str | None:
        """Best-effort class key of ``expr`` evaluated inside def ``key``.
        Pass a cached :meth:`local_types` result when resolving many
        expressions of the same def."""
        info = self.defs[key]
        if locals_types is None:
            locals_types = self._local_types(info)
        return self._type_of(info, expr, locals_types)

    def resolve_method(self, class_key: str, name: str) -> str | None:
        """Public method lookup through a class and its bases."""
        return self._method_in_class(class_key, name)

    def call_edges(self, key: str) -> list[tuple[ast.Call, list[str]]]:
        """Per-call-site resolution for ``key``: every call expression in
        the def's own body together with the callee keys it resolves to
        (empty-resolution calls are omitted).  Unlike :attr:`edges`, this
        keeps call sites distinct, which interprocedural summaries need —
        the same callee can be reached from differently-guarded sites."""
        info = self.defs[key]
        locals_types = self._local_types(info)
        sites: list[tuple[ast.Call, list[str]]] = []
        for call in self._own_calls(info.node):
            callees = self._resolve_call(info, call, locals_types)
            if callees:
                sites.append((call, sorted(callees)))
        sites.sort(key=lambda item: (getattr(item[0], "lineno", 0), getattr(item[0], "col_offset", 0)))
        return sites

    def reachable(self, roots: Iterable[str]) -> dict[str, str | None]:
        """BFS over call edges; returns ``{reached_key: parent_key}``
        (roots map to ``None``), so callers can rebuild a witness chain."""
        parents: dict[str, str | None] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.defs and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    def chain(self, parents: dict[str, str | None], target: str) -> list[str]:
        """The witness call chain from a root to ``target``."""
        path: list[str] = []
        cursor: str | None = target
        while cursor is not None:
            path.append(cursor)
            cursor = parents.get(cursor)
        return list(reversed(path))


def render_chain(graph: CallGraph, keys: list[str]) -> str:
    """``a -> b -> c`` with short method names for finding messages."""
    return " -> ".join(graph.defs[k].qualname if k in graph.defs else k for k in keys)
