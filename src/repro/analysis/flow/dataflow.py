"""A small worklist dataflow solver over :mod:`repro.analysis.flow.cfg`.

Analyses subclass :class:`DataflowAnalysis` and declare a direction, a
boundary value (at ENTRY for forward problems, EXIT for backward ones),
an optimistic initial value for every other node, a lattice join, and a
transfer function.  :func:`solve` iterates to a fixpoint and returns,
per node, the value *before* and *after* its transfer — "before" meaning
at the node's input edge in the chosen direction (predecessors joined
for forward, successors joined for backward).

Two conveniences cover the common shapes:

* :class:`GenKillAnalysis` — classic bit-vector style problems where
  ``transfer(v) = (v - kill(node)) | gen(node)`` over frozensets;
* :class:`LocksetAnalysis` — the may-held lockset domain LOCK-ORDER
  uses: forward, join-by-union, gen at ``*.locks.acquire*`` sites and
  kill at ``release``/``release_all``, with lock identity being the
  unparsed acquire argument (``parent.ino``, ``child.ino``, ...).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Generic, Hashable, TypeVar

from repro.analysis.flow.cfg import CFG, CFGNode

T = TypeVar("T", bound=Hashable)

FORWARD = "forward"
BACKWARD = "backward"


class DataflowAnalysis(Generic[T]):
    """One dataflow problem: direction, lattice, transfer."""

    direction: str = FORWARD

    def boundary(self) -> T:
        """Value at the boundary node (ENTRY forward / EXIT backward)."""
        raise NotImplementedError

    def initial(self) -> T:
        """Optimistic starting value for every non-boundary node."""
        raise NotImplementedError

    def join(self, a: T, b: T) -> T:
        raise NotImplementedError

    def transfer(self, node: CFGNode, value: T) -> T:
        raise NotImplementedError


@dataclass
class NodeValues(Generic[T]):
    """Fixpoint values for one node, in analysis direction."""

    before: T  # joined over input edges, pre-transfer
    after: T  # post-transfer


def solve(cfg: CFG, analysis: DataflowAnalysis[T]) -> dict[int, NodeValues[T]]:
    """Run ``analysis`` over ``cfg`` to a fixpoint (worklist iteration)."""
    forward = analysis.direction == FORWARD
    boundary_node = cfg.entry if forward else cfg.exit

    def inputs(node: CFGNode) -> set[int]:
        return node.pred if forward else node.succ

    after: dict[int, T] = {}
    for node in cfg.nodes:
        if node.index == boundary_node:
            after[node.index] = analysis.transfer(node, analysis.boundary())
        else:
            after[node.index] = analysis.initial()

    before: dict[int, T] = {boundary_node: analysis.boundary()}
    worklist = [node.index for node in cfg.nodes if node.index != boundary_node]
    while worklist:
        index = worklist.pop(0)
        node = cfg.nodes[index]
        sources = inputs(node)
        if sources:
            value = after[next(iter(sources))]
            for src in list(sources)[1:]:
                value = analysis.join(value, after[src])
        else:
            # Unreachable from the boundary; keep the optimistic value.
            value = analysis.initial()
        before[index] = value
        new_after = analysis.transfer(node, value)
        if new_after != after[index]:
            after[index] = new_after
            for dependent in (node.succ if forward else node.pred):
                if dependent not in worklist:
                    worklist.append(dependent)
    return {
        node.index: NodeValues(before=before.get(node.index, analysis.initial()), after=after[node.index])
        for node in cfg.nodes
    }


class GenKillAnalysis(DataflowAnalysis[frozenset]):
    """Set-based problems: ``transfer(v) = (v - kill) | gen`` per node.

    Subclasses implement :meth:`gen` and :meth:`kill`; ``may`` selects
    union-join (may-analysis, empty boundary) versus intersection-join
    (must-analysis, where :meth:`universe` seeds the optimistic value).
    """

    may: bool = True

    def gen(self, node: CFGNode) -> frozenset:
        return frozenset()

    def kill(self, node: CFGNode) -> frozenset:
        return frozenset()

    def universe(self) -> frozenset:
        """Top for must-analyses (ignored when ``may``)."""
        return frozenset()

    def boundary(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset() if self.may else self.universe()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b if self.may else a & b

    def transfer(self, node: CFGNode, value: frozenset) -> frozenset:
        return (value - self.kill(node)) | self.gen(node)


# ---------------------------------------------------------------------------
# the lockset domain

ACQUIRE_METHODS = {"acquire", "acquire_pair"}
RELEASE_METHODS = {"release", "release_all"}


def lock_receiver(node: ast.expr) -> bool:
    """The codebase's LockManager naming convention: the receiver's final
    name contains ``lock`` (``self.locks``, ``fs.locks``, a local
    ``lock_mgr``); ``self.acquire`` inside LockManager itself does not
    match and is exempt by construction."""
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    return False


def lock_call(node: ast.AST, methods: set[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in methods
        and lock_receiver(node.func.value)
    )


def ordered_calls(payload: tuple[ast.AST, ...]) -> list[ast.Call]:
    """Every call in a node's payload, in source order."""
    calls = [
        inner
        for part in payload
        for inner in ast.walk(part)
        if isinstance(inner, ast.Call)
    ]
    calls.sort(key=lambda c: (getattr(c, "lineno", 0), getattr(c, "col_offset", 0)))
    return calls


def acquire_tokens(call: ast.Call) -> frozenset[str]:
    """Lock identities taken by one acquire call: the unparsed argument
    expressions (``acquire_pair`` takes both)."""
    if not call.args:
        return frozenset()
    if call.func.attr == "acquire_pair":  # type: ignore[union-attr]
        return frozenset(ast.unparse(arg) for arg in call.args[:2])
    return frozenset({ast.unparse(call.args[0])})


def apply_lock_call(held: frozenset[str], call: ast.Call) -> frozenset[str]:
    """One acquire/release applied to a may-held lockset."""
    if lock_call(call, ACQUIRE_METHODS):
        return held | acquire_tokens(call)
    if lock_call(call, RELEASE_METHODS):
        if call.func.attr == "release_all":  # type: ignore[union-attr]
            return frozenset()
        if call.args:
            return held - {ast.unparse(call.args[0])}
    return held


class LocksetAnalysis(DataflowAnalysis[frozenset]):
    """Forward may-held lockset: which lock tokens *can* be held at each
    program point.  Join is union — a lock held on any path into a node
    counts, which is the conservative direction for ordering checks."""

    direction = FORWARD

    def boundary(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, value: frozenset) -> frozenset:
        for call in ordered_calls(node.payload):
            value = apply_lock_call(value, call)
        return value


class CallMarkerAnalysis(DataflowAnalysis[bool]):
    """Forward must-analysis: "has a marker call definitely executed on
    *every* path from entry to here?"  JOURNAL-BEFORE-WRITE instantiates
    this with journal commit/append markers."""

    direction = FORWARD

    def __init__(self, is_marker: Callable[[ast.Call], bool]):
        self.is_marker = is_marker

    def boundary(self) -> bool:
        return False

    def initial(self) -> bool:
        return True  # optimistic top; AND-join erodes it

    def join(self, a: bool, b: bool) -> bool:
        return a and b

    def transfer(self, node: CFGNode, value: bool) -> bool:
        if value:
            return True
        return any(self.is_marker(call) for call in ordered_calls(node.payload))


class ReleaseOnAllPathsAnalysis(DataflowAnalysis[bool]):
    """Backward must-analysis: "does every path from here to EXIT pass a
    release call?"  The CFG's exceptional edges make this the honest
    version of LOCK-RELEASE: a release after the try block does not
    cover the unwinding path, a release in the ``finally`` does."""

    direction = BACKWARD

    def boundary(self) -> bool:
        return False  # at EXIT, no release lies ahead

    def initial(self) -> bool:
        return True

    def join(self, a: bool, b: bool) -> bool:
        return a and b

    def transfer(self, node: CFGNode, value: bool) -> bool:
        if any(lock_call(call, RELEASE_METHODS) for call in ordered_calls(node.payload)):
            return True
        return value
