"""Intraprocedural control-flow graphs for raelint's flow rules.

:func:`build_cfg` turns one ``ast.FunctionDef`` into a :class:`CFG`: one
node per *statement* (plus synthetic entry/exit and join nodes), edges
for every way control can move between them.  Two properties matter for
the rules built on top:

* **Exceptional edges are first-class.**  Every statement node gets an
  edge to the innermost exception continuation — the enclosing ``try``'s
  handler dispatch, its ``finally``, or the function EXIT (an uncaught
  exception unwinds the frame).  This is deliberately conservative (any
  statement *may* raise: hooks fire mid-call, checksum parses throw), and
  it is exactly what makes the LOCK-RELEASE must-analysis honest: a
  release that only happens on the fall-through path does not dominate
  the exceptional exits, so it does not count.
* **Compound headers, not bodies, live in the node.**  A node for an
  ``if``/``while``/``for``/``with`` statement carries only its header
  expressions in :attr:`CFGNode.payload` (the test, the iterable, the
  context managers); the nested statements get their own nodes.  Transfer
  functions can therefore ``ast.walk`` a node's payload without ever
  seeing another node's code.  Nested ``def``/``class`` bodies are opaque
  — they execute at call time, in their own CFG.

``finally`` is modeled as a single block whose exits fan out to every
continuation the protected code can reach (fall-through, the enclosing
exception target, and the break/continue/return targets actually present
in the protected region).  That merges paths a duplicating builder would
keep separate — an over-approximation, which for the must-analyses built
here errs toward reporting, never toward silence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


@dataclass
class CFGNode:
    """One CFG vertex.

    ``stmt`` is the owning statement (``None`` for synthetic nodes) and
    is what findings anchor their line numbers to.  ``payload`` holds the
    AST fragments that execute *at* this node.
    """

    index: int
    kind: str  # "entry" | "exit" | "stmt" | "branch" | "loop" | "dispatch" | "join" | "with"
    stmt: ast.stmt | None = None
    payload: tuple[ast.AST, ...] = ()
    succ: set[int] = field(default_factory=set)
    pred: set[int] = field(default_factory=set)

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """The graph for one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.nodes: list[CFGNode] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self._stmt_node: dict[int, int] = {}  # id(stmt) -> node index

    def _new(self, kind: str, stmt: ast.stmt | None = None, payload: tuple[ast.AST, ...] = ()) -> int:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt, payload=payload)
        self.nodes.append(node)
        if stmt is not None:
            self._stmt_node[id(stmt)] = node.index
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        self.nodes[src].succ.add(dst)
        self.nodes[dst].pred.add(src)

    def node_of(self, stmt: ast.stmt) -> CFGNode | None:
        """The node that owns ``stmt``, if ``stmt`` is a direct statement
        of this function (not of a nested def)."""
        index = self._stmt_node.get(id(stmt))
        return self.nodes[index] if index is not None else None

    # -- queries used by rules and tests --------------------------------

    def reachable_from(self, start: int) -> set[int]:
        seen = {start}
        stack = [start]
        while stack:
            for succ in self.nodes[stack.pop()].succ:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def has_path(self, src: int, dst: int) -> bool:
        return dst in self.reachable_from(src)


@dataclass(frozen=True)
class _Ctx:
    """Where abrupt completions go, at the current nesting depth."""

    exc: int  # exception continuation
    ret: int  # `return` continuation (EXIT, or the enclosing finally)
    brk: int | None = None  # `break` continuation
    cont: int | None = None  # `continue` continuation


def _abrupt_kinds(stmts: list[ast.stmt]) -> set[str]:
    """Which abrupt completions appear in ``stmts`` (not entering nested
    function/class bodies — their control flow is their own)."""
    found: set[str] = set()
    stack: list[ast.AST] = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Return):
            found.add("return")
        elif isinstance(node, ast.Break):
            found.add("break")
        elif isinstance(node, ast.Continue):
            found.add("continue")
        stack.extend(ast.iter_child_nodes(node))
    return found


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg

    def build(self) -> None:
        ctx = _Ctx(exc=self.cfg.exit, ret=self.cfg.exit)
        first = self._stmts(self.cfg.func.body, follow=self.cfg.exit, ctx=ctx)
        self.cfg._edge(self.cfg.entry, first)

    # ------------------------------------------------------------------

    def _stmts(self, stmts: list[ast.stmt], follow: int, ctx: _Ctx) -> int:
        """Wire a statement list; returns the entry node of the first
        statement (or ``follow`` for an empty list)."""
        entry = follow
        for stmt in reversed(stmts):
            entry = self._stmt(stmt, entry, ctx)
        return entry

    def _stmt(self, stmt: ast.stmt, follow: int, ctx: _Ctx) -> int:
        if isinstance(stmt, ast.If):
            return self._if(stmt, follow, ctx)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, follow, ctx)
        if isinstance(stmt, ast.Try) or (hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)):
            return self._try(stmt, follow, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, follow, ctx)
        if isinstance(stmt, ast.Return):
            node = self.cfg._new("stmt", stmt, payload=(stmt,))
            self.cfg._edge(node, ctx.ret)
            self.cfg._edge(node, ctx.exc)  # evaluating the value may raise
            return node
        if isinstance(stmt, ast.Raise):
            node = self.cfg._new("stmt", stmt, payload=(stmt,))
            self.cfg._edge(node, ctx.exc)
            return node
        if isinstance(stmt, ast.Break):
            node = self.cfg._new("stmt", stmt, payload=())
            self.cfg._edge(node, ctx.brk if ctx.brk is not None else self.cfg.exit)
            return node
        if isinstance(stmt, ast.Continue):
            node = self.cfg._new("stmt", stmt, payload=())
            self.cfg._edge(node, ctx.cont if ctx.cont is not None else self.cfg.exit)
            return node
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # The nested body runs at call time, in its own CFG; only the
            # decorators and defaults execute here.
            payload = tuple(stmt.decorator_list)
            node = self.cfg._new("stmt", stmt, payload=payload)
            self.cfg._edge(node, follow)
            self.cfg._edge(node, ctx.exc)
            return node
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, follow, ctx)
        # Simple statement: assignments, expressions, imports, asserts...
        node = self.cfg._new("stmt", stmt, payload=(stmt,))
        self.cfg._edge(node, follow)
        self.cfg._edge(node, ctx.exc)
        return node

    def _if(self, stmt: ast.If, follow: int, ctx: _Ctx) -> int:
        node = self.cfg._new("branch", stmt, payload=(stmt.test,))
        body = self._stmts(stmt.body, follow, ctx)
        self.cfg._edge(node, body)
        orelse = self._stmts(stmt.orelse, follow, ctx) if stmt.orelse else follow
        self.cfg._edge(node, orelse)
        self.cfg._edge(node, ctx.exc)
        return node

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor, follow: int, ctx: _Ctx) -> int:
        header: tuple[ast.AST, ...]
        if isinstance(stmt, ast.While):
            header = (stmt.test,)
        else:
            header = (stmt.iter, stmt.target)
        head = self.cfg._new("loop", stmt, payload=header)
        # `break` skips the else clause; normal exhaustion runs it.
        normal_exit = self._stmts(stmt.orelse, follow, ctx) if stmt.orelse else follow
        body_ctx = _Ctx(exc=ctx.exc, ret=ctx.ret, brk=follow, cont=head)
        body = self._stmts(stmt.body, head, body_ctx)
        self.cfg._edge(head, body)
        self.cfg._edge(head, normal_exit)
        self.cfg._edge(head, ctx.exc)
        return head

    def _with(self, stmt: ast.With | ast.AsyncWith, follow: int, ctx: _Ctx) -> int:
        payload = tuple(item.context_expr for item in stmt.items) + tuple(
            item.optional_vars for item in stmt.items if item.optional_vars is not None
        )
        node = self.cfg._new("with", stmt, payload=payload)
        body = self._stmts(stmt.body, follow, ctx)
        self.cfg._edge(node, body)
        self.cfg._edge(node, ctx.exc)
        return node

    def _match(self, stmt: ast.AST, follow: int, ctx: _Ctx) -> int:
        node = self.cfg._new("branch", stmt, payload=(stmt.subject,))
        for case in stmt.cases:
            self.cfg._edge(node, self._stmts(case.body, follow, ctx))
        self.cfg._edge(node, follow)  # no case may match
        self.cfg._edge(node, ctx.exc)
        return node

    def _try(self, stmt: ast.Try, follow: int, ctx: _Ctx) -> int:
        protected = stmt.body + [h for handler in stmt.handlers for h in handler.body] + stmt.orelse
        abrupt = _abrupt_kinds(protected)

        fin_entry: int | None = None
        if stmt.finalbody:
            # One finally block; its exits fan out to every continuation
            # the protected region can complete to.
            join = self.cfg._new("join", stmt)
            self.cfg._edge(join, follow)
            self.cfg._edge(join, ctx.exc)  # re-raise after finally
            if "return" in abrupt:
                self.cfg._edge(join, ctx.ret)
            if "break" in abrupt and ctx.brk is not None:
                self.cfg._edge(join, ctx.brk)
            if "continue" in abrupt and ctx.cont is not None:
                self.cfg._edge(join, ctx.cont)
            fin_entry = self._stmts(stmt.finalbody, join, ctx)

        after_protected = fin_entry if fin_entry is not None else follow
        escape = fin_entry if fin_entry is not None else ctx.exc

        if stmt.handlers:
            dispatch = self.cfg._new("dispatch", stmt)
            handler_ctx = _Ctx(
                exc=escape,
                ret=fin_entry if fin_entry is not None else ctx.ret,
                brk=fin_entry if fin_entry is not None and ctx.brk is not None else ctx.brk,
                cont=fin_entry if fin_entry is not None and ctx.cont is not None else ctx.cont,
            )
            for handler in stmt.handlers:
                self.cfg._edge(dispatch, self._stmts(handler.body, after_protected, handler_ctx))
            self.cfg._edge(dispatch, escape)  # no handler matched
            body_exc = dispatch
        else:
            body_exc = escape

        body_ctx = _Ctx(
            exc=body_exc,
            ret=fin_entry if fin_entry is not None else ctx.ret,
            brk=fin_entry if fin_entry is not None and ctx.brk is not None else ctx.brk,
            cont=fin_entry if fin_entry is not None and ctx.cont is not None else ctx.cont,
        )
        # else-clause exceptions are NOT caught by this try's handlers.
        orelse_ctx = _Ctx(exc=escape, ret=body_ctx.ret, brk=body_ctx.brk, cont=body_ctx.cont)
        orelse_entry = (
            self._stmts(stmt.orelse, after_protected, orelse_ctx) if stmt.orelse else after_protected
        )
        return self._stmts(stmt.body, orelse_entry, body_ctx)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the CFG for one function definition."""
    cfg = CFG(func)
    _Builder(cfg).build()
    return cfg


def function_defs(tree: ast.AST) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree``, nested ones included."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
