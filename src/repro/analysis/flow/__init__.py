"""raeflow: the flow-sensitive layer under raelint.

Three building blocks, composed by the flow rules in
:mod:`repro.analysis.rules`:

* :mod:`repro.analysis.flow.cfg` — intraprocedural CFGs with
  first-class exceptional edges;
* :mod:`repro.analysis.flow.dataflow` — a generic worklist solver plus
  the lockset / marker-domination domains;
* :mod:`repro.analysis.flow.callgraph` — a best-effort project call
  graph with transitive-reachability queries.
"""

from repro.analysis.flow.callgraph import CallGraph, DefInfo, render_chain
from repro.analysis.flow.cfg import CFG, CFGNode, build_cfg, function_defs
from repro.analysis.flow.dataflow import (
    BACKWARD,
    FORWARD,
    CallMarkerAnalysis,
    DataflowAnalysis,
    GenKillAnalysis,
    LocksetAnalysis,
    NodeValues,
    ReleaseOnAllPathsAnalysis,
    solve,
)

__all__ = [
    "BACKWARD",
    "CFG",
    "CFGNode",
    "CallGraph",
    "CallMarkerAnalysis",
    "DataflowAnalysis",
    "DefInfo",
    "FORWARD",
    "GenKillAnalysis",
    "LocksetAnalysis",
    "NodeValues",
    "ReleaseOnAllPathsAnalysis",
    "build_cfg",
    "function_defs",
    "render_chain",
    "solve",
]
