"""The shared-state model: which objects are reachable from multiple
threads/tasks, and under which locks each of their attributes is touched.

The model is the static half of an Eraser-style race detector.  It
answers two questions for the consuming rules:

1. **What is shared?**  A class is shared when the tree hands one of its
   bound methods (or an instance) to another thread of control — a
   ``threading.Thread(target=...)``, an executor ``submit``, an asyncio
   task creation — or when it is registered in the declared
   ``SHARED_CLASSES`` registry (``spec/concurrency.py``).  Each shared
   class carries a *seed reason*; findings repeat it so a reviewer can
   see why the checker believes the object escapes.
2. **Under what locks is each attribute touched?**  Every attribute
   access whose receiver resolves (via the call graph's type pass) to a
   shared class becomes an :class:`AccessSite` with the may-held lockset
   at that program point, computed by :class:`ConcurrencyLockset` — the
   PR 2 lockset domain extended with ``threading``-style no-argument
   ``lock.acquire()``/``release()`` pairs — plus the locks implied by
   enclosing ``with <lock>:`` blocks.

Two deliberate exemptions keep the model honest rather than noisy:

* accesses inside the owning class's ``__init__``/``__post_init__`` via
  ``self`` are exempt (Eraser's initialization window: the object cannot
  have escaped to a second thread while it is being constructed);
* container *reads* are reads, but calling a mutating method on an
  attribute (``self.entries.append(...)``) is a **write** to that
  attribute — supervisor-side state lives in dicts and lists, and a
  detector that only saw rebinding assignments would miss nearly all of
  it.

Lock tokens are compared by their final name component
(:func:`norm_token`): ``self._lock``, ``mgr._lock`` and a ``GUARDED_BY``
value of ``"self._lock"`` all normalize to ``_lock``.  That is a
deliberate over-approximation — two different locks with the same
attribute name alias — chosen because the codebase names locks uniquely
and the alternative (path-sensitive alias analysis) buys little here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.analysis.concurrency.declared import (
    ConcurrencyConfigError,
    ConcurrencyDecls,
    declared_concurrency,
)
from repro.analysis.engine import ParsedModule, RuleContext
from repro.analysis.flow.cfg import CFG
from repro.analysis.flow.dataflow import (
    ACQUIRE_METHODS,
    RELEASE_METHODS,
    DataflowAnalysis,
    lock_call,
    lock_receiver,
    ordered_calls,
    solve,
)
from repro.analysis.rules.shadow_reach import graph_for

#: Mutating container methods: calling one on a shared attribute is a
#: write access to that attribute (same philosophy as SHADOW-REACH's
#: cache-mutator list).
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "add", "update",
    "setdefault", "pop", "popitem", "popleft", "remove", "discard",
    "clear", "sort", "reverse", "push",
})

#: Thread-constructor names whose ``target=`` escapes to a new thread.
_THREAD_CLASS_NAMES = frozenset({"Thread", "Timer"})

#: Receiver-name hints for executor ``submit`` calls.
_EXECUTOR_HINTS = ("executor", "pool")

#: asyncio task-creation entry points (``asyncio.create_task(...)`` or a
#: loop/TaskGroup method): their coroutine argument runs in another task.
_TASK_METHODS = frozenset({"create_task", "ensure_future", "gather", "run_coroutine_threadsafe"})


def norm_token(text: str) -> str:
    """Normalize a lock token to its final name component."""
    return text.split("(")[0].split("[")[0].split(".")[-1].strip()


def apply_guard_call(held: frozenset[str], call: ast.Call) -> frozenset[str]:
    """One acquire/release applied to a normalized may-held lockset.

    Covers both lock idioms in the tree: the ``LockManager`` convention
    (``locks.acquire(ino)`` — token is the normalized argument) and the
    ``threading`` convention (``self._lock.acquire()`` with no arguments
    — token is the normalized receiver).
    """
    if lock_call(call, ACQUIRE_METHODS):
        if call.args:
            args = call.args[:2] if call.func.attr == "acquire_pair" else call.args[:1]  # type: ignore[union-attr]
            return held | {norm_token(ast.unparse(arg)) for arg in args}
        return held | {norm_token(ast.unparse(call.func.value))}  # type: ignore[union-attr]
    if lock_call(call, RELEASE_METHODS):
        if call.func.attr == "release_all":  # type: ignore[union-attr]
            return frozenset()
        if call.args:
            return held - {norm_token(ast.unparse(call.args[0]))}
        return held - {norm_token(ast.unparse(call.func.value))}  # type: ignore[union-attr]
    return held


class ConcurrencyLockset(DataflowAnalysis[frozenset]):
    """Forward may-held lockset over normalized tokens; the concurrency
    rules' shared instantiation of the PR 2 lockset domain."""

    direction = "forward"

    def boundary(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node, value: frozenset) -> frozenset:
        for call in ordered_calls(node.payload):
            value = apply_guard_call(value, call)
        return value


def own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every AST node in ``func``'s own body, not entering nested
    function/class/lambda bodies (those belong to their own defs)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def with_lock_tokens(
    module: ParsedModule, node: ast.AST, include_async: bool = True
) -> frozenset[str]:
    """Normalized tokens of lock-ish ``with`` context managers lexically
    enclosing ``node`` within its function.  ``include_async=False``
    restricts to sync ``with`` — AWAIT-HOLDING-LOCK uses that, because
    holding an ``asyncio.Lock`` across an await is the intended idiom."""
    tokens: set[str] = set()
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            break
        is_with = isinstance(ancestor, ast.With) or (
            include_async and isinstance(ancestor, ast.AsyncWith)
        )
        if is_with:
            for item in ancestor.items:
                if lock_receiver(item.context_expr):
                    tokens.add(norm_token(ast.unparse(item.context_expr)))
    return frozenset(tokens)


def enclosing_stmt(cfg: CFG, module: ParsedModule, node: ast.AST) -> ast.stmt | None:
    """The innermost statement owning ``node`` that has a CFG node."""
    cursor: ast.AST | None = node
    while cursor is not None:
        if isinstance(cursor, ast.stmt) and cfg.node_of(cursor) is not None:
            return cursor
        cursor = module.parent(cursor)
    return None


def lockset_at(
    cfg: CFG,
    values,
    module: ParsedModule,
    node: ast.AST,
) -> frozenset[str]:
    """The may-held lockset at ``node``'s program point: the fixpoint
    value *before* its statement, plus any acquire/release in the same
    statement positioned before the node itself."""
    stmt = enclosing_stmt(cfg, module, node)
    if stmt is None:
        return frozenset()
    cfg_node = cfg.node_of(stmt)
    held = values[cfg_node.index].before
    pos = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
    for call in ordered_calls(cfg_node.payload):
        if (getattr(call, "lineno", 0), getattr(call, "col_offset", 0)) < pos:
            held = apply_guard_call(held, call)
    return held


@dataclass
class AccessSite:
    """One attribute access on a shared class."""

    attr_key: str  # "Class.attr"
    def_key: str  # enclosing definition
    path: str
    line: int
    kind: str  # "read" | "write" | "rmw"
    held: frozenset[str]  # normalized may-held lockset (incl. with-blocks)
    node: ast.AST  # the ast.Attribute access itself
    in_async: bool = False  # enclosing def is async


class SharedStateModel:
    """Shared classes, their seed reasons, and every access site."""

    def __init__(self, modules: Sequence[ParsedModule], decls: ConcurrencyDecls, graph):
        self.modules = modules
        self.decls = decls
        self.graph = graph
        self.by_path = {module.path: module for module in modules}
        #: class key -> human-readable reason the class is shared
        self.shared: dict[str, str] = {}
        #: "Class.attr" -> access sites, source order
        self.accesses: dict[str, list[AccessSite]] = {}
        #: "Class.attr" -> declared guard token (resolved by simple name)
        self.guards: dict[str, str] = dict(decls.guards)
        self._class_attr_names: dict[str, set[str]] = {}
        self._validate_and_seed_registry()
        self._seed_escapes()
        self._collect_accesses()

    # -- seeding -------------------------------------------------------

    def _classes_named(self, name: str) -> list[str]:
        return sorted(
            key
            for key, info in self.graph.classes.items()
            if info.qualname == name or info.qualname.endswith("." + name)
        )

    def _attr_names(self, class_key: str) -> set[str]:
        """Every attribute name the class declares or assigns: class-body
        annotations/assignments (dataclass fields) plus any ``self.x``
        mention in its methods."""
        cached = self._class_attr_names.get(class_key)
        if cached is not None:
            return cached
        names: set[str] = set()
        info = self.graph.classes[class_key]
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
            elif isinstance(stmt, ast.Assign):
                names.update(t.id for t in stmt.targets if isinstance(t, ast.Name))
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                names.add(node.attr)
        self._class_attr_names[class_key] = names
        return names

    def _validate_and_seed_registry(self) -> None:
        spec_path = self.decls.module.path
        for name in self.decls.shared_classes:
            keys = self._classes_named(name)
            if not keys:
                raise ConcurrencyConfigError(
                    spec_path,
                    self.decls.line_of(name),
                    f"SHARED_CLASSES names unknown class {name!r} "
                    f"(not defined anywhere in the analyzed tree)",
                )
            for key in keys:
                self.shared.setdefault(key, "declared in SHARED_CLASSES (spec/concurrency.py)")
        for decl in self.decls.guards:
            cls_name, attr = decl.split(".")
            keys = self._classes_named(cls_name)
            if not keys:
                raise ConcurrencyConfigError(
                    spec_path,
                    self.decls.line_of(decl),
                    f"GUARDED_BY declares a guard for unknown class {cls_name!r}",
                )
            if not any(attr in self._attr_names(key) for key in keys):
                raise ConcurrencyConfigError(
                    spec_path,
                    self.decls.line_of(decl),
                    f"GUARDED_BY declares a guard for nonexistent attribute "
                    f"{decl!r} ({cls_name} has no such attribute) — a guard "
                    f"that cannot bind protects nothing",
                )

    def _mark_shared(self, class_key: str | None, reason: str) -> None:
        if class_key is not None and class_key in self.graph.classes:
            self.shared.setdefault(class_key, reason)

    def _escaping_exprs(self, call: ast.Call) -> tuple[str, list[ast.expr]] | None:
        """If ``call`` hands work to another thread/task, the escaping
        expressions (callables and their arguments), with a seed kind."""
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name in _THREAD_CLASS_NAMES:
            escapes: list[ast.expr] = []
            for kw in call.keywords:
                if kw.arg == "target":
                    escapes.append(kw.value)
                elif kw.arg in ("args", "kwargs") and isinstance(kw.value, (ast.Tuple, ast.List)):
                    escapes.extend(kw.value.elts)
            if escapes:
                return "threading.Thread target", escapes
            return None
        if isinstance(func, ast.Attribute) and name == "submit":
            receiver = func.value
            final = receiver.attr if isinstance(receiver, ast.Attribute) else getattr(receiver, "id", "")
            if any(hint in final.lower() for hint in _EXECUTOR_HINTS):
                return "executor submit", list(call.args) + [kw.value for kw in call.keywords]
            return None
        if name in _TASK_METHODS:
            is_asyncio = (
                isinstance(func, ast.Attribute)
                or name in ("gather",)  # bare `gather(...)` after from-import
            )
            if is_asyncio:
                return "asyncio task creation", list(call.args)
        return None

    def _seed_from_expr(self, def_key: str, locals_types: dict[str, str], expr: ast.expr, reason: str) -> None:
        if isinstance(expr, (ast.Tuple, ast.List)):
            for elt in expr.elts:
                self._seed_from_expr(def_key, locals_types, elt, reason)
            return
        if isinstance(expr, ast.Starred):
            self._seed_from_expr(def_key, locals_types, expr.value, reason)
            return
        if isinstance(expr, ast.Await):
            self._seed_from_expr(def_key, locals_types, expr.value, reason)
            return
        if isinstance(expr, ast.Call):
            # A coroutine call handed to create_task: the receiver of the
            # called method escapes, and so do the call's own arguments.
            if isinstance(expr.func, ast.Attribute):
                self._mark_shared(
                    self.graph.expr_class(def_key, expr.func.value, locals_types), reason
                )
            for arg in expr.args:
                self._seed_from_expr(def_key, locals_types, arg, reason)
            return
        if isinstance(expr, ast.Attribute):
            # A bound method `obj.worker`: obj's class escapes.
            self._mark_shared(self.graph.expr_class(def_key, expr.value, locals_types), reason)
            return
        if isinstance(expr, ast.Name):
            self._mark_shared(self.graph.expr_class(def_key, expr, locals_types), reason)

    def _seed_escapes(self) -> None:
        for def_key in sorted(self.graph.defs):
            info = self.graph.defs[def_key]
            locals_types: dict[str, str] | None = None
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                escaping = self._escaping_exprs(node)
                if escaping is None:
                    continue
                kind, exprs = escaping
                if locals_types is None:
                    locals_types = self.graph.local_types(def_key)
                reason = f"escapes via {kind} at {info.path}:{node.lineno}"
                for expr in exprs:
                    self._seed_from_expr(def_key, locals_types, expr, reason)

    # -- access collection ---------------------------------------------

    def _attr_key(self, class_key: str, attr: str) -> str:
        info = self.graph.classes[class_key]
        simple = info.qualname.split(".")[-1]
        return f"{simple}.{attr}"

    def _access_kind(self, module: ParsedModule, node: ast.Attribute) -> str | None:
        if isinstance(node.ctx, ast.Store):
            parent = module.parent(node)
            if isinstance(parent, ast.AugAssign) and parent.target is node:
                return "rmw"
            return "write"
        if isinstance(node.ctx, ast.Del):
            return "write"
        parent = module.parent(node)
        if (
            isinstance(parent, ast.Attribute)
            and parent.value is node
            and parent.attr in MUTATOR_METHODS
        ):
            grand = module.parent(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                return "write"
        return "read"

    def _collect_accesses(self) -> None:
        if not self.shared:
            return
        for def_key in sorted(self.graph.defs):
            info = self.graph.defs[def_key]
            module = self.by_path.get(info.path)
            if module is None:
                continue
            in_init = info.class_key in self.shared and info.name in ("__init__", "__post_init__")
            locals_types: dict[str, str] | None = None
            sites: list[tuple[str, ast.Attribute, str]] = []
            for node in own_nodes(info.node):
                if not isinstance(node, ast.Attribute):
                    continue
                if locals_types is None:
                    locals_types = self.graph.local_types(def_key)
                owner = self.graph.expr_class(def_key, node.value, locals_types)
                if owner is None or owner not in self.shared:
                    continue
                # Initialization window: `self.x = ...` inside the shared
                # class's own __init__ happens before the object can
                # escape to a second thread.
                if (
                    in_init
                    and owner == info.class_key
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    continue
                kind = self._access_kind(module, node)
                if kind is None:
                    continue
                sites.append((self._attr_key(owner, node.attr), node, kind))
            if not sites:
                continue
            cfg = self._cfg(info.node)
            values = solve(cfg, ConcurrencyLockset())
            is_async = isinstance(info.node, ast.AsyncFunctionDef)
            for attr_key, node, kind in sites:
                held = lockset_at(cfg, values, module, node) | with_lock_tokens(module, node)
                self.accesses.setdefault(attr_key, []).append(
                    AccessSite(
                        attr_key=attr_key,
                        def_key=def_key,
                        path=info.path,
                        line=getattr(node, "lineno", info.line),
                        kind=kind,
                        held=held,
                        node=node,
                        in_async=is_async,
                    )
                )
        for sites in self.accesses.values():
            sites.sort(key=lambda s: (s.path, s.line))

    # The model is built either under a RuleContext (engine runs, CFGs
    # shared with the flow rules) or standalone (direct library use).
    _context: RuleContext | None = None

    def _cfg(self, func):
        if self._context is not None:
            return self._context.cfg(func)
        from repro.analysis.flow.cfg import build_cfg

        return build_cfg(func)

    # -- queries -------------------------------------------------------

    def reason(self, attr_key: str) -> str:
        """Why the owning class of ``attr_key`` is considered shared."""
        simple = attr_key.split(".")[0]
        for key in self._classes_named(simple):
            if key in self.shared:
                return self.shared[key]
        return "shared"

    def shared_attr_keys(self) -> list[str]:
        return sorted(self.accesses)


# One model per module set, mirroring graph_for/summaries_for: rules
# running under the engine share the RuleContext store; the module-level
# cache covers direct invocation (unit tests, library callers).
_MODEL_CACHE: list[tuple[Sequence[ParsedModule], SharedStateModel | None]] = []


def model_for(
    modules: Sequence[ParsedModule], context: RuleContext | None = None
) -> SharedStateModel | None:
    """The shared-state model for ``modules``, or ``None`` when the tree
    declares no concurrency spec.  Raises
    :class:`ConcurrencyConfigError` on unbindable declarations."""
    if context is not None:
        key = ("concurrency-model", id(modules))
        if key in context.shared:
            return context.shared[key]
        model = _build(modules, context)
        context.shared[key] = model
        return model
    for cached_modules, model in _MODEL_CACHE:
        if cached_modules is modules:
            return model
    model = _build(modules, None)
    _MODEL_CACHE.append((modules, model))
    del _MODEL_CACHE[:-2]
    return model


def _build(
    modules: Sequence[ParsedModule], context: RuleContext | None
) -> SharedStateModel | None:
    decls = declared_concurrency(modules)
    if decls is None:
        return None
    graph = graph_for(modules, context)
    model = SharedStateModel.__new__(SharedStateModel)
    model._context = context
    model.__init__(modules, decls, graph)
    return model
