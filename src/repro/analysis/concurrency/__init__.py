"""Concurrency-safety analysis for raelint — the fourth analysis layer.

The ROADMAP's next arc is explicitly concurrent: an asyncio multi-tenant
front-end over the supervisor, sharded replay and parallel fsck, and
multi-volume federation.  None of that parallelism touches the shadow —
SHADOW-PURITY keeps it sequential and import-clean by construction,
which is the paper's trust argument — but the *supervisor side* grows
threads, executor pools, and event loops, and those need the same
"verified at lint time" treatment the first five PRs gave purity, lock
discipline, and contracts.

Three pieces, layered on the PR 2 CFG/dataflow/call-graph machinery:

* :mod:`repro.analysis.concurrency.declared` — extraction of the
  declared concurrency spec from ``spec/concurrency.py``: the
  ``SHARED_CLASSES`` registry (classes whose instances are reachable
  from more than one thread or task) and the ``GUARDED_BY`` map (which
  lock must protect each shared attribute).  Both are pure literals,
  like ``OP_CONTRACTS``.  A declaration that names a nonexistent class
  or attribute is a *configuration error* (exit 2), not a finding — a
  guard that cannot bind protects nothing.
* :mod:`repro.analysis.concurrency.model` — the shared-state model: it
  seeds shared classes from ``threading.Thread`` targets, executor
  ``submit`` calls, asyncio task creation, and the declared registry,
  then collects every attribute access site on a shared class together
  with the Eraser-style may-held lockset at that site.
* the four consuming rules in :mod:`repro.analysis.rules` —
  RACE-LOCKSET, ATOMIC-RMW, ASYNC-BLOCKING, and AWAIT-HOLDING-LOCK.
"""

from __future__ import annotations

from repro.analysis.concurrency.declared import (
    GUARD_SINGLE_THREADED,
    ConcurrencyConfigError,
    ConcurrencyDecls,
    declared_concurrency,
)
from repro.analysis.concurrency.model import (
    AccessSite,
    SharedStateModel,
    apply_guard_call,
    lockset_at,
    model_for,
    norm_token,
    with_lock_tokens,
)

__all__ = [
    "AccessSite",
    "ConcurrencyConfigError",
    "ConcurrencyDecls",
    "GUARD_SINGLE_THREADED",
    "SharedStateModel",
    "apply_guard_call",
    "declared_concurrency",
    "lockset_at",
    "model_for",
    "norm_token",
    "with_lock_tokens",
]
