"""Extraction of the declared concurrency spec from the analyzed tree.

Like the contract rules, the concurrency rules *parse* their
declarations out of the tree (``spec/concurrency.py``) rather than
importing the runtime module, so they work on the synthetic fixture
trees the test suite builds under ``tmp_path`` and are silent on trees
that declare nothing.

Two literals are recognized:

* ``SHARED_CLASSES`` — a tuple of class names whose instances are (or
  are about to be) reachable from more than one thread or task.  The
  registry complements the model's *inferred* seeds (``threading.Thread``
  targets, executor submits, asyncio task creation): registering a class
  turns the checks on **before** the concurrent caller lands, which is
  the whole point — the parallel-recovery arc inherits a race detector
  on day one.
* ``GUARDED_BY`` — ``{"Class.attr": "lock token"}``.  The token names
  the lock that must be in the may-held lockset at every write of the
  attribute (``"self._lock"`` matches both ``self._lock.acquire()`` /
  ``with self._lock:`` idioms; tokens compare by their final name
  component, see :func:`repro.analysis.concurrency.model.norm_token`).
  The sentinel :data:`GUARD_SINGLE_THREADED` declares an attribute
  intentionally unsynchronized while its owner is still driven by one
  thread — a written-down, argued sanction, exactly like
  ``shadow_extra`` in the contract table, that must flip to a real lock
  token when the concurrent front-end lands.

Misdeclarations raise :class:`ConcurrencyConfigError`, which the CLI
reports as exit code 2: a guard that names a class or attribute that
does not exist protects nothing, and silently skipping it would let the
registry rot.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Sequence

from repro.analysis.engine import ParsedModule

#: Sentinel guard: the attribute is declared shared for the coming arc
#: but its owner is single-threaded today; accesses are sanctioned until
#: a real lock token replaces this.
GUARD_SINGLE_THREADED = "<single-threaded>"

_CONCURRENCY_FILENAME = "concurrency.py"


class ConcurrencyConfigError(Exception):
    """A ``SHARED_CLASSES``/``GUARDED_BY`` declaration that cannot bind
    to the analyzed tree.  Reported by the CLI as exit 2 (configuration
    error), never as a finding."""

    def __init__(self, path: str, line: int, message: str):
        self.path = path
        self.line = line
        super().__init__(f"{path}:{line}: {message}")


@dataclass
class ConcurrencyDecls:
    """The parsed concurrency spec of one analyzed tree."""

    module: ParsedModule
    shared_classes: tuple[str, ...] = ()
    guards: dict[str, str] = field(default_factory=dict)  # "Class.attr" -> token
    lines: dict[str, int] = field(default_factory=dict)  # decl -> source line

    def line_of(self, decl: str) -> int:
        return self.lines.get(decl, 1)


def _spec_module(modules: Sequence[ParsedModule]) -> ParsedModule | None:
    for module in modules:
        path = PurePosixPath(module.path)
        if path.name == _CONCURRENCY_FILENAME and "spec" in path.parts:
            return module
    return None


def declared_concurrency(modules: Sequence[ParsedModule]) -> ConcurrencyDecls | None:
    """The ``SHARED_CLASSES``/``GUARDED_BY`` literals from
    ``spec/concurrency.py``, or ``None`` when the tree declares no
    concurrency spec (the rules are then not applicable)."""
    module = _spec_module(modules)
    if module is None:
        return None
    decls = ConcurrencyDecls(module=module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "SHARED_CLASSES" in targets:
            try:
                value = ast.literal_eval(node.value)
            except ValueError:
                raise ConcurrencyConfigError(
                    module.path, node.lineno, "SHARED_CLASSES must be a pure literal"
                )
            if not isinstance(value, (tuple, list)) or not all(
                isinstance(item, str) and item for item in value
            ):
                raise ConcurrencyConfigError(
                    module.path, node.lineno, "SHARED_CLASSES must be a tuple of class names"
                )
            decls.shared_classes = tuple(value)
            decls.lines["SHARED_CLASSES"] = node.lineno
            if isinstance(node.value, (ast.Tuple, ast.List)):
                for elt in node.value.elts:
                    try:
                        decls.lines[ast.literal_eval(elt)] = elt.lineno
                    except ValueError:  # pragma: no cover - guarded above
                        pass
        elif "GUARDED_BY" in targets:
            if not isinstance(node.value, ast.Dict):
                raise ConcurrencyConfigError(
                    module.path, node.lineno, "GUARDED_BY must be a literal dict"
                )
            for key_node, value_node in zip(node.value.keys, node.value.values):
                try:
                    key = ast.literal_eval(key_node) if key_node is not None else None
                    value = ast.literal_eval(value_node)
                except ValueError:
                    raise ConcurrencyConfigError(
                        module.path,
                        getattr(key_node, "lineno", node.lineno),
                        "GUARDED_BY entries must be pure literals",
                    )
                line = getattr(key_node, "lineno", node.lineno)
                if not isinstance(key, str) or key.count(".") != 1:
                    raise ConcurrencyConfigError(
                        module.path, line, f"GUARDED_BY key {key!r} is not 'Class.attr'"
                    )
                if not isinstance(value, str) or not value:
                    raise ConcurrencyConfigError(
                        module.path, line, f"GUARDED_BY[{key!r}] must be a lock token string"
                    )
                decls.guards[key] = value
                decls.lines[key] = line
    return decls
