"""The raelint rule engine.

The engine parses every ``.py`` file under an analysis root into a
:class:`ParsedModule` (source, AST, parent links, inline suppressions),
runs two kinds of rules over them, and folds the results through the
inline-suppression and baseline filters:

* :class:`FileRule` — examines one module at a time (purity, exception
  discipline, lock pairing);
* :class:`ProjectRule` — sees every module at once, for invariants that
  span files (the oplog recording chain, the hook-name registry).

Suppression syntax, modeled on the usual linter convention::

    self.hooks.fire(name)  # raelint: disable=HOOK-REGISTRY — reason

A directive on a comment-only line applies to the next line instead; the
id ``all`` disables every rule for that line.  Suppressions silence a
finding at its site; the baseline (:mod:`repro.analysis.baseline`)
accepts findings centrally without touching the flagged code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.findings import Finding, Severity

_SUPPRESS_RE = re.compile(r"#\s*raelint:\s*disable=([A-Za-z0-9_\-, ]+)")

#: Rule id attached to files the engine cannot parse.
PARSE_ERROR_RULE = "PARSE-ERROR"


@dataclass
class ParsedModule:
    """One source file, parsed and indexed for rule visitors."""

    path: str  # relative to the analysis root, '/'-separated
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: str, source: str) -> "ParsedModule":
        tree = ast.parse(source)
        module = cls(path=path, source=source, tree=tree)
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                module._parents[child] = parent
        module._index_suppressions()
        return module

    def _index_suppressions(self) -> None:
        lines = self.source.splitlines()
        for lineno, text in enumerate(lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            ids = {part.strip() for part in re.split(r"[,\s]", match.group(1)) if part.strip()}
            # A directive can name several ids; trailing prose after an
            # em-dash or '#' is already excluded by the character class.
            if text.lstrip().startswith("#"):
                # A comment-only directive governs the next line of *code*:
                # skip past blank lines and other comments (including further
                # directives, which stack onto the same code line).
                target = lineno + 1
                while target <= len(lines) and (
                    not lines[target - 1].strip()
                    or lines[target - 1].lstrip().startswith("#")
                ):
                    target += 1
            else:
                target = lineno
            self.suppressions.setdefault(target, set()).update(ids)

    def suppressed(self, line: int, rule_id: str) -> bool:
        active = self.suppressions.get(line, ())
        return rule_id in active or "all" in active

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)


class RuleContext:
    """Shared, memoized analysis artifacts for one analyzer run.

    The flow, contract, and concurrency rule families all want the same
    expensive intermediates — per-function CFGs, the project call graph,
    interprocedural summaries, the shared-state model.  Before this
    existed every rule rebuilt its own CFGs, so one ``make lint`` built
    each function's graph up to five times.  The :class:`Analyzer` now
    creates one context per run and installs it on every rule; rules
    reach shared artifacts through ``self.context``.

    * :meth:`cfg` memoizes per function *node* (identity), which is
      sound because the parsed trees are owned by the run that owns
      this context — the node cannot be reparsed underneath us.
    * :meth:`graph` memoizes the project call graph per module *list*
      (identity), matching how the engine hands the same sequence to
      every project rule.
    * :attr:`shared` is an open store for rule families to stash
      heavier derived artifacts (contract summaries, the concurrency
      shared-state model) under family-chosen keys.
    """

    def __init__(self) -> None:
        self._cfgs: dict[int, object] = {}
        self._graphs: list[tuple[Sequence["ParsedModule"], object]] = []
        self.shared: dict = {}

    def cfg(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        """The (memoized) CFG for one function definition."""
        cached = self._cfgs.get(id(func))
        if cached is None:
            from repro.analysis.flow.cfg import build_cfg

            cached = build_cfg(func)
            self._cfgs[id(func)] = cached
        return cached

    def graph(self, modules: Sequence["ParsedModule"]):
        """The (memoized) project call graph for one module set."""
        for cached_modules, graph in self._graphs:
            if cached_modules is modules:
                return graph
        from repro.analysis.flow.callgraph import CallGraph

        graph = CallGraph(modules)
        self._graphs.append((modules, graph))
        return graph


class Rule:
    """Base class: identity and metadata shared by both rule kinds."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""
    #: Rule family (``core``, ``contracts``, ``concurrency``,
    #: ``persistence``, ``commute``): ``--select`` accepts a family name
    #: as shorthand for every rule in it.
    family: str = "core"
    _context: RuleContext | None = None

    @property
    def context(self) -> RuleContext:
        """The run-shared :class:`RuleContext`.

        The engine installs one shared context before running the rule
        set; a rule invoked directly (unit tests, library use) lazily
        gets a private one, so ``self.context.cfg(...)`` is always safe.
        """
        if self._context is None:
            self._context = RuleContext()
        return self._context

    def finding(self, module: ParsedModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )


class FileRule(Rule):
    def check(self, module: ParsedModule) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        raise NotImplementedError


@dataclass
class Report:
    """The outcome of one analysis run."""

    files: int = 0
    findings: list[Finding] = field(default_factory=list)  # post-suppression
    new_findings: list[Finding] = field(default_factory=list)  # not in baseline
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.new_findings

    def summary(self) -> str:
        return (
            f"raelint: {self.files} files analyzed, "
            f"{len(self.findings)} findings "
            f"({self.suppressed} suppressed inline, {self.baselined} baselined), "
            f"{len(self.new_findings)} new"
        )


class Analyzer:
    """Run a rule set over a source tree.

    ``root`` may be a directory (analyzed recursively) or a single
    ``.py`` file.  Finding paths are relative to the directory root so
    the baseline is stable no matter where the tool is invoked from.
    """

    def __init__(
        self,
        root: str | Path,
        rules: Sequence[Rule] | None = None,
        baseline: Baseline | None = None,
        only_paths: Iterable[str] | None = None,
    ):
        from repro.analysis.rules import default_rules

        self.root = Path(root)
        self.rules = list(rules) if rules is not None else default_rules()
        self.baseline = baseline or Baseline()
        # Restrict *reporting* to these root-relative paths (None = all).
        # Project rules still parse and analyze the whole tree — cross-file
        # invariants are only meaningful over the full module set — but
        # file rules skip unselected modules and findings outside the
        # selection are dropped.
        self.only_paths = set(only_paths) if only_paths is not None else None

    def _source_files(self) -> list[Path]:
        if self.root.is_file():
            return [self.root]
        return sorted(p for p in self.root.rglob("*.py") if "__pycache__" not in p.parts)

    def _relpath(self, path: Path) -> str:
        if self.root.is_file():
            return path.name
        return path.relative_to(self.root).as_posix()

    def parse_all(self) -> tuple[list[ParsedModule], list[Finding]]:
        modules: list[ParsedModule] = []
        parse_errors: list[Finding] = []
        for path in self._source_files():
            relpath = self._relpath(path)
            source = path.read_text()
            try:
                modules.append(ParsedModule.parse(relpath, source))
            except SyntaxError as exc:
                parse_errors.append(
                    Finding(
                        path=relpath,
                        line=exc.lineno or 1,
                        rule_id=PARSE_ERROR_RULE,
                        severity=Severity.ERROR,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        return modules, parse_errors

    def _selected(self, path: str) -> bool:
        return self.only_paths is None or path in self.only_paths

    def run(self) -> Report:
        modules, parse_errors = self.parse_all()
        # One shared context per run: CFGs and the call graph are built
        # once and reused across every rule family (see RuleContext).
        context = RuleContext()
        for rule in self.rules:
            rule._context = context
        raw: list[Finding] = [f for f in parse_errors if self._selected(f.path)]
        for rule in self.rules:
            if isinstance(rule, ProjectRule):
                raw.extend(f for f in rule.check_project(modules) if self._selected(f.path))
            else:
                for module in modules:
                    if self._selected(module.path):
                        raw.extend(rule.check(module))

        report = Report(files=len(modules) + len(parse_errors))
        by_module = {module.path: module for module in modules}
        # Explicit sort key: Severity is not orderable, and the report
        # order must be stable for CI diffs and baseline regeneration.
        for finding in sorted(
            set(raw),
            key=lambda f: (f.path, f.line, f.rule_id, f.severity.value, f.message),
        ):
            module = by_module.get(finding.path)
            if module is not None and module.suppressed(finding.line, finding.rule_id):
                report.suppressed += 1
                continue
            report.findings.append(finding)
            if finding in self.baseline:
                report.baselined += 1
            else:
                report.new_findings.append(finding)
        return report


def analyze_tree(
    root: str | Path,
    baseline: str | Path | Baseline | None = None,
    rules: Sequence[Rule] | None = None,
) -> Report:
    """Library entry point: analyze ``root`` and return the report."""
    if baseline is None:
        resolved: Baseline | None = None
    elif isinstance(baseline, Baseline):
        resolved = baseline
    else:
        resolved = Baseline.load(baseline)
    return Analyzer(root, rules=rules, baseline=resolved).run()
