"""Baseline (ratchet) support for raelint.

A baseline is a checked-in list of *accepted* findings.  The CI gate
fails only on findings that are not in the baseline, so a rule can be
introduced against an imperfect tree and tightened over time: fix a
violation, regenerate the baseline, and the ratchet only ever moves
down.  Entries are keyed on ``(path, rule, message)`` — no line numbers,
so unrelated edits do not invalidate the file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding
from repro.util import atomic_write_json

BASELINE_FILENAME = "raelint.baseline.json"
_FORMAT_VERSION = 1


@dataclass
class Baseline:
    entries: set[tuple[str, str, str]] = field(default_factory=set)
    source: str | None = None

    def __contains__(self, finding: Finding) -> bool:
        return finding.baseline_key() in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls(source=str(path))
        payload = json.loads(path.read_text())
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported baseline version in {path}: {payload.get('version')!r}")
        entries = {
            (entry["path"], entry["rule"], entry["message"])
            for entry in payload.get("findings", [])
        }
        return cls(entries=entries, source=str(path))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(entries={f.baseline_key() for f in findings})

    def save(self, path: str | Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "findings": [
                {"path": p, "rule": r, "message": m}
                for p, r, m in sorted(self.entries)
            ],
        }
        # Stage-then-rename: an interrupted --update-baseline must never
        # truncate the committed ratchet file.  sort_keys=False keeps the
        # committed layout (version before findings; entries pre-sorted).
        atomic_write_json(path, payload, sort_keys=False)
