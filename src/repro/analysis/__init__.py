"""raelint — AST-based static analysis for RAE's structural invariants.

The paper's argument rests on structural discipline that, before this
package, was only enforced at runtime: the shadow must stay simple,
sequential, cache-free and never write to disk (``ShadowWriteAttempt``
catches violations only when they execute); the base must record every
state-separating operation before reporting success; locks must be
released on all paths; errors must flow through the catalog so the
detector can classify them; hook names must hit the registry or injected
faults silently never fire.  raelint checks all of that at lint time,
SquirrelFS-style, so invariant drift is caught in CI before it ever
reaches a fault-injection run.

Library API::

    from repro.analysis import analyze_tree
    report = analyze_tree("src/repro", baseline="raelint.baseline.json")
    assert report.clean, report.summary()

CLI::

    python -m repro.analysis src/repro --fail-on-findings

See docs/STATIC_ANALYSIS.md for the rule catalog, suppression syntax
(``# raelint: disable=RULE-ID``), and baseline workflow.
"""

from repro.analysis.baseline import BASELINE_FILENAME, Baseline
from repro.analysis.engine import (
    Analyzer,
    FileRule,
    ParsedModule,
    ProjectRule,
    Report,
    Rule,
    analyze_tree,
)
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import RULE_CLASSES, default_rules

__all__ = [
    "Analyzer",
    "analyze_tree",
    "Baseline",
    "BASELINE_FILENAME",
    "FileRule",
    "Finding",
    "ParsedModule",
    "ProjectRule",
    "Report",
    "Rule",
    "RULE_CLASSES",
    "Severity",
    "default_rules",
]
