"""Structured findings emitted by raelint rules.

A finding is one violation of one structural invariant: rule id,
severity, location (path relative to the analyzed root, 1-based line),
and a human-readable message.  Findings are value objects — the engine
sorts, deduplicates, suppresses, and baselines them by content, so they
are frozen and carry a stable :meth:`baseline_key` that deliberately
excludes the line number (baselined findings should not churn when
unrelated edits shift code up or down a file).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, order=True)
class Finding:
    path: str
    line: int
    rule_id: str
    severity: Severity
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.severity.value} [{self.rule_id}] {self.message}"

    def baseline_key(self) -> tuple[str, str, str]:
        """Line-independent identity used by the baseline file."""
        return (self.path, self.rule_id, self.message)

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "severity": self.severity.value,
            "message": self.message,
        }
