"""Persistence-effect analysis: the static half of crash consistency.

Builds an interprocedural model of every call site in ``basefs/``,
``ondisk/`` and ``blockdev/`` that transitively reaches ``write_block``
/ ``flush`` / journal ``commit``, classified by durability role
(journal write, commit record, barrier, checkpoint, data write) with
witness chains — on top of the flow layer's CFGs, dataflow solver and
call graph.  The FLUSH-BARRIER / PERSIST-ORDER / CRASH-HOOK-COVERAGE
rules and the ``--emit-crash-surface`` catalog are built on this model;
see ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analysis.persistence.declared import (
    PersistenceConfigError,
    PersistenceDecls,
    declared_persistence,
)
from repro.analysis.persistence.model import PersistenceModel, PersistPoint, model_for
from repro.analysis.persistence.surface import build_crash_surface, validate_crash_surface

__all__ = [
    "PersistenceConfigError",
    "PersistenceDecls",
    "declared_persistence",
    "PersistenceModel",
    "PersistPoint",
    "model_for",
    "build_crash_surface",
    "validate_crash_surface",
]
