"""The persistence-effect model: every durability-relevant call site in
``basefs/``, ``ondisk/`` and ``blockdev/``, classified and summarized.

The model is the static half of the crash-consistency story.  It answers
three questions for the consuming rules and the crash-surface catalog:

1. **Where are the persistence points?**  Every call site in scope that
   hits the device — ``write_block``, a device ``flush``, a blkmq
   submit, a cache writeback — becomes a :class:`PersistPoint` with a
   kind from the closed vocabulary (``journal-write`` / ``commit-record``
   / ``barrier`` / ``checkpoint`` / ``data-write``).  Kinds come from
   the declared ``WRITE_SITE_ROLES`` table (source-ordered, arity
   checked); an undeclared ``write_block`` defaults to ``checkpoint``,
   the kind FLUSH-BARRIER treats as dangerous, so mislabeling fails
   loud.  Delegation sites (a ``write_block`` method forwarding to an
   inner device's ``write_block``) are not points: the *call into* the
   device stack is the point, not the stack's plumbing.

2. **Can an unflushed commit record be overtaken?**  A forward dataflow
   per function tracks the set of ``(pending, no_barrier)`` states —
   ``pending`` is the location of a commit-record write not yet followed
   by a device flush; ``no_barrier`` records whether any barrier has
   happened since function entry.  Function summaries (normal-exit
   outcomes plus the earliest checkpoint-before-barrier site) compose
   through the PR-2 call graph to a fixpoint, so
   ``JournalWriter.append`` sealing its commit record with a flush makes
   ``JournalManager.commit``'s subsequent writeback provably safe — and
   removing that flush makes the writeback a FLUSH-BARRIER violation in
   the *caller*, with the callee named in the message.  Summaries join
   only **normal**-exit paths: an exception propagates past the call, so
   the caller's continuation never pairs with a callee path that raised.

3. **Can the sweep engine crash there?**  A persistence point is
   *hook-covered* when its function is reachable (call graph) from a
   function that fires a fault-injection hook (``*.fire("name")`` on a
   ``hook``-named receiver) — those are the sites ROADMAP item 3's
   crash sweep can interrupt.  Uncovered points must carry a
   ``PERSIST_SANCTIONS`` entry; a stale sanction exits 2.

Declarations that cannot bind to the tree raise
:class:`PersistenceConfigError` (CLI exit 2), never findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Sequence

from repro.analysis.engine import ParsedModule, RuleContext
from repro.analysis.flow.callgraph import CallGraph, DefInfo
from repro.analysis.flow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.flow.dataflow import FORWARD, DataflowAnalysis, ordered_calls, solve
from repro.analysis.persistence.declared import (
    PersistenceConfigError,
    PersistenceDecls,
    declared_persistence,
)
from repro.analysis.rules.shadow_reach import graph_for

#: Module path components that are in persistence scope.
SCOPE_PARTS = frozenset({"basefs", "ondisk", "blockdev"})

#: Receiver final-name hints that make a bare ``flush()`` a device
#: barrier (``self.device.flush()``, ``dev.flush()``, ...) rather than a
#: file/stream flush.
_DEVICE_RECEIVERS = frozenset({"device", "dev", "disk", "blkdev", "inner", "_inner", "blkmq"})

#: Method names the primitive classifier owns; a def with one of these
#: names forwarding to the same-named method is delegation, not a point.
_PRIMITIVE_METHODS = frozenset({
    "write_block", "flush", "submit_write", "submit_flush", "writeback", "writeback_some",
})


def in_scope(path: str) -> bool:
    return bool(SCOPE_PARTS & set(PurePosixPath(path).parts))


def _method_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _receiver_final(call: ast.Call) -> str | None:
    """Final name component of the call's receiver (``self.device.flush``
    -> ``device``), or ``None`` for plain-name calls."""
    if not isinstance(call.func, ast.Attribute):
        return None
    value = call.func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def event_name(call: ast.Call) -> str | None:
    """``receiver.method`` key for the DURABILITY_PROTOCOL events map
    (``self.writer.append(...)`` -> ``"writer.append"``)."""
    method = _method_name(call)
    if method is None:
        return None
    receiver = _receiver_final(call)
    return f"{receiver}.{method}" if receiver is not None else method


@dataclass(frozen=True)
class PersistPoint:
    """One classified durability-relevant call site."""

    kind: str
    path: str
    line: int
    func_key: str


@dataclass(frozen=True)
class FlushViolation:
    """A checkpoint/data write that can overtake an unflushed commit
    record on some path."""

    func_key: str
    path: str
    line: int  # anchor: the offending site (or the call into it)
    origin: tuple[str, int]  # the unflushed commit-record write
    site: tuple[str, int]  # the overtaking in-place write
    via: str | None  # callee qualname when the write is inside a callee


@dataclass(frozen=True)
class DefSummary:
    """Persistence effect of one function, for callers.

    ``outcomes`` — one ``(pending, barrier_done)`` pair per normal-exit
    path: ``pending`` is the commit-record write left unflushed at
    return (or ``None``), ``barrier_done`` whether the path executed a
    device flush.  ``cpb_site`` — the earliest checkpoint/data write
    that executes before *any* barrier since function entry (directly or
    transitively), i.e. the write a caller's pending commit record would
    race; ``None`` when every in-place write is behind a barrier.
    """

    outcomes: frozenset  # of (tuple[str, int] | None, bool)
    cpb_site: tuple[str, int] | None = None


#: Identity summary for unanalyzed callees: returns normally, no writes,
#: no barrier — composition leaves the caller's state untouched.
_NEUTRAL = DefSummary(outcomes=frozenset({(None, False)}))


def normal_exit_preds(cfg: CFG, compound_fallback: bool = False) -> list[int]:
    """EXIT predecessors that represent *normal* completion.

    Every statement node carries an exceptional edge to EXIT, so "is a
    pred of EXIT" alone means almost nothing.  The precise anchors are
    statement preds whose *sole* successor is EXIT (a ``return`` or the
    final statement falling off the end, but not a ``raise``) plus the
    entry node of an empty body.  Branch/loop/with preds are ambiguous —
    their EXIT edge may be the normal fall-off of a trailing compound
    statement *or* a mid-function exceptional edge — so they are
    excluded, **except** when ``compound_fallback`` is set and no
    precise anchor exists at all: a function whose body *ends* in a
    compound statement still returns, and summary composition must not
    treat it as never returning.
    """
    precise, compound = [], []
    for index in sorted(cfg.nodes[cfg.exit].pred):
        node = cfg.nodes[index]
        if node.kind == "entry":
            precise.append(index)
        elif node.kind == "stmt":
            if node.succ == {cfg.exit} and not isinstance(node.stmt, ast.Raise):
                precise.append(index)
        else:
            compound.append(index)
    if precise or not compound_fallback:
        return precise
    return compound


class _PendingRecordAnalysis(DataflowAnalysis):
    """May-analysis over ``(pending commit record, no barrier yet)``
    state sets; the transfer is delegated to the model so the reporting
    pass can rerun it with collection enabled."""

    direction = FORWARD

    def __init__(self, model: "PersistenceModel", plan: dict):
        self._model = model
        self._plan = plan

    def boundary(self) -> frozenset:
        return frozenset({(None, True)})

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, value: frozenset) -> frozenset:
        return self._model._step(self._plan, node, value, collect=None)


class PersistenceModel:
    """Classified points, composed summaries, violations and hook
    coverage for one analyzed tree."""

    def __init__(self, modules: Sequence[ParsedModule], decls: PersistenceDecls,
                 context: RuleContext | None = None):
        self.decls = decls
        self._context = context
        self.graph: CallGraph = graph_for(modules, context)
        #: in-scope defs, keyed like the call graph
        self.scope: dict[str, DefInfo] = {
            key: info for key, info in self.graph.defs.items() if in_scope(info.path)
        }
        #: def key -> {id(call): ("primitive", kind, (path, line)) | ("call", [keys])}
        self._plans: dict[str, dict] = {}
        self.points: list[PersistPoint] = []
        self.summaries: dict[str, DefSummary] = {}
        self.violations: list[FlushViolation] = []
        #: def key -> (hook name, parent key) for hook-reachable defs
        self._hook_parents: dict[str, tuple[str, str | None]] = {}
        #: op name -> entry def key
        self.entries: dict[str, str] = {}

        self._bind_declarations()
        self._build_plans()
        self._solve_summaries()
        self._collect_violations()
        self._compute_coverage()
        self._check_sanctions()

    # -- binding -------------------------------------------------------

    def _bound_defs(self, name: str) -> list[DefInfo]:
        """In-scope defs a declaration key binds to: exact qualname
        matches when any exist, else bare-name matches."""
        exact = [i for i in self.scope.values() if i.qualname == name]
        if exact:
            return sorted(exact, key=lambda i: i.key)
        return sorted(
            (i for i in self.scope.values() if i.name == name), key=lambda i: i.key
        )

    def _bind_declarations(self) -> None:
        decls = self.decls
        for table, keys in (
            ("DURABILITY_PROTOCOL", decls.protocols),
            ("WRITE_SITE_ROLES", decls.site_roles),
            ("PERSIST_SANCTIONS", decls.sanctions),
        ):
            for key in keys:
                if not self._bound_defs(key):
                    raise PersistenceConfigError(
                        decls.module.path, decls.line_of(key),
                        f"{table}[{key!r}] names no function in "
                        "basefs/ondisk/blockdev",
                    )
        for op, target in decls.entry_points.items():
            bound = self._bound_defs(target)
            if not bound:
                raise PersistenceConfigError(
                    decls.module.path, decls.line_of(f"entry:{op}"),
                    f"CRASH_ENTRY_POINTS[{op!r}] = {target!r} names no function "
                    "in basefs/ondisk/blockdev",
                )
            self.entries[op] = bound[0].key

    # -- classification ------------------------------------------------

    def _roles_for(self, info: DefInfo) -> tuple[str, ...] | None:
        roles = self.decls.site_roles.get(info.qualname)
        if roles is None:
            roles = self.decls.site_roles.get(info.name)
        return roles

    def _classify_primitive(self, info: DefInfo, call: ast.Call) -> str | None:
        method = _method_name(call)
        if method is None or method not in _PRIMITIVE_METHODS:
            return None
        if method == info.name:
            return None  # delegation: a wrapper forwarding to its inner device
        if method == "write_block":
            return "checkpoint"  # positional role applied by _build_plan
        if method == "flush":
            receiver = _receiver_final(call)
            if receiver is not None and receiver in _DEVICE_RECEIVERS:
                return "barrier"
            return None
        if method == "submit_write":
            return "data-write"
        if method == "submit_flush":
            return "barrier"
        # writeback / writeback_some on a cache-named receiver: an
        # in-place home write driven from outside the cache class.
        receiver = _receiver_final(call)
        if receiver is not None and "cache" in receiver:
            return "checkpoint"
        return None

    def _build_plans(self) -> None:
        graph = self.graph
        for key in sorted(self.scope):
            info = self.scope[key]
            plan: dict = {}
            callees_by_call = {
                id(call): [k for k in callees if k in self.scope]
                for call, callees in graph.call_edges(key)
            }
            calls = sorted(
                graph._own_calls(info.node),
                key=lambda c: (getattr(c, "lineno", 0), getattr(c, "col_offset", 0)),
            )
            write_sites = []
            for call in calls:
                kind = self._classify_primitive(info, call)
                if kind is not None:
                    loc = (info.path, getattr(call, "lineno", info.line))
                    plan[id(call)] = ("primitive", kind, loc)
                    if _method_name(call) == "write_block":
                        write_sites.append(call)
                elif callees_by_call.get(id(call)):
                    plan[id(call)] = ("call", callees_by_call[id(call)])
            roles = self._roles_for(info)
            if roles is not None:
                if len(roles) != len(write_sites):
                    line = self.decls.lines.get(
                        info.qualname, self.decls.lines.get(info.name, 1)
                    )
                    raise PersistenceConfigError(
                        self.decls.module.path,
                        line,
                        f"WRITE_SITE_ROLES for {info.qualname!r} declares "
                        f"{len(roles)} write_block sites, the function has "
                        f"{len(write_sites)}",
                    )
                for call, role in zip(write_sites, roles):
                    _, _, loc = plan[id(call)]
                    plan[id(call)] = ("primitive", role, loc)
            self._plans[key] = plan
            for action in plan.values():
                if action[0] == "primitive":
                    self.points.append(
                        PersistPoint(kind=action[1], path=action[2][0],
                                     line=action[2][1], func_key=key)
                    )
        self.points.sort(key=lambda p: (p.path, p.line, p.kind))

    # -- interprocedural summaries -------------------------------------

    def _cfg(self, func):
        if self._context is not None:
            return self._context.cfg(func)
        return build_cfg(func)

    def _step(self, plan: dict, node: CFGNode, states: frozenset,
              collect: dict | None) -> frozenset:
        """Transfer one CFG node; with ``collect`` set, also record
        FLUSH-BARRIER violations and checkpoint-before-barrier sites."""
        for call in ordered_calls(node.payload):
            action = plan.get(id(call))
            if action is None:
                continue
            if action[0] == "primitive":
                _, kind, loc = action
                if kind == "commit-record":
                    states = frozenset({(loc, nb) for _, nb in states})
                elif kind == "barrier":
                    states = frozenset({(None, False)}) if states else states
                elif kind in ("checkpoint", "data-write"):
                    if collect is not None:
                        for origin, nb in sorted(states, key=repr):
                            if origin is not None:
                                collect["violations"].append(
                                    (origin, loc, loc, None)
                                )
                        if any(nb for _, nb in states):
                            collect["cpb"].append(loc)
                # journal-write: redundant by design, no state change
            else:
                summaries = [self.summaries.get(k, _NEUTRAL) for k in action[1]]
                if collect is not None:
                    call_loc = (collect["path"], getattr(call, "lineno", 0))
                    for callee_key, summary in zip(action[1], summaries):
                        if summary.cpb_site is None:
                            continue
                        for origin, nb in sorted(states, key=repr):
                            if origin is not None:
                                collect["violations"].append(
                                    (origin, call_loc, summary.cpb_site, callee_key)
                                )
                        if any(nb for _, nb in states):
                            collect["cpb"].append(summary.cpb_site)
                new_states = set()
                for origin, nb in states:
                    for summary in summaries:
                        for pending, barrier_done in summary.outcomes:
                            new_origin = (
                                pending if pending is not None
                                else (None if barrier_done else origin)
                            )
                            new_states.add((new_origin, nb and not barrier_done))
                states = frozenset(new_states)
        return states

    def _summarize(self, key: str) -> DefSummary:
        info = self.scope[key]
        plan = self._plans[key]
        cfg = self._cfg(info.node)
        values = solve(cfg, _PendingRecordAnalysis(self, plan))
        outcomes = set()
        for pred in normal_exit_preds(cfg, compound_fallback=True):
            for origin, nb in values[pred].after:
                outcomes.add((origin, not nb))
        collect = {"violations": [], "cpb": [], "path": info.path}
        for node in cfg.nodes:
            self._step(plan, node, values[node.index].before, collect)
        cpb = min(collect["cpb"]) if collect["cpb"] else None
        return DefSummary(outcomes=frozenset(outcomes), cpb_site=cpb)

    def _solve_summaries(self) -> None:
        callers: dict[str, set[str]] = {key: set() for key in self.scope}
        for key, plan in self._plans.items():
            for action in plan.values():
                if action[0] == "call":
                    for callee in action[1]:
                        callers[callee].add(key)
        worklist = sorted(self.scope)
        queued = set(worklist)
        while worklist:
            key = worklist.pop(0)
            queued.discard(key)
            summary = self._summarize(key)
            if self.summaries.get(key) != summary:
                self.summaries[key] = summary
                for caller in sorted(callers.get(key, ())):
                    if caller not in queued:
                        worklist.append(caller)
                        queued.add(caller)

    def _collect_violations(self) -> None:
        seen = set()
        for key in sorted(self.scope):
            info = self.scope[key]
            plan = self._plans[key]
            cfg = self._cfg(info.node)
            values = solve(cfg, _PendingRecordAnalysis(self, plan))
            collect = {"violations": [], "cpb": [], "path": info.path}
            for node in cfg.nodes:
                self._step(plan, node, values[node.index].before, collect)
            for origin, anchor, site, via in collect["violations"]:
                marker = (key, origin, anchor, site, via)
                if marker in seen:
                    continue
                seen.add(marker)
                self.violations.append(FlushViolation(
                    func_key=key, path=info.path, line=anchor[1],
                    origin=origin, site=site, via=via,
                ))
        self.violations.sort(key=lambda v: (v.path, v.line, v.site, v.origin))

    # -- hook coverage -------------------------------------------------

    def _hook_firing_defs(self) -> list[tuple[str, str]]:
        """(hook name, def key) for every def whose own body fires a
        fault-injection hook: ``<...>.fire("name", ...)`` on a receiver
        whose final name mentions ``hook``."""
        seeds = []
        for key, info in sorted(self.graph.defs.items()):
            for call in self.graph._own_calls(info.node):
                if _method_name(call) != "fire":
                    continue
                receiver = _receiver_final(call)
                if receiver is None or "hook" not in receiver:
                    continue
                if not call.args:
                    continue
                first = call.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    seeds.append((first.value, key))
        return sorted(set(seeds))

    def _compute_coverage(self) -> None:
        queue: list[str] = []
        for hook, key in self._hook_firing_defs():
            if key not in self._hook_parents:
                self._hook_parents[key] = (hook, None)
                queue.append(key)
        while queue:
            current = queue.pop(0)
            hook = self._hook_parents[current][0]
            for callee in sorted(self.graph.edges.get(current, ())):
                if callee not in self._hook_parents:
                    self._hook_parents[callee] = (hook, current)
                    queue.append(callee)

    def covering_hook(self, func_key: str) -> str | None:
        entry = self._hook_parents.get(func_key)
        return entry[0] if entry is not None else None

    def hook_chain(self, func_key: str) -> list[str]:
        """Witness chain from the hook-firing def down to ``func_key``."""
        chain: list[str] = []
        cursor: str | None = func_key
        while cursor is not None:
            chain.append(cursor)
            entry = self._hook_parents.get(cursor)
            cursor = entry[1] if entry is not None else None
        return list(reversed(chain))

    def sanction_for(self, func_key: str) -> tuple[str, str] | None:
        """(sanction key, justification) covering ``func_key``, if any."""
        info = self.graph.defs.get(func_key)
        if info is None:
            return None
        for name in (info.qualname, info.name):
            if name in self.decls.sanctions:
                return name, self.decls.sanctions[name]
        return None

    def uncovered_points(self) -> list[PersistPoint]:
        """Points not reachable from any fault-injection hook, sanctioned
        or not (CRASH-HOOK-COVERAGE reports the unsanctioned ones)."""
        return [p for p in self.points if p.func_key not in self._hook_parents]

    def _check_sanctions(self) -> None:
        pointful: dict[str, list[PersistPoint]] = {}
        for point in self.points:
            pointful.setdefault(point.func_key, []).append(point)
        for name in sorted(self.decls.sanctions):
            bound = self._bound_defs(name)
            with_points = [i for i in bound if i.key in pointful]
            if not with_points:
                raise PersistenceConfigError(
                    self.decls.module.path, self.decls.line_of(name),
                    f"PERSIST_SANCTIONS[{name!r}] is stale: the function "
                    "contains no persistence points",
                )
            if all(i.key in self._hook_parents for i in with_points):
                raise PersistenceConfigError(
                    self.decls.module.path, self.decls.line_of(name),
                    f"PERSIST_SANCTIONS[{name!r}] is stale: every "
                    "persistence point in the function is already "
                    "hook-covered; drop the sanction",
                )

    # -- queries -------------------------------------------------------

    def plan_for(self, key: str) -> dict:
        """The classified call plan of one in-scope def (PERSIST-ORDER
        consumes the primitive kinds)."""
        return self._plans.get(key, {})

    def qualname(self, key: str) -> str:
        info = self.graph.defs.get(key)
        return info.qualname if info is not None else key


# One model per module set, mirroring graph_for/model_for in the other
# families: rules running under the engine share the RuleContext store;
# the module-level cache covers direct invocation.
_MODEL_CACHE: list = []


def model_for(
    modules: Sequence[ParsedModule], context: RuleContext | None = None
) -> PersistenceModel | None:
    """The persistence model for ``modules``, or ``None`` when the tree
    declares no persistence spec.  Raises
    :class:`PersistenceConfigError` on unbindable declarations."""
    if context is not None:
        key = ("persistence-model", id(modules))
        if key in context.shared:
            return context.shared[key]
        model = _build(modules, context)
        context.shared[key] = model
        return model
    for cached_modules, model in _MODEL_CACHE:
        if cached_modules is modules:
            return model
    model = _build(modules, None)
    _MODEL_CACHE.append((modules, model))
    del _MODEL_CACHE[:-2]
    return model


def _build(
    modules: Sequence[ParsedModule], context: RuleContext | None
) -> PersistenceModel | None:
    decls = declared_persistence(modules)
    if decls is None:
        return None
    return PersistenceModel(modules, decls, context)
