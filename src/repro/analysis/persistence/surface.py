"""The machine-readable crash surface: ``crashpoints.json``.

``raelint --emit-crash-surface`` serializes the persistence model into
the committed catalog ROADMAP item 3's fault-sweep engine consumes:
each entry names an op (a ``CRASH_ENTRY_POINTS`` root), the ordered
persistence points the op can reach, the ``file:line`` witness for each
point, and the fault-injection hook that covers it (or the sanction
that argues why none does).  CI regenerates the file and fails on
drift, so the sweep work-list can never silently fall behind the code.

The payload is fully deterministic: points sorted by ``(path, line,
kind)``, ops sorted by name, ``json.dumps(..., sort_keys=True)`` — two
emissions over the same tree are byte-identical.
"""

from __future__ import annotations

import json

from repro.analysis.flow.callgraph import render_chain
from repro.analysis.persistence.model import PersistenceModel

SURFACE_VERSION = 1

_POINT_FIELDS = {"ref", "kind", "path", "line", "function", "hook", "hook_chain", "sanction", "ops"}
_KINDS = {"journal-write", "commit-record", "barrier", "checkpoint", "data-write"}


def build_crash_surface(model: PersistenceModel) -> dict:
    """The ``crashpoints.json`` payload for ``model``."""
    graph = model.graph
    # Per-op reachability: which defs each crash entry can reach, plus
    # the parents map for witness chains.
    op_reach: dict[str, dict] = {}
    for op in sorted(model.entries):
        op_reach[op] = graph.reachable([model.entries[op]])

    points = []
    for point in model.points:
        ref = f"{point.path}:{point.line}"
        hook = model.covering_hook(point.func_key)
        sanction = model.sanction_for(point.func_key)
        ops = sorted(op for op, parents in op_reach.items() if point.func_key in parents)
        entry = {
            "ref": ref,
            "kind": point.kind,
            "path": point.path,
            "line": point.line,
            "function": model.qualname(point.func_key),
            "hook": hook,
            "hook_chain": (
                render_chain(graph, model.hook_chain(point.func_key))
                if hook is not None else None
            ),
            "sanction": sanction[1] if sanction is not None else None,
            "ops": ops,
        }
        points.append(entry)

    ops_payload = {}
    for op in sorted(model.entries):
        entry_key = model.entries[op]
        parents = op_reach[op]
        op_points = []
        for point in model.points:
            if point.func_key not in parents:
                continue
            op_points.append({
                "ref": f"{point.path}:{point.line}",
                "kind": point.kind,
                "chain": render_chain(graph, graph.chain(parents, point.func_key)),
            })
        ops_payload[op] = {
            "entry": model.qualname(entry_key),
            "entry_path": graph.defs[entry_key].path,
            "points": op_points,
        }

    return {
        "version": SURFACE_VERSION,
        "scope": sorted({"basefs", "ondisk", "blockdev"}),
        "points": points,
        "ops": ops_payload,
    }


def render_crash_surface(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def validate_crash_surface(payload: dict) -> None:
    """Schema check; raises ``ValueError`` on any malformation.  Used by
    both the emitting CLI (never write a bad catalog) and the tests
    (the committed copy stays well-formed)."""
    if not isinstance(payload, dict):
        raise ValueError("crash surface must be a JSON object")
    if payload.get("version") != SURFACE_VERSION:
        raise ValueError(f"crash surface version must be {SURFACE_VERSION}")
    if not isinstance(payload.get("scope"), list):
        raise ValueError("crash surface scope must be a list")
    points = payload.get("points")
    if not isinstance(points, list):
        raise ValueError("crash surface points must be a list")
    for entry in points:
        if not isinstance(entry, dict) or set(entry) != _POINT_FIELDS:
            raise ValueError(f"point entry fields must be {sorted(_POINT_FIELDS)}")
        if entry["kind"] not in _KINDS:
            raise ValueError(f"unknown point kind {entry['kind']!r}")
        if not isinstance(entry["path"], str) or not isinstance(entry["line"], int):
            raise ValueError("point path/line must be str/int")
        if entry["ref"] != f"{entry['path']}:{entry['line']}":
            raise ValueError(f"point ref {entry['ref']!r} does not match path:line")
        if entry["hook"] is None and entry["sanction"] is None:
            raise ValueError(
                f"point {entry['ref']} has neither a covering hook nor a sanction"
            )
        if not isinstance(entry["ops"], list):
            raise ValueError("point ops must be a list")
    ops = payload.get("ops")
    if not isinstance(ops, dict):
        raise ValueError("crash surface ops must be an object")
    refs = {entry["ref"] for entry in points}
    for op, body in ops.items():
        if not isinstance(body, dict) or set(body) != {"entry", "entry_path", "points"}:
            raise ValueError(f"op {op!r} must have entry/entry_path/points")
        for point in body["points"]:
            if set(point) != {"ref", "kind", "chain"}:
                raise ValueError(f"op {op!r} point fields must be ref/kind/chain")
            if point["ref"] not in refs:
                raise ValueError(f"op {op!r} references unknown point {point['ref']!r}")
