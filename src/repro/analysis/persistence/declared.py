"""Extraction of the declared persistence spec from the analyzed tree.

Like the contract and concurrency families, the persistence rules
*parse* their declarations out of the tree (``spec/persistence.py``)
rather than importing the runtime module, so they work on the synthetic
fixture trees the test suite builds under ``tmp_path`` and are silent on
trees that declare nothing.

Four literals are recognized:

* ``DURABILITY_PROTOCOL`` — ``{function: {"phases": (...), "events":
  {...}}}``: the ordered typestate PERSIST-ORDER enforces per declared
  function.  Phases come from the closed kind vocabulary; a ``"?"``
  suffix marks a skippable phase.  ``events`` maps delegated calls
  (``"receiver.method"``) to the kind they count as.
* ``WRITE_SITE_ROLES`` — ``{function: (kind, ...)}``: source-ordered
  roles for raw ``write_block`` sites; undeclared sites default to
  ``checkpoint``.
* ``CRASH_ENTRY_POINTS`` — ``{op: function}``: crash-surface roots.
* ``PERSIST_SANCTIONS`` — ``{function: justification}``: argued
  exemptions from CRASH-HOOK-COVERAGE.

Shape errors (unknown kind, malformed entry) raise
:class:`PersistenceConfigError` at parse time; binding errors (a name
that matches no function, a stale sanction) are raised later by the
model, with the declaration's source line.  Both reach the CLI as exit
code 2 — configuration errors, never findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Sequence

from repro.analysis.engine import ParsedModule

#: The closed vocabulary of persistence-point kinds.
PERSIST_KINDS = (
    "journal-write",
    "commit-record",
    "barrier",
    "checkpoint",
    "data-write",
)

_PERSISTENCE_FILENAME = "persistence.py"


class PersistenceConfigError(Exception):
    """A persistence declaration that cannot bind to the analyzed tree
    (or is malformed).  Reported by the CLI as exit 2 (configuration
    error), never as a finding."""

    def __init__(self, path: str, line: int, message: str):
        self.path = path
        self.line = line
        super().__init__(f"{path}:{line}: {message}")


@dataclass
class PersistenceDecls:
    """The parsed persistence spec of one analyzed tree."""

    module: ParsedModule
    #: function -> (phases tuple with optional "?" suffixes, events map)
    protocols: dict[str, tuple[tuple[str, ...], dict[str, str]]] = field(default_factory=dict)
    #: function -> source-ordered write_block roles
    site_roles: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: op name -> entry function
    entry_points: dict[str, str] = field(default_factory=dict)
    #: function -> argued justification
    sanctions: dict[str, str] = field(default_factory=dict)
    lines: dict[str, int] = field(default_factory=dict)  # decl key -> source line

    def line_of(self, decl: str) -> int:
        return self.lines.get(decl, 1)


def _spec_module(modules: Sequence[ParsedModule]) -> ParsedModule | None:
    for module in modules:
        path = PurePosixPath(module.path)
        if path.name == _PERSISTENCE_FILENAME and "spec" in path.parts:
            return module
    return None


def _check_kind(path: str, line: int, kind: str, *, optional_ok: bool, where: str) -> None:
    base = kind[:-1] if optional_ok and kind.endswith("?") else kind
    if base not in PERSIST_KINDS:
        raise PersistenceConfigError(
            path, line, f"{where}: {kind!r} is not a persistence kind {PERSIST_KINDS}"
        )


def _literal_entries(module, node, table):
    """(key, value, line) triples of a literal dict assignment."""
    if not isinstance(node.value, ast.Dict):
        raise PersistenceConfigError(module.path, node.lineno, f"{table} must be a literal dict")
    for key_node, value_node in zip(node.value.keys, node.value.values):
        try:
            key = ast.literal_eval(key_node) if key_node is not None else None
            value = ast.literal_eval(value_node)
        except ValueError:
            raise PersistenceConfigError(
                module.path,
                getattr(key_node, "lineno", node.lineno),
                f"{table} entries must be pure literals",
            )
        line = getattr(key_node, "lineno", node.lineno)
        if not isinstance(key, str) or not key:
            raise PersistenceConfigError(
                module.path, line, f"{table} key {key!r} must be a function name"
            )
        yield key, value, line


def declared_persistence(modules: Sequence[ParsedModule]) -> PersistenceDecls | None:
    """The persistence literals from ``spec/persistence.py``, or ``None``
    when the tree declares no persistence spec (the rules are then not
    applicable)."""
    module = _spec_module(modules)
    if module is None:
        return None
    decls = PersistenceDecls(module=module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "DURABILITY_PROTOCOL" in targets:
            for key, value, line in _literal_entries(module, node, "DURABILITY_PROTOCOL"):
                if (
                    not isinstance(value, dict)
                    or set(value) != {"phases", "events"}
                    or not isinstance(value["phases"], (tuple, list))
                    or not value["phases"]
                    or not isinstance(value["events"], dict)
                ):
                    raise PersistenceConfigError(
                        module.path,
                        line,
                        f"DURABILITY_PROTOCOL[{key!r}] must be "
                        "{'phases': non-empty tuple, 'events': dict}",
                    )
                phases = tuple(value["phases"])
                for phase in phases:
                    if not isinstance(phase, str):
                        raise PersistenceConfigError(
                            module.path, line, f"DURABILITY_PROTOCOL[{key!r}] phase {phase!r}"
                        )
                    _check_kind(
                        module.path, line, phase, optional_ok=True,
                        where=f"DURABILITY_PROTOCOL[{key!r}]",
                    )
                events: dict[str, str] = {}
                for ev, kind in value["events"].items():
                    if not isinstance(ev, str) or not ev or not isinstance(kind, str):
                        raise PersistenceConfigError(
                            module.path, line,
                            f"DURABILITY_PROTOCOL[{key!r}] events must map "
                            "'receiver.method' to a kind",
                        )
                    _check_kind(
                        module.path, line, kind, optional_ok=False,
                        where=f"DURABILITY_PROTOCOL[{key!r}] event {ev!r}",
                    )
                    events[ev] = kind
                decls.protocols[key] = (phases, events)
                decls.lines[key] = line
        elif "WRITE_SITE_ROLES" in targets:
            for key, value, line in _literal_entries(module, node, "WRITE_SITE_ROLES"):
                if not isinstance(value, (tuple, list)) or not value:
                    raise PersistenceConfigError(
                        module.path, line,
                        f"WRITE_SITE_ROLES[{key!r}] must be a non-empty tuple of kinds",
                    )
                for kind in value:
                    if not isinstance(kind, str):
                        raise PersistenceConfigError(
                            module.path, line, f"WRITE_SITE_ROLES[{key!r}] role {kind!r}"
                        )
                    _check_kind(
                        module.path, line, kind, optional_ok=False,
                        where=f"WRITE_SITE_ROLES[{key!r}]",
                    )
                decls.site_roles[key] = tuple(value)
                decls.lines[key] = line
        elif "CRASH_ENTRY_POINTS" in targets:
            for key, value, line in _literal_entries(module, node, "CRASH_ENTRY_POINTS"):
                if not isinstance(value, str) or not value:
                    raise PersistenceConfigError(
                        module.path, line,
                        f"CRASH_ENTRY_POINTS[{key!r}] must name an entry function",
                    )
                decls.entry_points[key] = value
                decls.lines[f"entry:{key}"] = line
        elif "PERSIST_SANCTIONS" in targets:
            for key, value, line in _literal_entries(module, node, "PERSIST_SANCTIONS"):
                if not isinstance(value, str) or not value.strip():
                    raise PersistenceConfigError(
                        module.path, line,
                        f"PERSIST_SANCTIONS[{key!r}] must carry a written justification",
                    )
                decls.sanctions[key] = value
                decls.lines[key] = line
    return decls
