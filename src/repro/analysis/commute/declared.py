"""Extraction of the declared commutativity spec from the analyzed tree.

Like the contract, concurrency, and persistence families, the commute
rules *parse* their declarations out of the tree (``spec/commute.py``)
rather than importing the runtime module, so they work on the synthetic
fixture trees the test suite builds under ``tmp_path`` and are silent on
trees that declare nothing.

The spec is a set of pure-literal tables (see the module docstring of
``spec/commute.py`` for the semantics):

* ``STATE_COMPONENTS`` — the closed component vocabulary;
* ``PATH_KEYED_COMPONENTS`` — components whose instances are keyed by
  the path argument that reaches them;
* ``REPLAY_ROOTS`` — ``{op: {"entry": qualname, "path_args": (...)}}``;
* ``COMPONENT_ACCESSORS`` — ``{name: (component, "read"|"write")}``;
* ``ROLE_COMPONENTS`` — write-site role -> component (a 2-tuple marks a
  role the model disambiguates per site);
* ``MEDIUM_WRITERS`` — the raw block-write primitives whose call sites
  carry a role;
* ``ATTR_COMPONENTS`` / ``CLASS_COMPONENTS`` — attribute / class names
  that *are* a component;
* ``SCRATCH_CLASSES`` / ``SCRATCH_ATTRS`` — argued exemptions (decoded
  working copies, diagnostics, per-op directives);
* ``COMMUTE_SANCTIONS`` — argued conflict resolutions (``commutes`` or
  ``serialize``), keyed by component or ``"component:opA|opB"``;
* ``DECLARED_FOOTPRINTS`` — the reviewed per-op read/write sets that
  COMMUTE-PARITY holds the inferred model against.

Shape errors (unknown component, malformed entry) raise
:class:`CommuteConfigError` at parse time; binding errors (an entry
point that matches no definition, a stale sanction) are raised later by
the model, with the declaration's source line.  Both reach the CLI as
exit code 2 — configuration errors, never findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Sequence

from repro.analysis.engine import ParsedModule

_COMMUTE_FILENAME = "commute.py"

ACCESS_MODES = ("read", "write")
RESOLUTIONS = ("commutes", "serialize")

#: Instances in DECLARED_FOOTPRINTS: ``component`` or ``component<key>``
#: where key is a comma-joined path-argument list or ``*`` (unknown key).


class CommuteConfigError(Exception):
    """A commute declaration that cannot bind to the analyzed tree (or
    is malformed).  Reported by the CLI as exit 2 (configuration error),
    never as a finding."""

    def __init__(self, path: str, line: int, message: str):
        self.path = path
        self.line = line
        super().__init__(f"{path}:{line}: {message}")


@dataclass
class CommuteDecls:
    """The parsed commutativity spec of one analyzed tree."""

    module: ParsedModule
    components: dict[str, str] = field(default_factory=dict)
    path_keyed: tuple[str, ...] = ()
    #: op -> (entry qualname, path-arg names)
    roots: dict[str, tuple[str, tuple[str, ...]]] = field(default_factory=dict)
    #: accessor name ("_iget" or "fd_table.get") -> (component, mode)
    accessors: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: write-site role -> component name, or a tuple of candidates the
    #: model disambiguates from the site's block expression
    roles: dict[str, str | tuple[str, ...]] = field(default_factory=dict)
    medium_writers: tuple[str, ...] = ()
    attr_components: dict[str, str] = field(default_factory=dict)
    class_components: dict[str, str] = field(default_factory=dict)
    scratch_classes: dict[str, str] = field(default_factory=dict)
    scratch_attrs: dict[str, str] = field(default_factory=dict)
    #: sanction key ("component" or "component:opA|opB") -> (resolution, why)
    sanctions: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: op -> {"reads": (instance, ...), "writes": (instance, ...)}
    footprints: dict[str, dict[str, tuple[str, ...]]] = field(default_factory=dict)
    lines: dict[str, int] = field(default_factory=dict)  # decl key -> source line

    def line_of(self, decl: str) -> int:
        return self.lines.get(decl, 1)

    def component_of_instance(self, instance: str) -> str:
        return instance.split("<", 1)[0]


def _spec_module(modules: Sequence[ParsedModule]) -> ParsedModule | None:
    for module in modules:
        path = PurePosixPath(module.path)
        if path.name == _COMMUTE_FILENAME and "spec" in path.parts:
            return module
    return None


def _literal_entries(module, node, table):
    """(key, value, line) triples of a literal dict assignment."""
    if not isinstance(node.value, ast.Dict):
        raise CommuteConfigError(module.path, node.lineno, f"{table} must be a literal dict")
    for key_node, value_node in zip(node.value.keys, node.value.values):
        try:
            key = ast.literal_eval(key_node) if key_node is not None else None
            value = ast.literal_eval(value_node)
        except ValueError:
            raise CommuteConfigError(
                module.path,
                getattr(key_node, "lineno", node.lineno),
                f"{table} entries must be pure literals",
            )
        line = getattr(key_node, "lineno", node.lineno)
        if not isinstance(key, str) or not key:
            raise CommuteConfigError(module.path, line, f"{table} key {key!r} must be a string")
        yield key, value, line


def _literal_tuple(module, node, table) -> tuple:
    try:
        value = ast.literal_eval(node.value)
    except ValueError:
        raise CommuteConfigError(module.path, node.lineno, f"{table} must be a literal tuple")
    if not isinstance(value, (tuple, list)):
        raise CommuteConfigError(module.path, node.lineno, f"{table} must be a tuple of strings")
    for item in value:
        if not isinstance(item, str) or not item:
            raise CommuteConfigError(module.path, node.lineno, f"{table} entry {item!r}")
    return tuple(value)


def _check_component(decls: CommuteDecls, name: str, line: int, where: str) -> None:
    if name not in decls.components:
        raise CommuteConfigError(
            decls.module.path,
            line,
            f"{where}: {name!r} is not in STATE_COMPONENTS {tuple(sorted(decls.components))}",
        )


def _check_instance(decls: CommuteDecls, instance: str, line: int, where: str) -> None:
    component, sep, key = instance.partition("<")
    if sep:
        if not key.endswith(">") or not key[:-1]:
            raise CommuteConfigError(
                decls.module.path, line, f"{where}: malformed instance {instance!r}"
            )
        if component not in decls.path_keyed:
            raise CommuteConfigError(
                decls.module.path,
                line,
                f"{where}: {component!r} is not path-keyed, {instance!r} cannot carry a key",
            )
    _check_component(decls, component, line, where)


def declared_commute(modules: Sequence[ParsedModule]) -> CommuteDecls | None:
    """The commute literals from ``spec/commute.py``, or ``None`` when
    the tree declares no commute spec (the rules are then not
    applicable)."""
    module = _spec_module(modules)
    if module is None:
        return None
    decls = CommuteDecls(module=module)
    deferred: list = []  # validated once STATE_COMPONENTS is known
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "STATE_COMPONENTS" in targets:
            for key, value, line in _literal_entries(module, node, "STATE_COMPONENTS"):
                if not isinstance(value, str) or not value.strip():
                    raise CommuteConfigError(
                        module.path, line,
                        f"STATE_COMPONENTS[{key!r}] must carry a description",
                    )
                decls.components[key] = value
                decls.lines[f"component:{key}"] = line
        elif "PATH_KEYED_COMPONENTS" in targets:
            decls.path_keyed = _literal_tuple(module, node, "PATH_KEYED_COMPONENTS")
            decls.lines["PATH_KEYED_COMPONENTS"] = node.lineno
        elif "MEDIUM_WRITERS" in targets:
            decls.medium_writers = _literal_tuple(module, node, "MEDIUM_WRITERS")
            decls.lines["MEDIUM_WRITERS"] = node.lineno
        elif "REPLAY_ROOTS" in targets:
            for key, value, line in _literal_entries(module, node, "REPLAY_ROOTS"):
                if (
                    not isinstance(value, dict)
                    or set(value) != {"entry", "path_args"}
                    or not isinstance(value["entry"], str)
                    or not value["entry"]
                    or not isinstance(value["path_args"], (tuple, list))
                    or not all(isinstance(a, str) and a for a in value["path_args"])
                ):
                    raise CommuteConfigError(
                        module.path, line,
                        f"REPLAY_ROOTS[{key!r}] must be "
                        "{'entry': qualname, 'path_args': tuple of arg names}",
                    )
                decls.roots[key] = (value["entry"], tuple(value["path_args"]))
                decls.lines[f"root:{key}"] = line
        elif "COMPONENT_ACCESSORS" in targets:
            for key, value, line in _literal_entries(module, node, "COMPONENT_ACCESSORS"):
                if (
                    not isinstance(value, (tuple, list))
                    or len(value) != 2
                    or value[1] not in ACCESS_MODES
                ):
                    raise CommuteConfigError(
                        module.path, line,
                        f"COMPONENT_ACCESSORS[{key!r}] must be (component, 'read'|'write')",
                    )
                decls.accessors[key] = (value[0], value[1])
                decls.lines[f"accessor:{key}"] = line
                deferred.append((value[0], line, f"COMPONENT_ACCESSORS[{key!r}]"))
        elif "ROLE_COMPONENTS" in targets:
            for key, value, line in _literal_entries(module, node, "ROLE_COMPONENTS"):
                if isinstance(value, str):
                    decls.roles[key] = value
                    deferred.append((value, line, f"ROLE_COMPONENTS[{key!r}]"))
                elif isinstance(value, (tuple, list)) and len(value) >= 2 and all(
                    isinstance(v, str) for v in value
                ):
                    decls.roles[key] = tuple(value)
                    for v in value:
                        deferred.append((v, line, f"ROLE_COMPONENTS[{key!r}]"))
                else:
                    raise CommuteConfigError(
                        module.path, line,
                        f"ROLE_COMPONENTS[{key!r}] must be a component or a tuple of candidates",
                    )
                decls.lines[f"role:{key}"] = line
        elif "ATTR_COMPONENTS" in targets:
            for key, value, line in _literal_entries(module, node, "ATTR_COMPONENTS"):
                if not isinstance(value, str):
                    raise CommuteConfigError(
                        module.path, line, f"ATTR_COMPONENTS[{key!r}] must name a component"
                    )
                decls.attr_components[key] = value
                deferred.append((value, line, f"ATTR_COMPONENTS[{key!r}]"))
        elif "CLASS_COMPONENTS" in targets:
            for key, value, line in _literal_entries(module, node, "CLASS_COMPONENTS"):
                if not isinstance(value, str):
                    raise CommuteConfigError(
                        module.path, line, f"CLASS_COMPONENTS[{key!r}] must name a component"
                    )
                decls.class_components[key] = value
                deferred.append((value, line, f"CLASS_COMPONENTS[{key!r}]"))
        elif "SCRATCH_CLASSES" in targets or "SCRATCH_ATTRS" in targets:
            table = "SCRATCH_CLASSES" if "SCRATCH_CLASSES" in targets else "SCRATCH_ATTRS"
            store = decls.scratch_classes if table == "SCRATCH_CLASSES" else decls.scratch_attrs
            for key, value, line in _literal_entries(module, node, table):
                if not isinstance(value, str) or not value.strip():
                    raise CommuteConfigError(
                        module.path, line,
                        f"{table}[{key!r}] must carry a written justification",
                    )
                store[key] = value
                decls.lines[f"scratch:{key}"] = line
        elif "COMMUTE_SANCTIONS" in targets:
            for key, value, line in _literal_entries(module, node, "COMMUTE_SANCTIONS"):
                if (
                    not isinstance(value, dict)
                    or set(value) != {"resolution", "why"}
                    or value["resolution"] not in RESOLUTIONS
                    or not isinstance(value["why"], str)
                    or not value["why"].strip()
                ):
                    raise CommuteConfigError(
                        module.path, line,
                        f"COMMUTE_SANCTIONS[{key!r}] must be "
                        "{'resolution': 'commutes'|'serialize', 'why': justification}",
                    )
                decls.sanctions[key] = (value["resolution"], value["why"])
                decls.lines[f"sanction:{key}"] = line
                deferred.append(
                    (key.split(":", 1)[0], line, f"COMMUTE_SANCTIONS[{key!r}]")
                )
        elif "DECLARED_FOOTPRINTS" in targets:
            for key, value, line in _literal_entries(module, node, "DECLARED_FOOTPRINTS"):
                if (
                    not isinstance(value, dict)
                    or set(value) != {"reads", "writes"}
                    or not all(isinstance(v, (tuple, list)) for v in value.values())
                ):
                    raise CommuteConfigError(
                        module.path, line,
                        f"DECLARED_FOOTPRINTS[{key!r}] must be "
                        "{'reads': instances, 'writes': instances}",
                    )
                decls.footprints[key] = {
                    "reads": tuple(value["reads"]),
                    "writes": tuple(value["writes"]),
                }
                decls.lines[f"footprint:{key}"] = line
    if not decls.roots:
        return decls if decls.components else None
    for component, line, where in deferred:
        _check_component(decls, component, line, where)
    for name in decls.path_keyed:
        _check_component(decls, name, decls.line_of("PATH_KEYED_COMPONENTS"), "PATH_KEYED_COMPONENTS")
    for op, footprint in decls.footprints.items():
        line = decls.line_of(f"footprint:{op}")
        if op not in decls.roots:
            raise CommuteConfigError(
                decls.module.path, line,
                f"DECLARED_FOOTPRINTS[{op!r}] does not match any REPLAY_ROOTS op",
            )
        for mode in ("reads", "writes"):
            for instance in footprint[mode]:
                if not isinstance(instance, str) or not instance:
                    raise CommuteConfigError(
                        decls.module.path, line,
                        f"DECLARED_FOOTPRINTS[{op!r}] {mode} entry {instance!r}",
                    )
                _check_instance(decls, instance, line, f"DECLARED_FOOTPRINTS[{op!r}]")
    for key in decls.sanctions:
        if ":" in key:
            _component, pair = key.split(":", 1)
            ops = pair.split("|")
            line = decls.line_of(f"sanction:{key}")
            if len(ops) != 2 or any(o not in decls.roots for o in ops) or ops != sorted(ops):
                raise CommuteConfigError(
                    decls.module.path, line,
                    f"COMMUTE_SANCTIONS[{key!r}] pair must be 'opA|opB' with known ops "
                    "in sorted order",
                )
    return decls
