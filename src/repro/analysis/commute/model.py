"""The inferred commutativity model: per-op component footprints and
pairwise replay verdicts.

Built on the project call graph (PR-2) the way the persistence model is
built on effect summaries: every replayable operation root declared in
``spec/commute.py`` is explored with a BFS over *(definition,
path-parameter taint)* states, and every state access met along the way
is classified into the declared component vocabulary through five
channels:

1. **accessor calls/references** (``COMPONENT_ACCESSORS``) — helper
   methods that *are* a component access wherever they appear;
2. **medium-writer sites** (``MEDIUM_WRITERS`` + ``ROLE_COMPONENTS``) —
   raw block writes classified by their literal ``role``; the ambiguous
   ``bitmap`` role is disambiguated per site from which layout helper
   computed the block number;
3. **component attributes** (``ATTR_COMPONENTS``) — loads and stores
   through attributes that are the live image of a component;
4. **component classes** (``CLASS_COMPONENTS``) — stores through typed
   receivers whose class is component state wherever it flows;
5. **scratch** (``SCRATCH_CLASSES`` / ``SCRATCH_ATTRS``) — argued
   exemptions: decoded working copies and diagnostics.

Path-parameter taint makes namespace footprints *keyed*: a
``dentry-namespace`` access inherits the name of whichever declared
path argument reaches it through assignments and call arguments, so
``mkdir(a/...)`` and ``mkdir(b/...)`` conflict only conditionally.  An
access no path argument reaches is keyed ``*`` and conflicts with
everything.

Unclassifiable *writes* in the replay closure surface as
SHARD-FOOTPRINT findings; mutations of module-level state as
REPLAY-ISOLATION findings; drift between the inferred footprints and
the reviewed ``DECLARED_FOOTPRINTS`` (either direction), or a hard
conflict no sanction argues, as COMMUTE-PARITY findings.

Known under-approximations, accepted like the call graph's: a store
through an *untyped bare local* is treated as local scratch (aliasing a
component container into a local before mutating it would dodge the
classifier), and dynamic dispatch (``getattr``) is invisible.  The
permutation harness exists exactly to catch what the static side
misses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterable, Sequence

from repro.analysis.commute.declared import (
    CommuteConfigError,
    CommuteDecls,
    declared_commute,
)
from repro.analysis.engine import ParsedModule, RuleContext
from repro.analysis.flow.callgraph import CallGraph, DefInfo, render_chain

#: Directory parts that put a module inside the replay closure's world.
SCOPE_PARTS = frozenset({"basefs", "ondisk", "shadowfs"})

#: Method names treated as in-place mutations of their receiver.
MUTATOR_METHODS = frozenset({
    "add", "append", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "set", "unset",
})

VERDICTS = ("commute", "conditional-on-disjoint-subtree", "conflict")


def in_scope(path: str) -> bool:
    return bool(SCOPE_PARTS & set(PurePosixPath(path).parts))


def instance_name(component: str, keys: tuple[str, ...]) -> str:
    return f"{component}<{','.join(keys)}>" if keys else component


@dataclass(frozen=True)
class Access:
    """One classified component access, with its witness."""

    component: str
    mode: str  # "read" | "write"
    keys: tuple[str, ...]  # path-arg names, ("*",), or () for unkeyed
    path: str
    line: int
    detail: str
    chain: tuple[str, ...]  # qualnames from the op root to the site

    @property
    def instance(self) -> str:
        return instance_name(self.component, self.keys)


@dataclass(frozen=True)
class UnclassifiedWrite:
    """A write in the replay closure the vocabulary cannot express."""

    path: str
    line: int
    detail: str
    chain: tuple[str, ...]


@dataclass(frozen=True)
class IsolationViolation:
    """Module-level mutable state reached from a replay root."""

    path: str
    line: int
    detail: str
    chain: tuple[str, ...]


@dataclass(frozen=True)
class Conflict:
    """One component two ops collide on, classified."""

    component: str
    a_instances: tuple[str, ...]
    b_instances: tuple[str, ...]
    kinds: tuple[str, ...]  # subset of ("write-write", "write-read", "read-write")
    classification: str  # "sanctioned-commutes" | "conditional" | "serialize" | "unsanctioned"
    sanction_key: str | None  # the COMMUTE_SANCTIONS key that resolved it
    why: str | None  # that sanction's argument


@dataclass
class PairVerdict:
    a: str
    b: str
    verdict: str
    conflicts: list[Conflict] = field(default_factory=list)


@dataclass
class Footprint:
    """Per-op component accesses: first witness per (instance, mode)."""

    reads: dict[str, Access] = field(default_factory=dict)
    writes: dict[str, Access] = field(default_factory=dict)

    def of_mode(self, mode: str) -> dict[str, Access]:
        return self.writes if mode == "write" else self.reads

    def components(self, mode: str) -> set[str]:
        return {a.component for a in self.of_mode(mode).values()}


#: A def-instance: one definition explored under one parameter taint.
#: ``taint`` maps parameter name -> sorted tuple of root path-arg names.
_Taint = tuple[tuple[str, tuple[str, ...]], ...]


@dataclass
class _DefSummary:
    """Memoized per-(def, taint) analysis results (chains excluded —
    they are per-op and rebuilt from the BFS parents)."""

    accesses: list[Access]  # chain field left empty here
    callees: list[tuple[str, _Taint]]
    unclassified: list[UnclassifiedWrite]
    isolation: list[IsolationViolation]


class CommuteModel:
    """Footprints, pairwise verdicts, and rule inputs for one tree."""

    def __init__(
        self,
        modules: Sequence[ParsedModule],
        decls: CommuteDecls,
        context: RuleContext | None = None,
    ):
        self.modules = modules
        self.decls = decls
        self.graph: CallGraph = (
            context.graph(modules) if context is not None else CallGraph(modules)
        )
        self.scope: dict[str, DefInfo] = {
            key: info for key, info in self.graph.defs.items() if in_scope(info.path)
        }
        self._summaries: dict[tuple[str, _Taint], _DefSummary] = {}
        self._module_mutables: dict[str, dict[str, int]] = {}
        self.roots: dict[str, str] = {}  # op -> def key
        self.footprints: dict[str, Footprint] = {}
        self.unclassified_writes: list[UnclassifiedWrite] = []
        self.isolation_violations: list[IsolationViolation] = []
        self.pairs: dict[tuple[str, str], PairVerdict] = {}
        self._bind_roots()
        self._explore()
        self._judge_pairs()
        self._check_sanctions()

    # ------------------------------------------------------------------
    # binding

    def _bound_defs(self, name: str) -> list[DefInfo]:
        """In-scope defs a declaration key binds to: exact qualname
        matches when any exist, else bare-name matches."""
        exact = [i for i in self.scope.values() if i.qualname == name]
        if exact:
            return sorted(exact, key=lambda i: i.key)
        return sorted(
            (i for i in self.scope.values() if i.name == name), key=lambda i: i.key
        )

    def _bind_roots(self) -> None:
        for op, (entry, _path_args) in sorted(self.decls.roots.items()):
            bound = self._bound_defs(entry)
            if not bound:
                raise CommuteConfigError(
                    self.decls.module.path,
                    self.decls.line_of(f"root:{op}"),
                    f"REPLAY_ROOTS[{op!r}] entry {entry!r} matches no in-scope definition",
                )
            self.roots[op] = bound[0].key

    # ------------------------------------------------------------------
    # module-level mutable state (REPLAY-ISOLATION channel)

    def _mutables_of(self, path: str) -> dict[str, int]:
        cached = self._module_mutables.get(path)
        if cached is not None:
            return cached
        mutables: dict[str, int] = {}
        for module in self.modules:
            if module.path != path:
                continue
            for stmt in module.tree.body:
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                value = stmt.value
                if value is None or not isinstance(
                    value,
                    (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
                     ast.SetComp, ast.Call),
                ):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        mutables[target.id] = stmt.lineno
        self._module_mutables[path] = mutables
        return mutables

    # ------------------------------------------------------------------
    # per-(def, taint) analysis

    @staticmethod
    def _own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterable[ast.AST]:
        """Nodes of ``func``'s own body, not of nested defs/classes."""
        stack: list[ast.AST] = list(func.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _bind_target_names(target: ast.expr, out: set[str]) -> None:
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                CommuteModel._bind_target_names(elt, out)
        elif isinstance(target, ast.Starred):
            CommuteModel._bind_target_names(target.value, out)

    def _local_taint(
        self, info: DefInfo, param_taint: dict[str, frozenset[str]]
    ) -> dict[str, frozenset[str]]:
        """Fixpoint propagation of path-argument taint through the def's
        own assignments, loop targets, and with-items."""
        taint: dict[str, frozenset[str]] = dict(param_taint)

        def expr_taint(expr: ast.expr | None) -> frozenset[str]:
            if expr is None:
                return frozenset()
            found: frozenset[str] = frozenset()
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in taint:
                    found |= taint[node.id]
            return found

        def bind(target: ast.expr, t: frozenset[str]) -> bool:
            if not t:
                return False
            names: set[str] = set()
            self._bind_target_names(target, names)
            changed = False
            for name in names:
                merged = taint.get(name, frozenset()) | t
                if merged != taint.get(name):
                    taint[name] = merged
                    changed = True
            return changed

        for _ in range(8):  # assignment chains are short; 8 passes is ample
            changed = False
            for node in self._own_nodes(info.node):
                if isinstance(node, ast.Assign):
                    t = expr_taint(node.value)
                    for target in node.targets:
                        changed |= bind(target, t)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    changed |= bind(node.target, expr_taint(node.value))
                elif isinstance(node, ast.AugAssign):
                    changed |= bind(node.target, expr_taint(node.value))
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    changed |= bind(node.target, expr_taint(node.iter))
                elif isinstance(node, ast.comprehension):
                    changed |= bind(node.target, expr_taint(node.iter))
                elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                    changed |= bind(node.optional_vars, expr_taint(node.context_expr))
                elif isinstance(node, ast.NamedExpr):
                    changed |= bind(node.target, expr_taint(node.value))
            if not changed:
                break
        return taint

    @staticmethod
    def _call_names(call: ast.Call) -> tuple[str | None, str | None]:
        """(dotted, bare) lookup names for a call: ``self.fd_table.get``
        -> ("fd_table.get", "get"); ``self._iget`` -> (None, "_iget")."""
        func = call.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Attribute):
                return (f"{value.attr}.{func.attr}", func.attr)
            if isinstance(value, ast.Name) and value.id != "self":
                return (f"{value.id}.{func.attr}", func.attr)
            return (None, func.attr)
        if isinstance(func, ast.Name):
            return (None, func.id)
        return (None, None)

    def _lookup_accessor(self, call: ast.Call) -> tuple[str, str] | None:
        dotted, bare = self._call_names(call)
        if dotted is not None and dotted in self.decls.accessors:
            return self.decls.accessors[dotted]
        if bare is not None and bare in self.decls.accessors:
            return self.decls.accessors[bare]
        return None

    def _is_medium_writer(self, call: ast.Call) -> bool:
        dotted, bare = self._call_names(call)
        return dotted in self.decls.medium_writers or bare in self.decls.medium_writers

    def _role_of(self, call: ast.Call) -> tuple[str | None, bool]:
        """(literal role, found) — found is False when no role argument
        is present; a present-but-non-literal role returns (None, True)."""
        role_expr: ast.expr | None = None
        for kw in call.keywords:
            if kw.arg == "role":
                role_expr = kw.value
        if role_expr is None and len(call.args) >= 3:
            role_expr = call.args[2]
        if role_expr is None:
            return (None, False)
        if isinstance(role_expr, ast.Constant) and isinstance(role_expr.value, str):
            return (role_expr.value, True)
        return (None, True)

    def _disambiguate_role(
        self, candidates: tuple[str, ...], call: ast.Call
    ) -> str | None:
        """Pick the candidate component whose layout helper
        (``<component>_block`` with dashes as underscores) computes the
        written block number."""
        names: set[str] = set()
        if call.args:
            for node in ast.walk(call.args[0]):
                if isinstance(node, ast.Attribute):
                    names.add(node.attr)
                elif isinstance(node, ast.Name):
                    names.add(node.id)
        hits = [c for c in candidates if f"{c.replace('-', '_')}_block" in names]
        if len(hits) == 1:
            return hits[0]
        return None

    def _class_name(self, class_key: str | None) -> str | None:
        if class_key is None or class_key not in self.graph.classes:
            return None
        return self.graph.classes[class_key].node.name

    def _classify_receiver(
        self, info: DefInfo, expr: ast.expr, locals_types: dict[str, str]
    ) -> tuple[str, str | None]:
        """Classify a store receiver: ("component", name) /
        ("scratch", why-key) / ("local", None) / ("module", name) /
        ("unknown", description)."""
        attrs: list[str] = []
        base: ast.expr = expr
        while True:
            if isinstance(base, ast.Subscript):
                base = base.value
            elif isinstance(base, ast.Attribute):
                attrs.append(base.attr)
                base = base.value
            else:
                break
        for attr in attrs:  # innermost attribute first: most specific wins
            if attr in self.decls.attr_components:
                return ("component", self.decls.attr_components[attr])
            if attr in self.decls.scratch_attrs:
                return ("scratch", attr)
        # Typed receivers: nearest resolvable class along the chain.
        probe: ast.expr = expr
        while isinstance(probe, (ast.Attribute, ast.Subscript)):
            probe = probe.value
            cls = self._class_name(self.graph.expr_class(info.key, probe, locals_types))
            if cls is not None:
                if cls in self.decls.class_components:
                    return ("component", self.decls.class_components[cls])
                if cls in self.decls.scratch_classes:
                    return ("scratch", cls)
        if isinstance(base, ast.Name):
            if base.id == "self":
                cls = self._class_name(info.class_key)
                if cls is not None and cls in self.decls.class_components:
                    return ("component", self.decls.class_components[cls])
                if cls is not None and cls in self.decls.scratch_classes:
                    return ("scratch", cls)
                return ("unknown", f"self.{'.'.join(reversed(attrs))}")
            if base.id in self._mutables_of(info.path) and base.id not in locals_types:
                local_names: set[str] = set()
                for node in self._own_nodes(info.node):
                    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                        targets = (
                            node.targets if isinstance(node, ast.Assign) else [node.target]
                        )
                        for target in targets:
                            self._bind_target_names(target, local_names)
                args = info.node.args
                params = {
                    a.arg
                    for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
                }
                if base.id not in local_names and base.id not in params:
                    return ("module", base.id)
            return ("local", None)
        return ("local", None)

    def _summarize(self, key: str, taint_key: _Taint) -> _DefSummary:
        memo_key = (key, taint_key)
        cached = self._summaries.get(memo_key)
        if cached is not None:
            return cached
        info = self.scope[key]
        param_taint = {p: frozenset(roots) for p, roots in taint_key}
        local_taint = self._local_taint(info, param_taint)
        inst_taint = frozenset().union(*param_taint.values()) if param_taint else frozenset()
        locals_types = self.graph.local_types(key)
        summary = _DefSummary(accesses=[], callees=[], unclassified=[], isolation=[])

        def expr_taint(expr: ast.expr | None) -> frozenset[str]:
            if expr is None:
                return frozenset()
            found: frozenset[str] = frozenset()
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) and node.id in local_taint:
                    found |= local_taint[node.id]
            return found

        def keys_for(component: str, exprs: Sequence[ast.expr | None]) -> tuple[str, ...]:
            if component not in self.decls.path_keyed:
                return ()
            t: frozenset[str] = frozenset()
            for expr in exprs:
                t |= expr_taint(expr)
            if not t:
                t = inst_taint
            return tuple(sorted(t)) if t else ("*",)

        def record(component: str, mode: str, node: ast.AST, detail: str,
                   key_exprs: Sequence[ast.expr | None] = ()) -> None:
            summary.accesses.append(Access(
                component=component,
                mode=mode,
                keys=keys_for(component, key_exprs),
                path=info.path,
                line=getattr(node, "lineno", info.line),
                detail=detail,
                chain=(),
            ))

        calls = [n for n in self._own_nodes(info.node) if isinstance(n, ast.Call)]
        call_funcs = {id(c.func) for c in calls}
        handled_receivers: set[int] = set()

        for call in calls:
            dotted, bare = self._call_names(call)
            label = dotted or bare or "<call>"
            accessor = self._lookup_accessor(call)
            if accessor is not None:
                component, mode = accessor
                record(component, mode, call, f"{label}(...)", list(call.args))
                continue
            if self._is_medium_writer(call):
                role, found = self._role_of(call)
                if not found:
                    if info.name not in {m.split(".")[-1] for m in self.decls.medium_writers}:
                        summary.unclassified.append(UnclassifiedWrite(
                            path=info.path, line=call.lineno,
                            detail=f"{label}(...) carries no role", chain=(),
                        ))
                    continue
                if role is None:
                    # Non-literal role: legal only as delegation inside
                    # another medium writer.
                    if info.name not in {m.split(".")[-1] for m in self.decls.medium_writers}:
                        summary.unclassified.append(UnclassifiedWrite(
                            path=info.path, line=call.lineno,
                            detail=f"{label}(...) role is not a literal", chain=(),
                        ))
                    continue
                component = self.decls.roles.get(role)
                if component is None:
                    summary.unclassified.append(UnclassifiedWrite(
                        path=info.path, line=call.lineno,
                        detail=f"{label}(...) role {role!r} is not in ROLE_COMPONENTS",
                        chain=(),
                    ))
                    continue
                if isinstance(component, tuple):
                    picked = self._disambiguate_role(component, call)
                    if picked is None:
                        summary.unclassified.append(UnclassifiedWrite(
                            path=info.path, line=call.lineno,
                            detail=f"{label}(...) role {role!r} is ambiguous between "
                                   f"{component} and no layout helper decides it",
                            chain=(),
                        ))
                        continue
                    component = picked
                record(component, "write", call, f"{label}(role={role!r})", list(call.args))
                continue
            if isinstance(call.func, ast.Attribute) and call.func.attr in MUTATOR_METHODS:
                receiver = call.func.value
                handled_receivers.add(id(receiver))
                kind, name = self._classify_receiver(info, receiver, locals_types)
                if kind == "component":
                    record(name, "write", call, f".{call.func.attr}(...) on {name}",
                           [receiver, *call.args])
                elif kind == "module":
                    summary.isolation.append(IsolationViolation(
                        path=info.path, line=call.lineno,
                        detail=f"mutates module-level {name!r} via .{call.func.attr}(...)",
                        chain=(),
                    ))
                elif kind == "unknown":
                    summary.unclassified.append(UnclassifiedWrite(
                        path=info.path, line=call.lineno,
                        detail=f"mutation of {name} via .{call.func.attr}(...) is not "
                               "expressible in the component vocabulary",
                        chain=(),
                    ))

        # Accessor *references* outside call position (passed as probes).
        for node in self._own_nodes(info.node):
            if (
                isinstance(node, ast.Attribute)
                and id(node) not in call_funcs
                and node.attr in self.decls.accessors
                and isinstance(node.ctx, ast.Load)
            ):
                component, mode = self.decls.accessors[node.attr]
                record(component, mode, node, f"{node.attr} (referenced)", [node])

        # Component-attribute loads.
        for node in self._own_nodes(info.node):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in self.decls.attr_components
            ):
                record(self.decls.attr_components[node.attr], "read", node,
                       f"reads .{node.attr}", [node])

        # Stores: assignment/deletion targets.
        def classify_store(target: ast.expr, node: ast.AST) -> None:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        classify_store(elt, node)
                return
            kind, name = self._classify_receiver(info, target, locals_types)
            rendered = ast.unparse(target)
            if kind == "component":
                record(name, "write", node, f"stores to {rendered}", [target])
            elif kind == "module":
                summary.isolation.append(IsolationViolation(
                    path=info.path, line=getattr(node, "lineno", info.line),
                    detail=f"mutates module-level {name!r} ({rendered})", chain=(),
                ))
            elif kind == "unknown":
                summary.unclassified.append(UnclassifiedWrite(
                    path=info.path, line=getattr(node, "lineno", info.line),
                    detail=f"store to {rendered} is not expressible in the "
                           "component vocabulary",
                    chain=(),
                ))

        for node in self._own_nodes(info.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    classify_store(target, node)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                classify_store(node.target, node)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    classify_store(target, node)
            elif isinstance(node, ast.Global):
                summary.isolation.append(IsolationViolation(
                    path=info.path, line=node.lineno,
                    detail=f"declares global {', '.join(node.names)}", chain=(),
                ))

        # Callees, with argument taint threaded into parameters.
        for call, callee_keys in self.graph.call_edges(key):
            for callee in callee_keys:
                if callee not in self.scope:
                    continue
                callee_info = self.scope[callee]
                args = callee_info.node.args
                params = [a.arg for a in [*args.posonlyargs, *args.args]]
                if callee_info.class_key is not None and params and params[0] == "self":
                    params = params[1:]
                callee_taint: dict[str, frozenset[str]] = {}
                for index, arg in enumerate(call.args):
                    if isinstance(arg, ast.Starred) or index >= len(params):
                        break
                    t = expr_taint(arg)
                    if t:
                        callee_taint[params[index]] = t
                kw_params = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
                for kw in call.keywords:
                    if kw.arg is not None and kw.arg in kw_params:
                        t = expr_taint(kw.value)
                        if t:
                            callee_taint[kw.arg] = t
                taint_tuple: _Taint = tuple(sorted(
                    (p, tuple(sorted(t))) for p, t in callee_taint.items()
                ))
                summary.callees.append((callee, taint_tuple))

        self._summaries[memo_key] = summary
        return summary

    # ------------------------------------------------------------------
    # exploration

    def _explore(self) -> None:
        seen_unclassified: set[tuple[str, int, str]] = set()
        seen_isolation: set[tuple[str, int, str]] = set()
        for op in sorted(self.roots):
            root_key = self.roots[op]
            _entry, path_args = self.decls.roots[op]
            root_info = self.scope[root_key]
            arg_names = {
                a.arg
                for a in [*root_info.node.args.posonlyargs, *root_info.node.args.args,
                          *root_info.node.args.kwonlyargs]
            }
            root_taint: _Taint = tuple(sorted(
                (arg, (arg,)) for arg in path_args if arg in arg_names
            ))
            footprint = Footprint()
            self.footprints[op] = footprint
            start = (root_key, root_taint)
            parents: dict[tuple[str, _Taint], tuple[str, _Taint] | None] = {start: None}
            queue = [start]
            while queue:
                state = queue.pop(0)
                summary = self._summarize(*state)
                chain = self._chain(parents, state)
                for access in summary.accesses:
                    store = footprint.of_mode(access.mode)
                    if access.instance not in store:
                        store[access.instance] = Access(
                            component=access.component, mode=access.mode,
                            keys=access.keys, path=access.path, line=access.line,
                            detail=access.detail, chain=chain,
                        )
                for item in summary.unclassified:
                    dedup = (item.path, item.line, item.detail)
                    if dedup not in seen_unclassified:
                        seen_unclassified.add(dedup)
                        self.unclassified_writes.append(UnclassifiedWrite(
                            path=item.path, line=item.line, detail=item.detail,
                            chain=chain,
                        ))
                for item in summary.isolation:
                    dedup = (item.path, item.line, item.detail)
                    if dedup not in seen_isolation:
                        seen_isolation.add(dedup)
                        self.isolation_violations.append(IsolationViolation(
                            path=item.path, line=item.line, detail=item.detail,
                            chain=chain,
                        ))
                for callee_state in summary.callees:
                    if callee_state not in parents:
                        parents[callee_state] = state
                        queue.append(callee_state)
        self.unclassified_writes.sort(key=lambda w: (w.path, w.line, w.detail))
        self.isolation_violations.sort(key=lambda v: (v.path, v.line, v.detail))

    def _chain(
        self,
        parents: dict[tuple[str, _Taint], tuple[str, _Taint] | None],
        state: tuple[str, _Taint],
    ) -> tuple[str, ...]:
        keys: list[str] = []
        cursor: tuple[str, _Taint] | None = state
        while cursor is not None:
            keys.append(cursor[0])
            cursor = parents.get(cursor)
        return tuple(reversed(keys))

    def render_chain(self, chain: tuple[str, ...]) -> str:
        return render_chain(self.graph, list(chain))

    # ------------------------------------------------------------------
    # pairwise verdicts

    def _sanction_for(self, component: str, a: str, b: str) -> tuple[str, tuple[str, str]] | None:
        pair_key = f"{component}:{a}|{b}"
        if pair_key in self.decls.sanctions:
            return (pair_key, self.decls.sanctions[pair_key])
        if component in self.decls.sanctions:
            return (component, self.decls.sanctions[component])
        return None

    def _judge_pairs(self) -> None:
        self._used_sanctions: set[str] = set()
        ops = sorted(self.footprints)
        for i, a in enumerate(ops):
            for b in ops[i:]:
                self.pairs[(a, b)] = self._judge(a, b)

    def _judge(self, a: str, b: str) -> PairVerdict:
        fa, fb = self.footprints[a], self.footprints[b]
        conflicts: list[Conflict] = []
        hard = False
        conditional = False
        components = sorted(
            (fa.components("read") | fa.components("write"))
            & (fb.components("read") | fb.components("write"))
        )
        for component in components:
            aw = {i for i, acc in fa.writes.items() if acc.component == component}
            ar = {i for i, acc in fa.reads.items() if acc.component == component}
            bw = {i for i, acc in fb.writes.items() if acc.component == component}
            br = {i for i, acc in fb.reads.items() if acc.component == component}
            kinds: list[str] = []
            if aw and bw:
                kinds.append("write-write")
            if aw and br:
                kinds.append("write-read")
            if bw and ar:
                kinds.append("read-write")
            if not kinds:
                continue
            involved_a = sorted(aw | (ar if bw else set()))
            involved_b = sorted(bw | (br if aw else set()))
            sanction = self._sanction_for(component, a, b)
            sanction_key: str | None = None
            why: str | None = None
            if sanction is not None and sanction[1][0] == "commutes":
                classification = "sanctioned-commutes"
                sanction_key, why = sanction[0], sanction[1][1]
                self._used_sanctions.add(sanction_key)
            elif component in self.decls.path_keyed and not any(
                "<*>" in instance for instance in [*involved_a, *involved_b]
            ):
                classification = "conditional"
                conditional = True
            elif sanction is not None:
                classification = "serialize"
                sanction_key, why = sanction[0], sanction[1][1]
                self._used_sanctions.add(sanction_key)
                hard = True
            else:
                classification = "unsanctioned"
                hard = True
            conflicts.append(Conflict(
                component=component,
                a_instances=tuple(involved_a),
                b_instances=tuple(involved_b),
                kinds=tuple(kinds),
                classification=classification,
                sanction_key=sanction_key,
                why=why,
            ))
        if hard:
            verdict = "conflict"
        elif conditional:
            verdict = "conditional-on-disjoint-subtree"
        else:
            verdict = "commute"
        return PairVerdict(a=a, b=b, verdict=verdict, conflicts=conflicts)

    # ------------------------------------------------------------------
    # sanctions hygiene

    def _check_sanctions(self) -> None:
        for key in sorted(self.decls.sanctions):
            if key not in self._used_sanctions:
                raise CommuteConfigError(
                    self.decls.module.path,
                    self.decls.line_of(f"sanction:{key}"),
                    f"COMMUTE_SANCTIONS[{key!r}] is stale: no replay pair "
                    "conflicts on it",
                )

    # ------------------------------------------------------------------
    # rule inputs

    def unsanctioned_conflicts(self) -> list[tuple[str, str, str]]:
        """(op_a, op_b, component) triples with no covering sanction."""
        out: list[tuple[str, str, str]] = []
        for (a, b), verdict in sorted(self.pairs.items()):
            for conflict in verdict.conflicts:
                if conflict.classification == "unsanctioned":
                    out.append((a, b, conflict.component))
        return out

    def inferred_instances(self, op: str, mode: str) -> tuple[str, ...]:
        return tuple(sorted(self.footprints[op].of_mode(mode)))


_MODEL_CACHE: list = []


def model_for(
    modules: Sequence[ParsedModule], context: RuleContext | None = None
) -> CommuteModel | None:
    """The commute model for ``modules``, or ``None`` when the tree
    declares no commute spec.  Raises :class:`CommuteConfigError` on
    unbindable declarations and stale sanctions."""
    if context is not None:
        key = ("commute-model", id(modules))
        if key in context.shared:
            return context.shared[key]
        model = _build(modules, context)
        context.shared[key] = model
        return model
    for cached_modules, model in _MODEL_CACHE:
        if cached_modules is modules:
            return model
    model = _build(modules, None)
    _MODEL_CACHE.append((modules, model))
    del _MODEL_CACHE[:-2]
    return model


def _build(
    modules: Sequence[ParsedModule], context: RuleContext | None
) -> CommuteModel | None:
    decls = declared_commute(modules)
    if decls is None or not decls.roots:
        return None
    return CommuteModel(modules, decls, context)
