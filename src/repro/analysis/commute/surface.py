"""The machine-readable shard surface: ``replaymatrix.json``.

``raelint --emit-replay-matrix`` serializes the commute model into the
committed matrix the sharded-replay work (ROADMAP item: parallel shard
replay) consumes: the component vocabulary with its sanctions, each
replayable op's keyed read/write footprint with a ``file:line`` witness
and call chain per instance, and a verdict for every unordered op pair
(including self-pairs):

* ``commute`` — no component collides, or every collision is argued
  away by a ``commutes`` sanction;
* ``conditional-on-disjoint-subtree`` — the remaining collisions are
  all on path-keyed instances with definite keys: the pair commutes
  when its path arguments address pairwise-disjoint subtrees and no
  hard link aliases an inode across them;
* ``conflict`` — at least one collision is order-sensitive
  (``serialize`` sanction) or unargued: replay in one shard, in log
  order.

CI regenerates the file and fails on drift, so the shard planner can
never silently fall behind the code.  The payload is fully
deterministic: instances and pairs sorted, ``json.dumps(...,
sort_keys=True)`` — two emissions over the same tree are
byte-identical.
"""

from __future__ import annotations

import json

from repro.analysis.commute.model import CommuteModel

MATRIX_VERSION = 1

_CLASSIFICATIONS = {"sanctioned-commutes", "conditional", "serialize", "unsanctioned"}
_VERDICTS = {"commute", "conditional-on-disjoint-subtree", "conflict"}
_CONDITION = "disjoint-subtrees-and-no-hard-link-aliasing"

_COMPONENT_FIELDS = {"description", "path_keyed"}
_OP_FIELDS = {"entry", "entry_path", "reads", "writes", "witnesses"}
_WITNESS_FIELDS = {"site", "chain"}
_CONFLICT_FIELDS = {"component", "a_instances", "b_instances", "kinds", "class", "sanction"}
_PAIR_FIELDS = {"a", "b", "verdict", "condition", "conflicts"}


def build_replay_matrix(model: CommuteModel) -> dict:
    """The ``replaymatrix.json`` payload for ``model``."""
    decls = model.decls
    components = {}
    for name in sorted(decls.components):
        components[name] = {
            "description": decls.components[name],
            "path_keyed": name in decls.path_keyed,
        }
    sanctions = {
        key: {"resolution": resolution, "why": why}
        for key, (resolution, why) in sorted(decls.sanctions.items())
    }

    ops = {}
    for op in sorted(model.footprints):
        footprint = model.footprints[op]
        root_key = model.roots[op]
        witnesses = {}
        for mode in ("read", "write"):
            for instance, access in sorted(footprint.of_mode(mode).items()):
                witnesses[f"{mode}:{instance}"] = {
                    "site": f"{access.path}:{access.line}",
                    "chain": model.render_chain(access.chain),
                }
        ops[op] = {
            "entry": model.graph.defs[root_key].qualname,
            "entry_path": model.graph.defs[root_key].path,
            "reads": sorted(footprint.reads),
            "writes": sorted(footprint.writes),
            "witnesses": witnesses,
        }

    pairs = {}
    for (a, b), verdict in sorted(model.pairs.items()):
        conflicts = []
        for conflict in verdict.conflicts:
            conflicts.append({
                "component": conflict.component,
                "a_instances": list(conflict.a_instances),
                "b_instances": list(conflict.b_instances),
                "kinds": list(conflict.kinds),
                "class": conflict.classification,
                "sanction": conflict.sanction_key,
            })
        pairs[f"{a}|{b}"] = {
            "a": a,
            "b": b,
            "verdict": verdict.verdict,
            "condition": (
                _CONDITION
                if verdict.verdict == "conditional-on-disjoint-subtree" else None
            ),
            "conflicts": conflicts,
        }

    return {
        "version": MATRIX_VERSION,
        "scope": sorted({"basefs", "ondisk", "shadowfs"}),
        "components": components,
        "sanctions": sanctions,
        "ops": ops,
        "pairs": pairs,
    }


def render_replay_matrix(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def validate_replay_matrix(payload: dict) -> None:
    """Schema check; raises ``ValueError`` on any malformation.  Used by
    both the emitting CLI (never write a bad matrix) and the tests (the
    committed copy stays well-formed)."""
    if not isinstance(payload, dict):
        raise ValueError("replay matrix must be a JSON object")
    if payload.get("version") != MATRIX_VERSION:
        raise ValueError(f"replay matrix version must be {MATRIX_VERSION}")
    if not isinstance(payload.get("scope"), list):
        raise ValueError("replay matrix scope must be a list")
    components = payload.get("components")
    if not isinstance(components, dict) or not components:
        raise ValueError("replay matrix components must be a non-empty object")
    for name, body in components.items():
        if not isinstance(body, dict) or set(body) != _COMPONENT_FIELDS:
            raise ValueError(f"component {name!r} fields must be {sorted(_COMPONENT_FIELDS)}")
    sanctions = payload.get("sanctions")
    if not isinstance(sanctions, dict):
        raise ValueError("replay matrix sanctions must be an object")
    for key, body in sanctions.items():
        if (
            not isinstance(body, dict)
            or set(body) != {"resolution", "why"}
            or body["resolution"] not in ("commutes", "serialize")
            or not isinstance(body["why"], str)
            or not body["why"]
        ):
            raise ValueError(f"sanction {key!r} is malformed")
        if key.split(":", 1)[0] not in components:
            raise ValueError(f"sanction {key!r} names an unknown component")
    ops = payload.get("ops")
    if not isinstance(ops, dict) or not ops:
        raise ValueError("replay matrix ops must be a non-empty object")
    for op, body in ops.items():
        if not isinstance(body, dict) or set(body) != _OP_FIELDS:
            raise ValueError(f"op {op!r} fields must be {sorted(_OP_FIELDS)}")
        for mode in ("reads", "writes"):
            instances = body[mode]
            if not isinstance(instances, list) or instances != sorted(instances):
                raise ValueError(f"op {op!r} {mode} must be a sorted list")
            for instance in instances:
                if instance.split("<", 1)[0] not in components:
                    raise ValueError(
                        f"op {op!r} instance {instance!r} names an unknown component"
                    )
                if f"{mode[:-1]}:{instance}" not in body["witnesses"]:
                    raise ValueError(f"op {op!r} instance {instance!r} has no witness")
        for ref, witness in body["witnesses"].items():
            if set(witness) != _WITNESS_FIELDS:
                raise ValueError(f"op {op!r} witness {ref!r} fields must be site/chain")
            mode, _, instance = ref.partition(":")
            if mode not in ("read", "write") or instance not in body[f"{mode}s"]:
                raise ValueError(f"op {op!r} witness {ref!r} matches no instance")
    pairs = payload.get("pairs")
    if not isinstance(pairs, dict):
        raise ValueError("replay matrix pairs must be an object")
    names = sorted(ops)
    expected = {
        f"{a}|{b}" for i, a in enumerate(names) for b in names[i:]
    }
    if set(pairs) != expected:
        raise ValueError("replay matrix pairs must cover every unordered op pair")
    for key, body in pairs.items():
        if not isinstance(body, dict) or set(body) != _PAIR_FIELDS:
            raise ValueError(f"pair {key!r} fields must be {sorted(_PAIR_FIELDS)}")
        if key != f"{body['a']}|{body['b']}" or body["a"] > body["b"]:
            raise ValueError(f"pair {key!r} key must be 'a|b' with a <= b")
        if body["verdict"] not in _VERDICTS:
            raise ValueError(f"pair {key!r} verdict {body['verdict']!r} is unknown")
        conditional = body["verdict"] == "conditional-on-disjoint-subtree"
        if conditional != (body["condition"] == _CONDITION):
            raise ValueError(f"pair {key!r} condition must match its verdict")
        hard = False
        saw_conditional = False
        for conflict in body["conflicts"]:
            if set(conflict) != _CONFLICT_FIELDS:
                raise ValueError(
                    f"pair {key!r} conflict fields must be {sorted(_CONFLICT_FIELDS)}"
                )
            if conflict["component"] not in components:
                raise ValueError(
                    f"pair {key!r} conflicts on unknown component {conflict['component']!r}"
                )
            if conflict["class"] not in _CLASSIFICATIONS:
                raise ValueError(f"pair {key!r} conflict class {conflict['class']!r}")
            if conflict["class"] in ("serialize", "unsanctioned"):
                hard = True
            if conflict["class"] == "conditional":
                saw_conditional = True
            sanction_key = conflict["sanction"]
            if conflict["class"] in ("serialize", "sanctioned-commutes"):
                expected_resolution = (
                    "serialize" if conflict["class"] == "serialize" else "commutes"
                )
                if (
                    sanction_key not in sanctions
                    or sanctions[sanction_key]["resolution"] != expected_resolution
                ):
                    raise ValueError(
                        f"pair {key!r} conflict on {conflict['component']!r} must "
                        "reference a sanction with the matching resolution"
                    )
            elif sanction_key is not None:
                raise ValueError(
                    f"pair {key!r} {conflict['class']} conflict on "
                    f"{conflict['component']!r} cannot carry a sanction"
                )
            for side, owner in (("a_instances", body["a"]), ("b_instances", body["b"])):
                op_body = ops[owner]
                known = set(op_body["reads"]) | set(op_body["writes"])
                for instance in conflict[side]:
                    if instance not in known:
                        raise ValueError(
                            f"pair {key!r} references unknown instance {instance!r} "
                            f"of op {owner!r}"
                        )
        expected_verdict = (
            "conflict" if hard
            else "conditional-on-disjoint-subtree" if saw_conditional
            else "commute"
        )
        if body["verdict"] != expected_verdict:
            raise ValueError(
                f"pair {key!r} verdict {body['verdict']!r} is inconsistent with its "
                f"conflicts (expected {expected_verdict!r})"
            )
