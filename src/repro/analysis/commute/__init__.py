"""Replay-commutativity analysis: which oplog operations can replay in
parallel shards (ROADMAP item: sharded replay).

``declared`` parses the pure-literal spec (``spec/commute.py``),
``model`` refines the call-graph into per-op component footprints, and
``surface`` composes the committed ``replaymatrix.json`` artifact.
"""

from repro.analysis.commute.declared import CommuteConfigError, declared_commute
from repro.analysis.commute.model import CommuteModel, model_for
from repro.analysis.commute.surface import (
    MATRIX_VERSION,
    build_replay_matrix,
    render_replay_matrix,
    validate_replay_matrix,
)

__all__ = [
    "CommuteConfigError",
    "declared_commute",
    "CommuteModel",
    "model_for",
    "MATRIX_VERSION",
    "build_replay_matrix",
    "render_replay_matrix",
    "validate_replay_matrix",
]
