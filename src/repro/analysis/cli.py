"""The raelint command line.

    python -m repro.analysis [ROOT] [options]

Analyzes ROOT (default ``src/repro``) with the full rule set, reports
findings, and — with ``--fail-on-findings`` — exits nonzero when any
finding is not covered by the baseline.  ``--write-baseline`` accepts
the current findings as the new ratchet; ``--format=json`` emits a
machine-readable report for CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import BASELINE_FILENAME, Baseline
from repro.analysis.engine import Analyzer
from repro.analysis.rules import default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="raelint",
        description="AST-based static analysis enforcing RAE's structural invariants",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default="src/repro",
        help="directory (or single file) to analyze [default: src/repro]",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file [default: ./{BASELINE_FILENAME} if present]",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline from current findings, dropping entries "
        "that no longer fire (the ratchet only moves down)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format [default: text]",
    )
    parser.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit 1 when findings not covered by the baseline exist",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rule set and exit",
    )
    return parser


def _resolve_baseline_path(args: argparse.Namespace, root: Path) -> Path:
    if args.baseline:
        return Path(args.baseline)
    cwd_candidate = Path.cwd() / BASELINE_FILENAME
    if cwd_candidate.exists():
        return cwd_candidate
    root_candidate = root / BASELINE_FILENAME
    if root_candidate.exists():
        return root_candidate
    return cwd_candidate


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id:18} {rule.description}")
        return 0

    root = Path(args.root)
    if not root.exists():
        print(f"raelint: no such path: {root}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline_path(args, root)
    baseline = Baseline.load(baseline_path)
    report = Analyzer(root, rules=rules, baseline=baseline).run()

    if args.write_baseline or args.update_baseline:
        updated = Baseline.from_findings(report.findings)
        if args.update_baseline:
            added = len(updated.entries - baseline.entries)
            dropped = len(baseline.entries - updated.entries)
            updated.save(baseline_path)
            print(
                f"raelint: baseline updated at {baseline_path}: "
                f"{len(updated)} entr{'y' if len(updated) == 1 else 'ies'} "
                f"(+{added} new, -{dropped} no longer firing)"
            )
        else:
            updated.save(baseline_path)
            print(f"raelint: wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    if args.format == "json":
        payload = {
            "files": report.files,
            "findings": [f.to_json() for f in report.findings],
            "new": [f.to_json() for f in report.new_findings],
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "clean": report.clean,
        }
        print(json.dumps(payload, indent=2))
    else:
        new = set(report.new_findings)
        for finding in report.findings:
            tag = "" if finding in new else " (baselined)"
            print(finding.render() + tag)
        print(report.summary())

    if args.fail_on_findings and not report.clean:
        return 1
    return 0
