"""The raelint command line.

    python -m repro.analysis [ROOT] [options]

Analyzes ROOT (default ``src/repro``) with the full rule set, reports
findings, and — with ``--fail-on-findings`` — exits nonzero when any
finding is not covered by the baseline.  ``--write-baseline`` accepts
the current findings as the new ratchet; ``--format=json`` emits a
machine-readable report for CI.

``--changed-only`` narrows *reporting* to files touched in the working
tree (``git diff HEAD`` plus untracked files): project rules still
analyze every module — cross-file invariants need the full set — but
only findings in changed files are reported, which keeps pre-commit
runs fast and focused.  ``--select`` narrows the rule set by id, and
``--check-baseline`` verifies the ratchet: every baseline entry must
still fire, so the baseline can only shrink, never quietly pad.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.baseline import BASELINE_FILENAME, Baseline
from repro.analysis.commute import CommuteConfigError
from repro.analysis.concurrency import ConcurrencyConfigError
from repro.analysis.engine import Analyzer
from repro.analysis.findings import Finding
from repro.analysis.persistence import PersistenceConfigError
from repro.analysis.rules import default_rules, rule_families
from repro.util import atomic_write_json


def _github_annotation(finding: Finding, root: Path, baselined: bool) -> str:
    """One GitHub workflow command per finding.

    The ``file=`` property must be repo-relative for GitHub to anchor
    the annotation on the PR diff; finding paths are analysis-root-
    relative, so rejoin them with the root as given on the command line
    (CI invokes raelint from the repo root with ``src/repro``).
    Newlines in messages would terminate the command early — GitHub's
    escaping convention is URL-encoding them.

    Baselined findings render as ``::notice`` rather than ``::error``:
    they are known debt the ratchet already tracks, and a PR diff should
    only scream about findings the PR itself introduced.
    """
    path = finding.path if root.is_file() else (root / finding.path).as_posix()
    message = finding.message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    title = finding.rule_id + (" (baselined)" if baselined else "")
    level = "notice" if baselined else "error"
    return f"::{level} file={path},line={finding.line},title={title}::{message}"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="raelint",
        description="AST-based static analysis enforcing RAE's structural invariants",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default="src/repro",
        help="directory (or single file) to analyze [default: src/repro]",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file [default: ./{BASELINE_FILENAME} if present]",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="regenerate the baseline from current findings, dropping entries "
        "that no longer fire (the ratchet only moves down)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format; 'github' emits workflow-command annotations "
        "(::error file=...) that GitHub renders inline on the PR diff "
        "[default: text]",
    )
    parser.add_argument(
        "--fail-on-findings",
        action="store_true",
        help="exit 1 when findings not covered by the baseline exist",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the rule set and exit",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only for files changed in git (diff against "
        "HEAD plus untracked); project rules still see the whole tree",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULE[,RULE...]",
        help="run only the named rules; each token is a rule id or a "
        "family name (core, contracts, concurrency, persistence, "
        "commute) selecting every rule in it (comma-separated)",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail if any baseline entry no longer fires (the ratchet "
        "must only move down)",
    )
    parser.add_argument(
        "--changed-since",
        default=None,
        metavar="REF",
        help="with --changed-only: diff against `git merge-base REF HEAD` "
        "instead of the working tree, so CI PR runs scope to the PR's "
        "delta (e.g. --changed-since origin/main)",
    )
    parser.add_argument(
        "--emit-crash-surface",
        default=None,
        metavar="PATH",
        help="build the persistence model and write the crash-surface "
        "catalog (op -> ordered persistence points -> covering hook) as "
        "schema-checked JSON to PATH, then exit",
    )
    parser.add_argument(
        "--emit-replay-matrix",
        default=None,
        metavar="PATH",
        help="build the commute model and write the replay matrix "
        "(per-op component footprints + a commute/conditional/conflict "
        "verdict for every op pair) as schema-checked JSON to PATH, "
        "then exit",
    )
    return parser


def _changed_paths(root: Path, since: str | None = None) -> set[str] | None:
    """Root-relative paths of files changed in the enclosing git
    checkout, or ``None`` when git is unavailable or ``root`` is not in
    a checkout.  By default: tracked changes against HEAD plus untracked
    files (the dirty working tree).  With ``since``, the diff base is
    ``git merge-base since HEAD`` instead — the PR's delta — which is
    what a CI pull-request run wants; untracked files still count."""
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=root if root.is_dir() else root.parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff_base = "HEAD"
        if since is not None:
            diff_base = subprocess.run(
                ["git", "merge-base", since, "HEAD"],
                cwd=top,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", diff_base],
            cwd=top,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=top,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None

    resolved_root = root.resolve()
    changed: set[str] = set()
    for line in (diff + untracked).splitlines():
        if not line.strip() or not line.endswith(".py"):
            continue
        candidate = (Path(top) / line).resolve()
        if not candidate.is_file():
            # Deleted (or renamed-away) in the working tree: nothing to
            # analyze, and --check-baseline must not judge its baseline
            # entries stale — the deletion commit is what ratchets them.
            continue
        if resolved_root.is_file():
            if candidate == resolved_root:
                changed.add(resolved_root.name)  # matches Analyzer._relpath
            continue
        try:
            rel = candidate.relative_to(resolved_root)
        except ValueError:
            continue  # changed, but outside the analyzed tree
        changed.add(rel.as_posix())
    return changed


def _emitter_modules(root: Path):
    """Parse the FULL tree for a surface emitter, or ``None`` after
    reporting parse errors.

    Emitters deliberately ignore ``--changed-only``/``--changed-since``:
    the committed artifacts describe whole-tree surfaces, and a scoped
    emission would silently drop every op or point whose code happens to
    be unchanged — the output must be byte-identical however the run is
    scoped."""
    modules, parse_errors = Analyzer(root).parse_all()
    if parse_errors:
        for finding in parse_errors:
            print(finding.render(), file=sys.stderr)
        return None
    return modules


def _emit_crash_surface(root: Path, target: Path) -> int:
    """Build the persistence model and write the crash-surface catalog.

    The write is atomic and validated before it lands, so an interrupted
    or misconfigured run can never truncate or corrupt the committed
    ``crashpoints.json`` CI diffs against."""
    from repro.analysis.persistence import model_for
    from repro.analysis.persistence.surface import (
        build_crash_surface,
        validate_crash_surface,
    )

    modules = _emitter_modules(root)
    if modules is None:
        return 2
    try:
        model = model_for(modules)
    except PersistenceConfigError as error:
        print(f"raelint: persistence spec error: {error}", file=sys.stderr)
        return 2
    if model is None:
        print(
            "raelint: --emit-crash-surface needs a spec/persistence.py in the analyzed tree",
            file=sys.stderr,
        )
        return 2
    payload = build_crash_surface(model)
    validate_crash_surface(payload)
    atomic_write_json(target, payload)
    print(
        f"raelint: crash surface: {len(payload['points'])} persistence point(s) "
        f"across {len(payload['ops'])} op(s) -> {target}"
    )
    return 0


def _emit_replay_matrix(root: Path, target: Path) -> int:
    """Build the commute model and write the replay matrix (the shard
    surface: per-op footprints and pairwise replay verdicts)."""
    from repro.analysis.commute import model_for
    from repro.analysis.commute.surface import (
        build_replay_matrix,
        validate_replay_matrix,
    )

    modules = _emitter_modules(root)
    if modules is None:
        return 2
    try:
        model = model_for(modules)
    except CommuteConfigError as error:
        print(f"raelint: commute spec error: {error}", file=sys.stderr)
        return 2
    if model is None:
        print(
            "raelint: --emit-replay-matrix needs a spec/commute.py in the analyzed tree",
            file=sys.stderr,
        )
        return 2
    payload = build_replay_matrix(model)
    validate_replay_matrix(payload)
    atomic_write_json(target, payload)
    verdicts = [pair["verdict"] for pair in payload["pairs"].values()]
    print(
        f"raelint: replay matrix: {len(payload['ops'])} op(s), "
        f"{len(verdicts)} pair(s) "
        f"({verdicts.count('commute')} commute, "
        f"{verdicts.count('conditional-on-disjoint-subtree')} conditional, "
        f"{verdicts.count('conflict')} conflict) -> {target}"
    )
    return 0


def _resolve_baseline_path(args: argparse.Namespace, root: Path) -> Path:
    if args.baseline:
        return Path(args.baseline)
    cwd_candidate = Path.cwd() / BASELINE_FILENAME
    if cwd_candidate.exists():
        return cwd_candidate
    root_candidate = root / BASELINE_FILENAME
    if root_candidate.exists():
        return root_candidate
    return cwd_candidate


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id:20} [{rule.family}] {rule.description}")
        return 0

    if args.select:
        tokens = {part.strip() for part in args.select.split(",") if part.strip()}
        known = {rule.rule_id for rule in rules}
        families = rule_families()
        wanted: set[str] = set()
        unknown: list[str] = []
        for token in sorted(tokens):
            if token in known:
                wanted.add(token)
            elif token in families:
                wanted.update(families[token])
            else:
                unknown.append(token)
        if unknown:
            print(
                f"raelint: unknown rule id(s) or famil(ies): {', '.join(unknown)} "
                f"(families: {', '.join(sorted(families))})",
                file=sys.stderr,
            )
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    root = Path(args.root)
    if not root.exists():
        print(f"raelint: no such path: {root}", file=sys.stderr)
        return 2

    # Surface emitters run before --changed-only is even computed: the
    # committed artifacts are whole-tree surfaces, so emission must be
    # byte-identical however the run is scoped (see _emitter_modules).
    if args.emit_crash_surface:
        return _emit_crash_surface(root, Path(args.emit_crash_surface))
    if args.emit_replay_matrix:
        return _emit_replay_matrix(root, Path(args.emit_replay_matrix))

    only_paths: set[str] | None = None
    if args.changed_since and not args.changed_only:
        print("raelint: --changed-since requires --changed-only", file=sys.stderr)
        return 2
    if args.changed_only:
        only_paths = _changed_paths(root, since=args.changed_since)
        if only_paths is None:
            print("raelint: --changed-only requires a git checkout", file=sys.stderr)
            return 2
        if not only_paths:
            print("raelint: no changed files under the analyzed root")
            return 0

    baseline_path = _resolve_baseline_path(args, root)
    baseline = Baseline.load(baseline_path)
    try:
        report = Analyzer(root, rules=rules, baseline=baseline, only_paths=only_paths).run()
    except (ConcurrencyConfigError, PersistenceConfigError, CommuteConfigError) as error:
        # A spec/concurrency.py, spec/persistence.py, or spec/commute.py
        # declaration that cannot bind is a broken configuration, not a
        # finding: report it like a bad --select.
        family = {
            PersistenceConfigError: "persistence",
            ConcurrencyConfigError: "concurrency",
            CommuteConfigError: "commute",
        }[type(error)]
        print(f"raelint: {family} spec error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline or args.update_baseline:
        updated = Baseline.from_findings(report.findings)
        if args.update_baseline:
            added = len(updated.entries - baseline.entries)
            dropped = len(baseline.entries - updated.entries)
            updated.save(baseline_path)
            print(
                f"raelint: baseline updated at {baseline_path}: "
                f"{len(updated)} entr{'y' if len(updated) == 1 else 'ies'} "
                f"(+{added} new, -{dropped} no longer firing)"
            )
        else:
            updated.save(baseline_path)
            print(f"raelint: wrote {len(report.findings)} finding(s) to {baseline_path}")
        return 0

    if args.check_baseline:
        fired = {finding.baseline_key() for finding in report.findings}
        selected_rules = {rule.rule_id for rule in rules}
        stale = sorted(
            entry
            for entry in baseline.entries
            # Only judge entries this run could have reproduced: a
            # --select/--changed-only run must not call out-of-scope
            # entries stale.
            if entry[1] in selected_rules
            and (only_paths is None or entry[0] in only_paths)
            and entry not in fired
        )
        if stale:
            for path, rule_id, message in stale:
                print(f"raelint: stale baseline entry: {path} [{rule_id}] {message}")
            print(
                f"raelint: {len(stale)} baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} no longer fire(s); "
                f"run --update-baseline to ratchet down"
            )
            return 1

    if args.format == "github":
        new = set(report.new_findings)
        for finding in report.findings:
            print(_github_annotation(finding, root, baselined=finding not in new))
        print(report.summary())
    elif args.format == "json":
        payload = {
            "files": report.files,
            "findings": [f.to_json() for f in report.findings],
            "new": [f.to_json() for f in report.new_findings],
            "suppressed": report.suppressed,
            "baselined": report.baselined,
            "clean": report.clean,
        }
        print(json.dumps(payload, indent=2))
    else:
        new = set(report.new_findings)
        for finding in report.findings:
            tag = "" if finding in new else " (baselined)"
            print(finding.render() + tag)
        print(report.summary())

    if args.fail_on_findings and not report.clean:
        return 1
    return 0
