"""Interprocedural contract inference for raelint.

This subpackage is the static analogue of the paper's constrained-mode
cross-checking: instead of comparing base and shadow *outcomes* at
runtime during a recovery, it computes, per function, what each
implementation *could* do — which :class:`~repro.errors.Errno` values it
can raise via ``FsError`` and which effects (device writes, journal
transitions, cache dirtying, lock traffic, fd-table mutation) it can
have — and compares those summaries against the declared per-op contract
table in ``spec/contracts.py``.

* :mod:`repro.analysis.contracts.summaries` — bottom-up summaries over
  the project call graph, iterated to a fixpoint so recursion and call
  cycles converge.
* :mod:`repro.analysis.contracts.declared` — extraction of the declared
  ``OP_CONTRACTS`` table and the base/shadow implementation classes from
  the analyzed tree (parsed, not imported, so the rules work on fixture
  trees exactly like OPLOG-COVERAGE does with ``OP_SIGNATURES``).

The consuming rules are ERRNO-PARITY, EFFECT-CONTRACT, API-PARITY, and
STATE-PROTOCOL in :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.contracts.declared import (
    DeclaredOp,
    declared_contracts,
    implementation_classes,
)
from repro.analysis.contracts.summaries import (
    EFFECT_CACHE_DIRTY,
    EFFECT_DEVICE_FLUSH,
    EFFECT_DEVICE_WRITE,
    EFFECT_FD_TABLE,
    EFFECT_JOURNAL_ABORT,
    EFFECT_JOURNAL_BEGIN,
    EFFECT_JOURNAL_COMMIT,
    EFFECT_LOCK_ACQUIRE,
    EFFECT_LOCK_RELEASE,
    EFFECT_NAMES,
    UNKNOWN_ERRNO,
    Summary,
    SummaryEngine,
)
from repro.analysis.engine import ParsedModule
from repro.analysis.rules.shadow_reach import graph_for

# One SummaryEngine per module set.  Rules running under the engine pass
# their RuleContext and share its per-run store; the module-level cache
# remains for direct invocation, keyed the same way (identity of the
# sequence the engine passes to check_project).
_ENGINE_CACHE: list[tuple[Sequence[ParsedModule], SummaryEngine]] = []


def summaries_for(modules: Sequence[ParsedModule], context=None) -> SummaryEngine:
    if context is not None:
        key = ("contract-summaries", id(modules))
        engine = context.shared.get(key)
        if engine is None:
            engine = SummaryEngine(graph_for(modules, context))
            context.shared[key] = engine
        return engine
    for cached_modules, engine in _ENGINE_CACHE:
        if cached_modules is modules:
            return engine
    engine = SummaryEngine(graph_for(modules))
    _ENGINE_CACHE.append((modules, engine))
    del _ENGINE_CACHE[:-2]
    return engine


__all__ = [
    "DeclaredOp",
    "Summary",
    "SummaryEngine",
    "declared_contracts",
    "implementation_classes",
    "summaries_for",
    "EFFECT_NAMES",
    "EFFECT_DEVICE_WRITE",
    "EFFECT_DEVICE_FLUSH",
    "EFFECT_JOURNAL_BEGIN",
    "EFFECT_JOURNAL_COMMIT",
    "EFFECT_JOURNAL_ABORT",
    "EFFECT_CACHE_DIRTY",
    "EFFECT_LOCK_ACQUIRE",
    "EFFECT_LOCK_RELEASE",
    "EFFECT_FD_TABLE",
    "UNKNOWN_ERRNO",
]
