"""Bottom-up interprocedural errno/effect summaries.

For every definition in the project call graph this module computes a
:class:`Summary`:

* ``errnos`` — the names of the :class:`~repro.errors.Errno` members the
  function can raise via ``FsError``, directly or through any callee.  A
  raise whose errno is not a literal ``Errno.X`` (``FsError(err.errno)``)
  contributes the :data:`UNKNOWN_ERRNO` token instead of a name.
* ``effects`` — which of the :data:`EFFECT_NAMES` footprints the
  function can have, directly or through any callee.

Local facts are purely syntactic (the same receiver-naming conventions
the flow rules already rely on); propagation follows the PR-2 call graph
and is iterated to a fixpoint, so mutually recursive helpers converge —
the lattice is finite (subsets of errno names / effect tags) and the
transfer is monotone union, so termination is guaranteed.

Errno propagation is *masked* at call sites that are lexically inside a
``try`` body whose handlers catch ``FsError`` (or a broader class): the
callee may raise, but the caller absorbs it.  A handler that contains a
bare ``raise`` re-raises what it caught, so it does not mask.  Effects
are never masked — catching an exception does not undo a device write.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.flow.callgraph import CallGraph

#: Token for an ``FsError`` raise whose errno is not a literal member.
UNKNOWN_ERRNO = "?"

EFFECT_DEVICE_WRITE = "device-write"
EFFECT_DEVICE_FLUSH = "device-flush"
EFFECT_JOURNAL_BEGIN = "journal-begin"
EFFECT_JOURNAL_COMMIT = "journal-commit"
EFFECT_JOURNAL_ABORT = "journal-abort"
EFFECT_CACHE_DIRTY = "cache-dirty"
EFFECT_LOCK_ACQUIRE = "lock-acquire"
EFFECT_LOCK_RELEASE = "lock-release"
EFFECT_FD_TABLE = "fd-table"

#: The full effect vocabulary; ``spec/contracts.py`` declares footprints
#: in these terms and the regression tests pin the two in sync.
EFFECT_NAMES: frozenset[str] = frozenset({
    EFFECT_DEVICE_WRITE,
    EFFECT_DEVICE_FLUSH,
    EFFECT_JOURNAL_BEGIN,
    EFFECT_JOURNAL_COMMIT,
    EFFECT_JOURNAL_ABORT,
    EFFECT_CACHE_DIRTY,
    EFFECT_LOCK_ACQUIRE,
    EFFECT_LOCK_RELEASE,
    EFFECT_FD_TABLE,
})

_DEVICE_WRITE_METHODS = frozenset({"write_block", "submit_write"})
_DEVICE_RECEIVERS = frozenset({"device", "dev", "disk", "blkmq"})
_JOURNAL_METHODS = {
    "begin": EFFECT_JOURNAL_BEGIN,
    "commit": EFFECT_JOURNAL_COMMIT,
    "abort": EFFECT_JOURNAL_ABORT,
    "append": EFFECT_JOURNAL_COMMIT,
}
_LOCK_ACQUIRE_METHODS = frozenset({"acquire", "acquire_pair"})
_LOCK_RELEASE_METHODS = frozenset({"release", "release_all"})
_FD_TABLE_RECEIVERS = frozenset({"fd_table", "fds"})
_FD_TABLE_MUTATORS = frozenset({"allocate", "release", "install", "remove"})
_MASKING_EXCEPTIONS = frozenset({"FsError", "Exception", "BaseException"})


@dataclass(frozen=True)
class Summary:
    """What one function can do, transitively."""

    errnos: frozenset[str]
    effects: frozenset[str]

    def union(self, other: "Summary") -> "Summary":
        if not other.errnos and not other.effects:
            return self
        return Summary(self.errnos | other.errnos, self.effects | other.effects)


def _receiver_name(expr: ast.expr) -> str:
    """The final name component of a call receiver (``self.journal`` →
    ``journal``; ``device`` → ``device``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _errno_of(expr: ast.expr | None) -> str | None:
    """``Errno.ENOENT`` → ``"ENOENT"``; anything else → ``None``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "Errno"
    ):
        return expr.attr
    return None


def _is_fs_error_call(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name):
        return func.id == "FsError"
    return isinstance(func, ast.Attribute) and func.attr == "FsError"


def _own_statements(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every node in ``func``'s own body, not descending into nested
    function/class definitions (those carry their own summaries)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _handler_masks(handler: ast.ExceptHandler) -> bool:
    """Does ``handler`` absorb an ``FsError`` raised in the try body?"""
    names: list[str] = []
    if handler.type is None:
        names.append("BaseException")
    elif isinstance(handler.type, ast.Tuple):
        names.extend(_exc_name(e) for e in handler.type.elts)
    else:
        names.append(_exc_name(handler.type))
    if not any(name in _MASKING_EXCEPTIONS for name in names):
        return False
    # A bare `raise` inside the handler re-raises the caught FsError.
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise) and node.exc is None:
            return False
    return True


def _exc_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def masked_calls(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[int]:
    """``id()`` of every call expression in ``func``'s own body whose
    ``FsError`` propagation is absorbed by an enclosing handler.

    Only ``try`` *bodies* are guarded: handlers, ``orelse``, and
    ``finally`` run outside the handlers' protection.
    """
    masked: set[int] = set()

    def visit(stmts: list[ast.stmt], guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
                body_guarded = guarded or any(_handler_masks(h) for h in stmt.handlers)
                visit(stmt.body, body_guarded)
                for handler in stmt.handlers:
                    visit(handler.body, guarded)
                visit(stmt.orelse, guarded)
                visit(stmt.finalbody, guarded)
                continue
            if guarded:
                # Everything lexically inside a masked try body is
                # absorbed, including calls in nested compounds.  Extra
                # ids (nested defs) are harmless: the engine only looks
                # up calls from the def's own body.
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        masked.add(id(node))
            for field_name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field_name, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    visit(sub, guarded)

    visit(func.body, False)
    return masked


def local_summary(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Summary:
    """The intraprocedural facts: raises and effects in ``func``'s own
    body, ignoring callees."""
    errnos: set[str] = set()
    effects: set[str] = set()
    for node in _own_statements(func):
        if isinstance(node, ast.Raise) and node.exc is not None and _is_fs_error_call(node.exc):
            call = node.exc
            arg: ast.expr | None = call.args[0] if call.args else None
            for kw in call.keywords:
                if kw.arg == "errno":
                    arg = kw.value
            name = _errno_of(arg)
            errnos.add(name if name is not None else UNKNOWN_ERRNO)
        elif isinstance(node, ast.Call):
            effects.update(_call_effects(node))
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "dirty":
                    value = getattr(node, "value", None)
                    if isinstance(value, ast.Constant) and value.value is True:
                        effects.add(EFFECT_CACHE_DIRTY)
    return Summary(frozenset(errnos), frozenset(effects))


def _call_effects(call: ast.Call) -> set[str]:
    effects: set[str] = set()
    func = call.func
    if isinstance(func, ast.Attribute):
        method = func.attr
        receiver = _receiver_name(func.value)
        if method in _DEVICE_WRITE_METHODS:
            effects.add(EFFECT_DEVICE_WRITE)
        if method == "flush" and receiver in _DEVICE_RECEIVERS:
            effects.add(EFFECT_DEVICE_FLUSH)
        if "journal" in receiver.lower() and method in _JOURNAL_METHODS:
            effects.add(_JOURNAL_METHODS[method])
        if "lock" in receiver.lower():
            if method in _LOCK_ACQUIRE_METHODS:
                effects.add(EFFECT_LOCK_ACQUIRE)
            elif method in _LOCK_RELEASE_METHODS:
                effects.add(EFFECT_LOCK_RELEASE)
        if receiver in _FD_TABLE_RECEIVERS and method in _FD_TABLE_MUTATORS:
            effects.add(EFFECT_FD_TABLE)
        if method == "mark_dirty":
            effects.add(EFFECT_CACHE_DIRTY)
    for kw in call.keywords:
        if kw.arg == "dirty" and isinstance(kw.value, ast.Constant) and kw.value.value is True:
            effects.add(EFFECT_CACHE_DIRTY)
    return effects


class SummaryEngine:
    """Fixpoint summaries for every def in a :class:`CallGraph`.

    ``summaries[key]`` is the transitive :class:`Summary` for the def
    with that call-graph key.  Results are deterministic: the worklist is
    seeded in sorted key order and the lattice values are frozensets, so
    iteration order cannot leak into the result.
    """

    def __init__(self, graph: CallGraph):
        self.graph = graph
        self._local: dict[str, Summary] = {}
        # key -> [(masked, callee_keys)] per call site.
        self._sites: dict[str, list[tuple[bool, tuple[str, ...]]]] = {}
        callers_of: dict[str, set[str]] = {}
        for key in sorted(graph.defs):
            info = graph.defs[key]
            self._local[key] = local_summary(info.node)
            masked = masked_calls(info.node)
            sites = []
            for call, callees in graph.call_edges(key):
                sites.append((id(call) in masked, tuple(callees)))
                for callee in callees:
                    callers_of.setdefault(callee, set()).add(key)
            self._sites[key] = sites
        self.summaries: dict[str, Summary] = dict(self._local)
        self.iterations = self._fixpoint(callers_of)

    def local(self, key: str) -> Summary:
        """The intraprocedural summary (no callee propagation) — rules
        use it to identify the def that *originates* an effect when
        rendering witness chains."""
        return self._local[key]

    def _evaluate(self, key: str) -> Summary:
        value = self._local[key]
        for masked, callees in self._sites[key]:
            for callee in callees:
                callee_summary = self.summaries.get(callee)
                if callee_summary is None:
                    continue
                if masked:
                    value = value.union(Summary(frozenset(), callee_summary.effects))
                else:
                    value = value.union(callee_summary)
        return value

    def _fixpoint(self, callers_of: dict[str, set[str]]) -> int:
        worklist = sorted(self._local)
        queued = set(worklist)
        iterations = 0
        while worklist:
            key = worklist.pop(0)
            queued.discard(key)
            iterations += 1
            updated = self._evaluate(key)
            if updated != self.summaries[key]:
                self.summaries[key] = updated
                for caller in sorted(callers_of.get(key, ())):
                    if caller not in queued:
                        worklist.append(caller)
                        queued.add(caller)
        return iterations
