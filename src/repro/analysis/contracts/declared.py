"""Extraction of the declared contract table and the implementation
classes from the analyzed tree.

The rules *parse* the table out of ``spec/contracts.py`` rather than
importing :mod:`repro.spec.contracts`, for the same reason OPLOG-COVERAGE
parses ``OP_SIGNATURES`` out of ``api.py``: the rules must work on any
analyzed tree, including the synthetic fixture trees the test suite
builds under ``tmp_path``.  When no contract table is present in the
tree, the contract rules are silently not applicable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Sequence

from repro.analysis.engine import ParsedModule
from repro.analysis.flow.callgraph import CallGraph, ClassInfo

#: The class every filesystem implementation derives from.
API_CLASS_NAME = "FilesystemAPI"


@dataclass(frozen=True)
class DeclaredOp:
    """One operation's declared contract.

    ``errnos`` is what the *base* implementation may raise; the shadow
    may raise ``errnos | shadow_extra`` — ``shadow_extra`` names the
    sanctioned §3.3 divergences (e.g. the shadow's stubbed ``fsync``).
    ``effects``/``shadow_effects`` bound each implementation's footprint
    in the :data:`~repro.analysis.contracts.summaries.EFFECT_NAMES`
    vocabulary, and ``read_only`` marks ops that must not dirty caches
    or take locks in the base.
    """

    name: str
    line: int
    errnos: frozenset[str]
    shadow_extra: frozenset[str]
    effects: frozenset[str]
    shadow_effects: frozenset[str]
    read_only: bool


def _contract_module(modules: Sequence[ParsedModule]) -> ParsedModule | None:
    for module in modules:
        path = PurePosixPath(module.path)
        if path.name == "contracts.py" and "spec" in path.parts:
            return module
    return None


def declared_contracts(
    modules: Sequence[ParsedModule],
) -> tuple[ParsedModule, dict[str, DeclaredOp]] | None:
    """The ``OP_CONTRACTS`` table from ``spec/contracts.py``, or ``None``
    when the analyzed tree declares no contracts."""
    module = _contract_module(modules)
    if module is None:
        return None
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "OP_CONTRACTS" not in targets:
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        contracts: dict[str, DeclaredOp] = {}
        for key_node, value_node in zip(node.value.keys, node.value.values):
            try:
                name = ast.literal_eval(key_node) if key_node is not None else None
                spec = ast.literal_eval(value_node)
            except ValueError:
                return None
            if not isinstance(name, str) or not isinstance(spec, dict):
                return None
            contracts[name] = DeclaredOp(
                name=name,
                line=getattr(key_node, "lineno", node.lineno),
                errnos=frozenset(spec.get("errnos", ())),
                shadow_extra=frozenset(spec.get("shadow_extra", ())),
                effects=frozenset(spec.get("effects", ())),
                shadow_effects=frozenset(spec.get("shadow_effects", ())),
                read_only=bool(spec.get("read_only", False)),
            )
        return module, contracts
    return None


def _derives_from_api(graph: CallGraph, info: ClassInfo) -> bool:
    """Does ``info`` transitively subclass the API class?  Falls back to
    base *names* so fixture trees without an ``api.py`` still match."""
    seen: set[str] = set()
    stack = [info]
    while stack:
        current = stack.pop()
        if current.key in seen:
            continue
        seen.add(current.key)
        if any(base.split("[")[0].split(".")[-1] == API_CLASS_NAME for base in current.base_names):
            return True
        for base_key in current.base_keys:
            base_info = graph.classes.get(base_key)
            if base_info is not None:
                stack.append(base_info)
    return False


def derives_from_api(graph: CallGraph, info: ClassInfo) -> bool:
    """Public alias: API-PARITY checks every implementation, not just the
    base/shadow pair."""
    return _derives_from_api(graph, info)


def implementation_classes(graph: CallGraph) -> list[tuple[str, ClassInfo]]:
    """The filesystem implementations under contract, as ``(role, class)``
    pairs — role ``"base"`` for classes under ``basefs/`` and
    ``"shadow"`` for classes under ``shadowfs/``.  Other implementations
    (the supervisor's recording wrappers, the spec model oracle) are
    checked by API-PARITY but not by the errno/effect rules."""
    roles: list[tuple[str, ClassInfo]] = []
    for key in sorted(graph.classes):
        info = graph.classes[key]
        parts = set(PurePosixPath(info.path).parts)
        if not _derives_from_api(graph, info):
            continue
        if "basefs" in parts:
            roles.append(("base", info))
        elif "shadowfs" in parts:
            roles.append(("shadow", info))
    return roles


def api_class(modules: Sequence[ParsedModule]) -> tuple[ParsedModule, ast.ClassDef] | None:
    """The abstract API class definition, wherever it lives in the tree."""
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == API_CLASS_NAME:
                return module, node
    return None
