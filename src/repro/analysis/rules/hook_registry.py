"""HOOK-REGISTRY: every fired hook name exists in the central registry.

The fault injector only reaches the base through named hook points
(basefs/hooks.py); a typo'd name at a fire site — ``"dir.isnert"`` —
would compile, run, and silently never trigger any injected fault,
quietly weakening every fault-injection experiment downstream.  This
cross-module rule reads the ``HOOK_NAMES`` registry statically and
verifies that every ``*.hooks.fire("name", ...)`` / ``*.hooks.register(
"name", ...)`` call with a literal name uses a registered one.

Dynamic names (variables) are skipped here — ``HookPoints`` validates
those at runtime against the same frozen set, so the static and dynamic
checks agree by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding

_HOOK_METHODS = {"fire", "register"}


def _find_registry(modules: Sequence[ParsedModule]) -> set[str] | None:
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "HOOK_NAMES" not in targets:
                continue
            if not isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
                return None
            names = {
                elt.value
                for elt in node.value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            }
            return names
    return None


def _hook_receiver(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return "hook" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "hook" in node.attr.lower()
    return False


class HookRegistryRule(ProjectRule):
    rule_id = "HOOK-REGISTRY"
    family = "core"
    description = "hook names at fire/register sites must exist in the HOOK_NAMES registry"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        registry = _find_registry(modules)
        if registry is None:
            return  # no registry in this tree; rule not applicable
        for module in modules:
            for node in ast.walk(module.tree):
                if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                    continue
                if node.func.attr not in _HOOK_METHODS or not _hook_receiver(node.func.value):
                    continue
                if not node.args:
                    continue
                first = node.args[0]
                if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                    continue  # dynamic name; validated at runtime by HookPoints
                if first.value not in registry:
                    yield self.finding(
                        module,
                        node,
                        f"hook name {first.value!r} is not in the HOOK_NAMES registry "
                        "(a typo'd hook site silently never triggers injected faults)",
                    )
