"""PERSIST-ORDER: declared durability protocols are typestate-checked.

SquirrelFS (PAPERS.md) shows crash-consistency ordering can be a
compile-time typestate discipline: each persistence operation moves the
transaction through a declared state machine, and an operation arriving
in the wrong state is a bug *before* any crash test runs.  This rule is
the Python analogue over raelint's CFGs: ``DURABILITY_PROTOCOL``
(``spec/persistence.py``) declares, per function, the ordered phases
(``journal-write -> barrier -> commit-record -> barrier`` for the
journal writer, etc.), and the rule walks every CFG path — loops, early
returns, exception handlers — advancing a state set per the function's
classified persistence primitives plus its declared delegated events
(``writer.append`` counting as the commit record it performs).

Semantics of the automaton:

* a ``"?"``-suffixed phase may be skipped (a commit with no dirty data
  pages submits no data writes);
* repeating the phase just completed is legal (a loop of journal-block
  writes is one ``journal-write`` phase);
* an event that fits no next phase on *any* live path fires
  **out-of-order** at that call (must-semantics: a ``for`` loop always
  has a statically-possible zero-iteration path, so firing on "some
  path" would flag every phase that runs inside a loop — the mismatching
  path is poisoned and stays silent instead);
* a *normal* return mid-protocol (some non-optional phase not reached,
  and the protocol was started) fires **incomplete**, anchored at the
  ``return``/final statement — exceptional exits are deliberately
  exempt: an exception abandons the transaction before its commit
  record, which is exactly the case journal replay recovers, and state
  still propagates *through* handler edges so a catch-and-continue path
  is checked like any other.

Silent when the tree declares no ``spec/persistence.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import CFGNode
from repro.analysis.flow.dataflow import FORWARD, DataflowAnalysis, ordered_calls, solve
from repro.analysis.persistence import model_for
from repro.analysis.persistence.model import PersistenceModel, event_name, normal_exit_preds

_POISON = -1


def _base(phase: str) -> str:
    return phase[:-1] if phase.endswith("?") else phase


def _optional(phase: str) -> bool:
    return phase.endswith("?")


def _advance(state: int, kind: str, phases: tuple[str, ...]) -> int | None:
    """Next automaton state after event ``kind``, or ``None`` on a
    protocol violation.  ``state`` counts completed phases."""
    if state == _POISON:
        return _POISON
    if state > 0 and kind == _base(phases[state - 1]):
        return state  # repetition of the phase just completed (loops)
    j = state
    while j < len(phases):
        if _base(phases[j]) == kind:
            return j + 1
        if not _optional(phases[j]):
            break
        j += 1
    return None


class _ProtocolAnalysis(DataflowAnalysis):
    direction = FORWARD

    def __init__(self, events: dict[int, str], phases: tuple[str, ...]):
        self._events = events
        self._phases = phases

    def boundary(self) -> frozenset:
        return frozenset({0})

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, value: frozenset) -> frozenset:
        for call in ordered_calls(node.payload):
            kind = self._events.get(id(call))
            if kind is None:
                continue
            value = frozenset(
                _advance(state, kind, self._phases) or _POISON for state in value
            ) if value else value
        return value


class PersistOrderRule(ProjectRule):
    rule_id = "PERSIST-ORDER"
    family = "persistence"
    description = (
        "functions declared in DURABILITY_PROTOCOL step through their "
        "persistence phases in order on every CFG path"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        for proto_name in sorted(model.decls.protocols):
            phases, event_map = model.decls.protocols[proto_name]
            for info in model._bound_defs(proto_name):
                yield from self._check_def(model, info, proto_name, phases, event_map)

    def _event_plan(self, model: PersistenceModel, key: str,
                    event_map: dict[str, str]) -> dict[int, str]:
        """id(call) -> event kind: classified primitives plus the
        declared delegated events."""
        plan = model.plan_for(key)
        events: dict[int, str] = {}
        for call in model.graph._own_calls(model.graph.defs[key].node):
            action = plan.get(id(call))
            if action is not None and action[0] == "primitive":
                events[id(call)] = action[1]
                continue
            name = event_name(call)
            if name is not None and name in event_map:
                events[id(call)] = event_map[name]
        return events

    def _check_def(self, model: PersistenceModel, info, proto_name: str,
                   phases: tuple[str, ...], event_map: dict[str, str]) -> Iterable[Finding]:
        events = self._event_plan(model, info.key, event_map)
        cfg = self.context.cfg(info.node)
        analysis = _ProtocolAnalysis(events, phases)
        values = solve(cfg, analysis)
        declared = " -> ".join(phases)
        reported: set[int] = set()
        for node in cfg.nodes:
            value = values[node.index].before
            for call in ordered_calls(node.payload):
                kind = events.get(id(call))
                if kind is None:
                    continue
                live = sorted(state for state in value if state != _POISON)
                bad = [s for s in live if _advance(s, kind, phases) is None]
                # Fire only when *every* live state mismatches: a for-loop
                # always has a statically-possible zero-iteration path, so
                # "some path hasn't done phase N yet" would flag every
                # protocol whose phase runs inside a loop.
                if live and bad == live and id(call) not in reported:
                    reported.add(id(call))
                    state = bad[0]
                    done = _base(phases[state - 1]) if state > 0 else "start"
                    yield Finding(
                        path=info.path,
                        line=getattr(call, "lineno", info.line),
                        rule_id=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"{kind} out of order in {info.qualname}: after "
                            f"phase {done!r} the declared protocol "
                            f"[{declared}] does not allow it"
                        ),
                    )
                value = frozenset(
                    _advance(state, kind, phases) or _POISON for state in value
                ) if value else value
        # Normal completion: every non-poisoned exit state must be 0
        # (never started), n (done), or followed only by optional phases.
        seen_exits: set[tuple[int, int]] = set()
        for pred in normal_exit_preds(cfg):
            node = cfg.nodes[pred]
            for state in sorted(values[pred].after):
                if state in (_POISON, 0, len(phases)):
                    continue
                if all(_optional(p) for p in phases[state:]):
                    continue
                line = node.line or info.line
                if (pred, state) in seen_exits:
                    continue
                seen_exits.add((pred, state))
                missing = " -> ".join(
                    p for p in phases[state:] if not _optional(p)
                )
                yield Finding(
                    path=info.path,
                    line=line,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"{info.qualname} can return with its durability "
                        f"protocol incomplete: phases [{missing}] not "
                        f"performed on this path (declared: [{declared}])"
                    ),
                )
