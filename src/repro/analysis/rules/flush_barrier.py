"""FLUSH-BARRIER: no in-place write may overtake an unflushed commit record.

The journal's atomicity pivot is the commit record: once it is on the
platter, replay applies the transaction; before that, replay discards
it.  That pivot only works if a device flush *orders* the commit record
against every later checkpoint/home-location write — a checkpoint that
reaches the disk while the commit record still sits in a volatile cache
is exactly the reordering window Chipmunk-style crash-consistency
studies catalog: crash inside it and recovery replays a half-applied
transaction or none at all, with the home location already mutated.

This is the interprocedural, barrier-aware generalization of
JOURNAL-BEFORE-WRITE: that rule asks "is this device write dominated by
a journal commit *call*"; this one tracks the *pending unflushed commit
record* through the persistence model's composed summaries
(:mod:`repro.analysis.persistence.model`), so a commit record written
three calls deep (``JournalWriter.append``) and sealed by its own flush
makes the caller's writeback provably safe — and deleting that one
flush turns the caller's writeback into a finding that names the callee
chain.  Silent when the tree declares no ``spec/persistence.py``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.persistence import model_for


class FlushBarrierRule(ProjectRule):
    rule_id = "FLUSH-BARRIER"
    family = "persistence"
    description = (
        "every commit-record write must be flushed before any checkpoint/"
        "in-place write can follow, on every path (spec/persistence.py)"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        for violation in model.violations:
            origin = f"{violation.origin[0]}:{violation.origin[1]}"
            site = f"{violation.site[0]}:{violation.site[1]}"
            if violation.via is None:
                message = (
                    f"in-place write may execute while the commit record "
                    f"written at {origin} is still unflushed — add a device "
                    f"flush between the commit record and this write"
                )
            else:
                message = (
                    f"call into {model.qualname(violation.via)} reaches an "
                    f"in-place write ({site}) while the commit record written "
                    f"at {origin} is still unflushed — flush the device "
                    f"before this call"
                )
            yield Finding(
                path=violation.path,
                line=violation.line,
                rule_id=self.rule_id,
                severity=self.severity,
                message=message,
            )
