"""The replay-commutativity rules: COMMUTE-PARITY, SHARD-FOOTPRINT,
REPLAY-ISOLATION.

Sharded replay (ROADMAP: partition the oplog by directory subtree and
replay shards in parallel) stands on the committed ``replaymatrix.json``
being *true*: every replayable op's state footprint expressed in the
declared component vocabulary, every conflict argued.  These three rules
are what keep the matrix honest as the tree moves:

* **COMMUTE-PARITY** holds the inferred footprints against the reviewed
  ``DECLARED_FOOTPRINTS`` in both directions — an instance the model
  infers but the spec does not declare means the code grew a state
  access nobody reviewed; a declared instance the model no longer infers
  means the spec is stale.  It also fires on any hard conflict no
  ``COMMUTE_SANCTIONS`` entry argues, so a new collision cannot slide
  into the matrix unexamined.
* **SHARD-FOOTPRINT** fires on every write in the replay closure the
  component vocabulary cannot express: an escape to unclassified state
  is exactly the access pattern that makes a shard verdict unsound.
* **REPLAY-ISOLATION** fires when a replayable op reaches module-level
  mutable state (or declares ``global``): cross-shard singletons make
  even "disjoint" shards race.

All three are silent when the tree declares no ``spec/commute.py``.
Misdeclarations (unbindable root, unknown component, stale sanction)
raise :class:`CommuteConfigError` out of the analyzer — raelint exits 2
rather than reporting findings against a broken spec.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.commute import model_for
from repro.analysis.commute.model import CommuteModel
from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding


class CommuteParityRule(ProjectRule):
    rule_id = "COMMUTE-PARITY"
    family = "commute"
    description = (
        "inferred replay footprints match the reviewed DECLARED_FOOTPRINTS "
        "in both directions, and every hard conflict carries a sanction"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        yield from self._check_footprints(model)
        yield from self._check_conflicts(model)

    def _check_footprints(self, model: CommuteModel) -> Iterable[Finding]:
        for op in sorted(model.footprints):
            root = model.graph.defs[model.roots[op]]
            declared = model.decls.footprints.get(op)
            if declared is None:
                yield Finding(
                    path=root.path,
                    line=root.line,
                    rule_id=self.rule_id,
                    severity=self.severity,
                    message=(
                        f"replayable op {op!r} ({root.qualname}) has no "
                        "DECLARED_FOOTPRINTS entry: its footprint was never "
                        "reviewed"
                    ),
                )
                continue
            for mode, table in (("read", "reads"), ("write", "writes")):
                inferred = set(model.inferred_instances(op, mode))
                reviewed = set(declared[table])
                for instance in sorted(inferred - reviewed):
                    access = model.footprints[op].of_mode(mode)[instance]
                    yield Finding(
                        path=access.path,
                        line=access.line,
                        rule_id=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"op {op!r} {table} {instance!r} but "
                            "DECLARED_FOOTPRINTS does not declare it "
                            f"({access.detail}; via "
                            f"{model.render_chain(access.chain)})"
                        ),
                    )
                for instance in sorted(reviewed - inferred):
                    yield Finding(
                        path=model.decls.module.path,
                        line=model.decls.line_of(f"footprint:{op}"),
                        rule_id=self.rule_id,
                        severity=self.severity,
                        message=(
                            f"DECLARED_FOOTPRINTS[{op!r}] declares "
                            f"{table} {instance!r} but the model no longer "
                            "infers it: the spec is stale"
                        ),
                    )

    def _check_conflicts(self, model: CommuteModel) -> Iterable[Finding]:
        for a, b, component in model.unsanctioned_conflicts():
            root = model.graph.defs[model.roots[a]]
            yield Finding(
                path=root.path,
                line=root.line,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"ops {a!r} and {b!r} conflict on {component!r} with no "
                    "COMMUTE_SANCTIONS entry: argue the conflict away "
                    "('commutes') or order it ('serialize') in spec/commute.py"
                ),
            )


class ShardFootprintRule(ProjectRule):
    rule_id = "SHARD-FOOTPRINT"
    family = "commute"
    description = (
        "every write reachable from a replayable op is expressible in the "
        "declared component vocabulary"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        for write in model.unclassified_writes:
            yield Finding(
                path=write.path,
                line=write.line,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"{write.detail} (reached via "
                    f"{model.render_chain(write.chain)}); classify it in "
                    "spec/commute.py or argue a scratch exemption"
                ),
            )


class ReplayIsolationRule(ProjectRule):
    rule_id = "REPLAY-ISOLATION"
    family = "commute"
    description = (
        "no replayable op reaches module-level mutable state or declares "
        "global: cross-shard singletons break shard isolation"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        for violation in model.isolation_violations:
            yield Finding(
                path=violation.path,
                line=violation.line,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"{violation.detail} (reached via "
                    f"{model.render_chain(violation.chain)})"
                ),
            )
