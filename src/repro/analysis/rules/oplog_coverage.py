"""OPLOG-COVERAGE: every mutating operation is recorded before success.

§3.2: "the base filesystem must record the operation sequence that
tracks the gap between the applications' view and the on-disk state."
In this codebase the recording chain is

    BaseFilesystem.<op>  (the mutation itself, basefs/filesystem.py)
      ← RAEFilesystem.<op> delegates via self._call("<op>", ...)
          ← _call records mutations with self.oplog.record(...) on the
            success path (the ``else`` of its try)

and the set of mutating operations is the single source of truth
``OP_SIGNATURES`` in api.py.  This cross-module rule statically verifies
the whole chain: for every op marked mutating there,

* ``BaseFilesystem`` defines the method (the operation exists);
* ``RAEFilesystem`` defines the method and routes it through the
  recording delegate (``self._call("<op>", ...)``) or records directly;
* the delegate itself contains an ``*.oplog.record(...)`` call that is
  not inside an exception handler (success path, not error path).

A new mutating op added to the API without wiring it through recording
is exactly the drift that would silently break recovery replay.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding


def _find_class(modules: Sequence[ParsedModule], name: str) -> tuple[ParsedModule, ast.ClassDef] | None:
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == name:
                return module, node
    return None


def _find_op_signatures(modules: Sequence[ParsedModule]) -> dict[str, bool] | None:
    """Extract ``{op_name: is_mutation}`` from an OP_SIGNATURES literal."""
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "OP_SIGNATURES" not in targets:
                continue
            try:
                literal = ast.literal_eval(node.value)
            except ValueError:
                return None
            return {name: bool(spec[1]) for name, spec in literal.items()}
    return None


def _methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _is_oplog_record_call(node: ast.AST) -> bool:
    """Matches ``<anything>.oplog.record(...)`` and ``oplog.record(...)``."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr != "record":
        return False
    value = node.func.value
    if isinstance(value, ast.Attribute):
        return value.attr == "oplog"
    return isinstance(value, ast.Name) and value.id == "oplog"


def _delegate_names(method: ast.FunctionDef, op_name: str) -> set[str]:
    """Names of ``self.<delegate>("<op_name>", ...)`` calls in ``method``."""
    names: set[str] = set()
    for node in ast.walk(method):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if not (isinstance(node.func.value, ast.Name) and node.func.value.id == "self"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant) and node.args[0].value == op_name:
            names.add(node.func.attr)
    return names


def _records_directly(method: ast.FunctionDef) -> bool:
    return any(_is_oplog_record_call(node) for node in ast.walk(method))


def _records_on_success_path(module: ParsedModule, method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if not _is_oplog_record_call(node):
            continue
        in_handler = any(isinstance(a, ast.ExceptHandler) for a in module.ancestors(node))
        if not in_handler:
            return True
    return False


class OplogCoverageRule(ProjectRule):
    rule_id = "OPLOG-COVERAGE"
    family = "core"
    description = "every mutating API operation must reach oplog.record on its success path"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        signatures = _find_op_signatures(modules)
        if signatures is None:
            return  # no API contract in this tree; rule not applicable
        mutating = sorted(name for name, is_mutation in signatures.items() if is_mutation)
        if not mutating:
            return

        base = _find_class(modules, "BaseFilesystem")
        supervisor = _find_class(modules, "RAEFilesystem")

        if base is not None:
            base_module, base_cls = base
            base_methods = _methods(base_cls)
            for name in mutating:
                if name not in base_methods:
                    yield self.finding(
                        base_module,
                        base_cls,
                        f"mutating operation {name!r} is in OP_SIGNATURES but BaseFilesystem does not implement it",
                    )

        if supervisor is None:
            return
        sup_module, sup_cls = supervisor
        sup_methods = _methods(sup_cls)
        for name in mutating:
            method = sup_methods.get(name)
            if method is None:
                yield self.finding(
                    sup_module,
                    sup_cls,
                    f"mutating operation {name!r} has no RAEFilesystem wrapper, so it is never recorded",
                )
                continue
            if _records_directly(method):
                continue
            delegates = _delegate_names(method, name)
            recording_delegates = [
                d for d in delegates
                if d in sup_methods and _records_on_success_path(sup_module, sup_methods[d])
            ]
            if not recording_delegates:
                yield self.finding(
                    sup_module,
                    method,
                    f"mutating operation {name!r} does not reach an oplog.record(...) call on its success path",
                )
