"""SHADOW-PURITY: the shadow stays simple, sequential, and read-only.

§3.2's defining restrictions on the shadow filesystem: it executes one
operation at a time, keeps no caches, and never writes to the device.
Any module under a ``shadowfs/`` directory therefore must not

* import concurrency machinery (``threading``, ``concurrent``,
  ``multiprocessing``, ``asyncio``, ...) — the shadow is sequential;
* import the base's cache, writeback, journal, lock, or block-queue
  layers — the shadow re-reads everything and has no deferred state;
* import the hook layer or the fault injector — there is nothing to
  inject into (the shadow's robustness budget goes to checks, not
  hooks);
* import the observability layer (``repro.obs``) — instrumentation
  means clocks, and clocks in the replay closure break determinism;
  the supervisor wraps replay with spans from *outside*;
* call a device write path (``write_block``, ``submit_write``,
  ``flush``), implement durability (``fsync`` calls), or fire hooks.

Definitions named ``fsync`` are allowed — the shadow implements the API
method precisely so it can *refuse* with EINVAL; only calls are writes.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding

#: module (or module prefix) -> why the shadow may not import it
FORBIDDEN_IMPORTS: dict[str, str] = {
    "threading": "the shadow is sequential (§3.2)",
    "_thread": "the shadow is sequential (§3.2)",
    "concurrent": "the shadow is sequential (§3.2)",
    "multiprocessing": "the shadow is sequential (§3.2)",
    "asyncio": "the shadow is sequential (§3.2)",
    "queue": "the shadow is sequential (§3.2)",
    "repro.basefs.page_cache": "the shadow is cache-free (§3.2)",
    "repro.basefs.dentry_cache": "the shadow is cache-free (§3.2)",
    "repro.basefs.inode_cache": "the shadow is cache-free (§3.2)",
    "repro.blockdev.cache": "the shadow is cache-free (§3.2)",
    "repro.basefs.writeback": "the shadow never writes to disk (§3.2)",
    "repro.basefs.journal_mgr": "the shadow never writes to disk (§3.2)",
    "repro.blockdev.blkmq": "the shadow issues device reads directly, no queues (§3.2)",
    "repro.basefs.locks": "the shadow is sequential and takes no locks (§3.2)",
    "repro.basefs.hooks": "the shadow has no injection hooks (§2.3)",
    "repro.faults": "the shadow has no injection hooks (§2.3)",
    "repro.obs": "the shadow is instrumentation-free — clocks and metrics "
    "break replay determinism (§3.2); the supervisor wraps replay with "
    "spans from outside",
}

#: attribute-call name -> why the shadow may not call it
FORBIDDEN_CALLS: dict[str, str] = {
    "write_block": "device write from the shadow (§3.2: the shadow never writes to disk)",
    "submit_write": "device write from the shadow (§3.2: the shadow never writes to disk)",
    "flush": "durability call from the shadow (§3.2: the shadow never writes to disk)",
    "fsync": "durability call from the shadow (§3.3: the shadow omits the sync family)",
    "fire": "hook firing from the shadow (§2.3: the shadow has no hooks)",
}


def _import_violation(name: str) -> str | None:
    for prefix, reason in FORBIDDEN_IMPORTS.items():
        if name == prefix or name.startswith(prefix + "."):
            return reason
    return None


class ShadowPurityRule(FileRule):
    rule_id = "SHADOW-PURITY"
    family = "core"
    description = "shadowfs modules must stay sequential, cache-free, and read-only"

    def applies_to(self, module: ParsedModule) -> bool:
        return "shadowfs" in PurePosixPath(module.path).parts

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if not self.applies_to(module):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    reason = _import_violation(alias.name)
                    if reason:
                        yield self.finding(module, node, f"import of {alias.name!r}: {reason}")
            elif isinstance(node, ast.ImportFrom):
                if node.module:
                    reason = _import_violation(node.module)
                    if reason:
                        yield self.finding(module, node, f"import from {node.module!r}: {reason}")
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                reason = FORBIDDEN_CALLS.get(node.func.attr)
                if reason:
                    yield self.finding(module, node, f"call to .{node.func.attr}(): {reason}")
