"""The raelint rule set.

Each rule enforces one structural invariant the paper states; see
docs/STATIC_ANALYSIS.md for the rule-by-rule rationale.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.errno_discipline import ErrnoDisciplineRule
from repro.analysis.rules.hook_registry import HookRegistryRule
from repro.analysis.rules.lock_release import LockReleaseRule
from repro.analysis.rules.oplog_coverage import OplogCoverageRule
from repro.analysis.rules.shadow_purity import ShadowPurityRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    ShadowPurityRule,
    OplogCoverageRule,
    LockReleaseRule,
    ErrnoDisciplineRule,
    HookRegistryRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of the full rule set."""
    return [cls() for cls in RULE_CLASSES]


__all__ = [
    "RULE_CLASSES",
    "default_rules",
    "ShadowPurityRule",
    "OplogCoverageRule",
    "LockReleaseRule",
    "ErrnoDisciplineRule",
    "HookRegistryRule",
]
