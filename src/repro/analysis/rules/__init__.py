"""The raelint rule set.

Each rule enforces one structural invariant the paper states; see
docs/STATIC_ANALYSIS.md for the rule-by-rule rationale.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.api_parity import ApiParityRule
from repro.analysis.rules.async_blocking import AsyncBlockingRule
from repro.analysis.rules.atomic_rmw import AtomicRmwRule
from repro.analysis.rules.await_holding_lock import AwaitHoldingLockRule
from repro.analysis.rules.commute import (
    CommuteParityRule,
    ReplayIsolationRule,
    ShardFootprintRule,
)
from repro.analysis.rules.crash_hook_coverage import CrashHookCoverageRule
from repro.analysis.rules.effect_contract import EffectContractRule
from repro.analysis.rules.flush_barrier import FlushBarrierRule
from repro.analysis.rules.errno_discipline import ErrnoDisciplineRule
from repro.analysis.rules.errno_parity import ErrnoParityRule
from repro.analysis.rules.hook_registry import HookRegistryRule
from repro.analysis.rules.journal_before_write import JournalBeforeWriteRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.lock_release import LockReleaseRule
from repro.analysis.rules.oplog_coverage import OplogCoverageRule
from repro.analysis.rules.persist_order import PersistOrderRule
from repro.analysis.rules.race_lockset import RaceLocksetRule
from repro.analysis.rules.replay_determinism import ReplayDeterminismRule
from repro.analysis.rules.shadow_purity import ShadowPurityRule
from repro.analysis.rules.shadow_reach import ShadowReachRule
from repro.analysis.rules.state_protocol import StateProtocolRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    ShadowPurityRule,
    ShadowReachRule,
    OplogCoverageRule,
    LockReleaseRule,
    LockOrderRule,
    JournalBeforeWriteRule,
    ReplayDeterminismRule,
    ErrnoDisciplineRule,
    HookRegistryRule,
    ErrnoParityRule,
    EffectContractRule,
    ApiParityRule,
    StateProtocolRule,
    RaceLocksetRule,
    AtomicRmwRule,
    AsyncBlockingRule,
    AwaitHoldingLockRule,
    FlushBarrierRule,
    PersistOrderRule,
    CrashHookCoverageRule,
    CommuteParityRule,
    ShardFootprintRule,
    ReplayIsolationRule,
)


def rule_families() -> dict[str, tuple[str, ...]]:
    """family -> rule ids, in registration order (``--select`` accepts a
    family name as shorthand for all of its rules)."""
    families: dict[str, list[str]] = {}
    for cls in RULE_CLASSES:
        families.setdefault(cls.family, []).append(cls.rule_id)
    return {family: tuple(ids) for family, ids in families.items()}


def default_rules() -> list[Rule]:
    """Fresh instances of the full rule set."""
    return [cls() for cls in RULE_CLASSES]


__all__ = [
    "RULE_CLASSES",
    "default_rules",
    "rule_families",
    "ShadowPurityRule",
    "ShadowReachRule",
    "OplogCoverageRule",
    "LockReleaseRule",
    "LockOrderRule",
    "JournalBeforeWriteRule",
    "ReplayDeterminismRule",
    "ErrnoDisciplineRule",
    "HookRegistryRule",
    "ErrnoParityRule",
    "EffectContractRule",
    "ApiParityRule",
    "StateProtocolRule",
    "RaceLocksetRule",
    "AtomicRmwRule",
    "AsyncBlockingRule",
    "AwaitHoldingLockRule",
    "FlushBarrierRule",
    "PersistOrderRule",
    "CrashHookCoverageRule",
    "CommuteParityRule",
    "ShardFootprintRule",
    "ReplayIsolationRule",
]
