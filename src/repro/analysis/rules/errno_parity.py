"""ERRNO-PARITY: implementations raise only their declared errnos.

The paper's constrained mode (§3.3) cross-checks base and shadow
*outcomes* — op by op, at runtime, during a recovery.  This rule is the
static half of that bargain: the interprocedural summary engine
(:mod:`repro.analysis.contracts.summaries`) computes every ``Errno`` a
base or shadow operation can raise through any call chain, and compares
it against the declared contract table in ``spec/contracts.py``.

* a **base** implementation may raise only the op's declared ``errnos``;
* a **shadow** implementation may raise ``errnos | shadow_extra`` — the
  ``shadow_extra`` entries are the sanctioned divergences, argued inline
  in the table (the shadow's stubbed ``fsync``, its raw-block path
  resolution).  Everything shadow-reachable beyond that set is exactly
  the class of bug constrained mode would only catch *during a failure*;
  here it fails the lint run instead.

An ``FsError`` raised with a non-literal errno (``FsError(err.errno)``)
cannot be checked and is reported as such: the parity argument depends
on the raise sites being enumerable.

Findings anchor at the operation's ``def`` line in the implementation —
that is where the undeclared raise is reachable *from*, and where a
sanctioned suppression belongs.  The rule is silent on trees that
declare no contract table (fixture trees), like OPLOG-COVERAGE without
``OP_SIGNATURES``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.contracts import UNKNOWN_ERRNO, declared_contracts, implementation_classes, summaries_for
from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.rules.shadow_reach import graph_for


class ErrnoParityRule(ProjectRule):
    rule_id = "ERRNO-PARITY"
    family = "contracts"
    description = "base/shadow operations may raise only the errnos declared for them in spec/contracts.py"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        declared = declared_contracts(modules)
        if declared is None:
            return
        _, contracts = declared
        graph = graph_for(modules, self.context)
        engine = summaries_for(modules, self.context)
        by_path = {module.path: module for module in modules}

        for role, info in implementation_classes(graph):
            module = by_path.get(info.path)
            if module is None:
                continue
            for op_name in sorted(contracts):
                contract = contracts[op_name]
                key = info.methods.get(op_name)
                if key is None:
                    continue  # inherited or absent; API-PARITY owns presence
                summary = engine.summaries[key]
                allowed = contract.errnos
                if role == "shadow":
                    allowed = allowed | contract.shadow_extra
                node = graph.defs[key].node
                undeclared = sorted(summary.errnos - allowed - {UNKNOWN_ERRNO})
                if undeclared:
                    yield self.finding(
                        module,
                        node,
                        f"{info.qualname}.{op_name}() can raise "
                        f"{', '.join('Errno.' + e for e in undeclared)} — not declared for "
                        f"op '{op_name}' ({role} allows: {', '.join(sorted(allowed)) or 'none'})",
                    )
                if UNKNOWN_ERRNO in summary.errnos:
                    yield self.finding(
                        module,
                        node,
                        f"{info.qualname}.{op_name}() reaches an FsError raise whose errno is "
                        f"not a literal Errno member; parity with the declared contract "
                        f"cannot be verified",
                    )
