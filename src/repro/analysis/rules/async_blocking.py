"""ASYNC-BLOCKING: no blocking call reachable from a coroutine.

The coming asyncio front-end multiplexes every tenant onto one event
loop; a single ``time.sleep`` or synchronous ``open`` anywhere under an
``async def`` stalls *all* of them.  This rule walks the call graph from
every async def and reports blocking calls with the witness chain that
reaches them.

What counts as blocking:

* a known blocking stdlib call — ``time.sleep``, the ``subprocess``
  runners, raw ``os`` I/O, ``socket.create_connection`` — resolved
  through each module's import aliases (``from time import sleep`` is
  still ``time.sleep``);
* the ``open(...)`` builtin (synchronous file I/O);
* a non-awaited, no-argument ``.acquire()`` on a lock-ish receiver: a
  ``threading`` lock acquired inside a coroutine blocks the loop, not
  just the task.  ``await lock.acquire()`` is the asyncio idiom and is
  exempt.

The traversal stops at async-def boundaries — a blocking call is
attributed to its *nearest* enclosing coroutine, not to every coroutine
upstream — and never crosses executor hops by construction:
``loop.run_in_executor(None, fn)`` / ``asyncio.to_thread(fn)`` pass
``fn`` without calling it, so the call graph has no edge to follow,
which is exactly the sanctioned escape hatch for blocking work.

Runs unconditionally (no spec gate): an async def in the tree is its
own evidence of an event loop.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.concurrency.model import own_nodes
from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph, render_chain
from repro.analysis.flow.dataflow import lock_receiver
from repro.analysis.rules.shadow_reach import graph_for

#: Dotted names that block the calling thread (and thus the event loop).
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.read",
    "os.write",
    "os.fsync",
    "os.open",
    "socket.create_connection",
    "requests.get",
    "requests.post",
    "urllib.request.urlopen",
})

_BLOCKING_MODULES = frozenset(name.rsplit(".", 1)[0] for name in BLOCKING_CALLS)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin, for the modules the blocklist cares
    about (``sleep`` -> ``time.sleep``, ``sp`` -> ``subprocess``)."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _BLOCKING_MODULES or alias.name.split(".")[0] in _BLOCKING_MODULES:
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module in _BLOCKING_MODULES:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def _dotted(expr: ast.expr) -> str | None:
    parts: list[str] = []
    cursor = expr
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
        return ".".join(reversed(parts))
    return None


def blocking_reason(call: ast.Call, aliases: dict[str, str], module: ParsedModule) -> str | None:
    """Why ``call`` blocks the event loop, or ``None`` if it does not."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "builtin open() does synchronous file I/O"
        origin = aliases.get(func.id)
        if origin in BLOCKING_CALLS:
            return f"{origin}() blocks the calling thread"
        return None
    dotted = _dotted(func)
    if dotted is not None:
        head, _, rest = dotted.partition(".")
        resolved = f"{aliases[head]}.{rest}" if head in aliases and rest else dotted
        if resolved in BLOCKING_CALLS:
            return f"{resolved}() blocks the calling thread"
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "acquire"
        and not call.args
        and lock_receiver(func.value)
        and not isinstance(module.parent(call), ast.Await)
    ):
        return (
            f"sync {ast.unparse(func.value)}.acquire() blocks the event loop "
            f"(use an asyncio.Lock, or run it in an executor)"
        )
    return None


class AsyncBlockingRule(ProjectRule):
    rule_id = "ASYNC-BLOCKING"
    family = "concurrency"
    description = "no blocking call (time.sleep, sync I/O, sync lock acquire) reachable from an async def"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        graph = graph_for(modules, self.context)
        roots = sorted(
            key
            for key, info in graph.defs.items()
            if isinstance(info.node, ast.AsyncFunctionDef)
        )
        if not roots:
            return
        by_path = {module.path: module for module in modules}
        alias_cache: dict[str, dict[str, str]] = {}
        async_keys = set(roots)
        reported: set[tuple[str, int, str]] = set()

        for root in roots:
            parents = self._reach_sync(graph, root, async_keys)
            for key in sorted(parents):
                info = graph.defs[key]
                module = by_path.get(info.path)
                if module is None:
                    continue
                if info.path not in alias_cache:
                    alias_cache[info.path] = _import_aliases(module.tree)
                aliases = alias_cache[info.path]
                for node in own_nodes(info.node):
                    if not isinstance(node, ast.Call):
                        continue
                    reason = blocking_reason(node, aliases, module)
                    if reason is None:
                        continue
                    dedupe = (info.path, node.lineno, reason)
                    if dedupe in reported:
                        continue
                    reported.add(dedupe)
                    chain = render_chain(graph, graph.chain(parents, key))
                    where = "in the coroutine body" if key == root else f"via {chain}"
                    yield self.finding(
                        module,
                        node,
                        f"blocking call reachable from async "
                        f"{graph.defs[root].qualname}() {where}: {reason}",
                    )

    @staticmethod
    def _reach_sync(graph: CallGraph, root: str, async_keys: set[str]) -> dict[str, str | None]:
        """BFS from ``root`` that does not expand through *other* async
        defs: each blocking site is attributed to its nearest coroutine,
        which is the frame that actually stalls the loop."""
        parents: dict[str, str | None] = {root: None}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for callee in sorted(graph.edges.get(current, ())):
                if callee in parents or callee in async_keys:
                    continue
                parents[callee] = current
                queue.append(callee)
        return parents
