"""RACE-LOCKSET: every write to a shared attribute holds its declared lock.

The static half of Eraser's lockset algorithm, run over the shared-state
model (:mod:`repro.analysis.concurrency.model`): a class is shared when
an instance escapes to another thread/task or when it is registered in
``SHARED_CLASSES``, and every attribute of a shared class needs a
synchronization story *in writing*:

* a real ``GUARDED_BY`` token — then every write site must have that
  token in its may-held lockset (acquire/release fixpoint plus enclosing
  ``with <lock>:`` blocks), or the write fires;
* the :data:`GUARD_SINGLE_THREADED` sentinel — an argued sanction that
  the owner is still driven by one thread today (the concurrency
  analogue of ``shadow_extra``), silencing the rule until the token
  flips to a real lock;
* nothing — then any *write* fires: a shared attribute whose guard
  nobody bothered to name is exactly the state a future concurrent
  caller corrupts first.

Read-modify-writes (``+=``) are deliberately excluded here — they fire
ATOMIC-RMW, which judges the whole compound, so one seeded bug maps to
exactly one rule.  Silent when the tree declares no
``spec/concurrency.py``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.concurrency import GUARD_SINGLE_THREADED, model_for, norm_token
from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding


class RaceLocksetRule(ProjectRule):
    rule_id = "RACE-LOCKSET"
    family = "concurrency"
    description = "writes to shared attributes must hold the GUARDED_BY lock declared in spec/concurrency.py"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        by_path = {module.path: module for module in modules}
        for attr_key in model.shared_attr_keys():
            guard = model.guards.get(attr_key)
            if guard == GUARD_SINGLE_THREADED:
                continue
            writes = [site for site in model.accesses[attr_key] if site.kind == "write"]
            if not writes:
                continue
            reason = model.reason(attr_key)
            for site in writes:
                module = by_path.get(site.path)
                if module is None:
                    continue
                if guard is None:
                    yield self.finding(
                        module,
                        site.node,
                        f"write to shared attribute {attr_key} with no GUARDED_BY "
                        f"declaration (owner is shared: {reason}); declare its lock "
                        f"in spec/concurrency.py or sanction it with "
                        f"{GUARD_SINGLE_THREADED!r}",
                    )
                    continue
                token = norm_token(guard)
                if token not in site.held:
                    held = ", ".join(sorted(site.held)) or "none"
                    yield self.finding(
                        module,
                        site.node,
                        f"write to {attr_key} without its declared guard {guard!r} "
                        f"(may-held locks here: {held}; owner is shared: {reason})",
                    )
