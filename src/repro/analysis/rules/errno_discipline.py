"""ERRNO-DISCIPLINE: all errors go through the errors.py catalog.

The paper's taxonomy (errors.py) is what makes detection meaningful:
``FsError`` is a legitimate outcome, the catalog classes are runtime
errors the detector classifies, and anything else is an UNEXPECTED
software fault.  That taxonomy only works if the code keeps it crisp:

* no generic ``raise Exception(...)`` / ``RuntimeError`` — a deliberate
  error must be a catalog class, otherwise the detector can only call
  it "unexpected" and reporting loses the reason;
* no broad ``except Exception:`` / bare ``except:`` — a broad catch
  swallows KernelBug/InvariantViolation before the detector ever sees
  them.  The handful of *sanctioned* boundaries (the supervisor's
  detector boundary, which must observe the UNEXPECTED class by design)
  carry explicit ``# raelint: disable=ERRNO-DISCIPLINE`` suppressions
  with their justification;
* ``FsError`` must be raised with an ``Errno`` member (or a propagated
  ``*.errno`` value), never a bare integer or string — the oplog stores
  the errno as the operation outcome and replay compares it exactly.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding

#: Exception classes too generic to raise deliberately.
GENERIC_RAISES = {"Exception", "BaseException", "RuntimeError", "SystemError"}

#: Exception classes too broad to catch without a sanctioned suppression.
BROAD_CATCHES = {"Exception", "BaseException"}


def _exception_name(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _errno_like(node: ast.expr) -> bool:
    """Accept ``Errno.ENOENT``, ``outcome.errno``, ``errno``-named vars,
    and ``Errno(...)`` conversions; reject literals and anything else."""
    text = ast.unparse(node)
    return "Errno" in text or "errno" in text


class ErrnoDisciplineRule(FileRule):
    rule_id = "ERRNO-DISCIPLINE"
    family = "core"
    description = "no generic raises or broad excepts; FsError carries an Errno member"

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(module, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)

    def _check_raise(self, module: ParsedModule, node: ast.Raise) -> Iterable[Finding]:
        name = _exception_name(node.exc)
        if name in GENERIC_RAISES:
            yield self.finding(
                module,
                node,
                f"raise of generic {name}: deliberate errors must use a class from the errors.py catalog",
            )
            return
        if name == "FsError" and isinstance(node.exc, ast.Call):
            call = node.exc
            if not call.args:
                yield self.finding(module, node, "FsError raised without an errno argument")
            elif not _errno_like(call.args[0]):
                yield self.finding(
                    module,
                    node,
                    f"FsError raised with {ast.unparse(call.args[0])!r} instead of an Errno enum member",
                )

    def _check_handler(self, module: ParsedModule, node: ast.ExceptHandler) -> Iterable[Finding]:
        if node.type is None:
            yield self.finding(
                module, node, "bare except: catches everything, including detector-bound runtime errors"
            )
            return
        types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
        for exc_type in types:
            name = _exception_name(exc_type)
            if name in BROAD_CATCHES:
                yield self.finding(
                    module,
                    node,
                    f"broad 'except {name}:' hides runtime errors from the detector; "
                    "catch catalog classes, or suppress with a justification if this is a sanctioned boundary",
                )
