"""AWAIT-HOLDING-LOCK: no await while holding a synchronous lock.

An ``await`` parks the current task and lets the event loop schedule
others — with a ``threading``-style lock (or a ``LockManager`` inode
lock) still held.  Any other task that needs that lock then blocks the
*loop thread itself* trying to acquire it, and the task that would
release it can never be scheduled again: instant single-threaded
deadlock, the async twin of LOCK-RELEASE's leak-on-exception.

The rule computes, at every ``await`` inside an async def, the may-held
set of synchronous locks:

* the acquire/release fixpoint (``locks.acquire(ino)`` and bare
  ``lock.acquire()``), minus tokens whose acquire was itself awaited —
  ``await lock.acquire()`` is an *asyncio* lock by construction;
* plus lexically enclosing **sync** ``with <lock>:`` blocks.  ``async
  with lock:`` is exempt: holding an asyncio lock across an await is the
  intended idiom (the loop keeps running; only same-lock tasks wait).

Runs unconditionally, like ASYNC-BLOCKING: it needs no shared-state
declarations, only an async def and a lock.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.concurrency.model import (
    ConcurrencyLockset,
    lockset_at,
    norm_token,
    own_nodes,
    with_lock_tokens,
)
from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.flow.dataflow import ACQUIRE_METHODS, lock_call, solve


class AwaitHoldingLockRule(FileRule):
    rule_id = "AWAIT-HOLDING-LOCK"
    family = "concurrency"
    description = "an async def must not await while holding a synchronous lock"

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for func in self._async_defs(module.tree):
            awaits = [node for node in own_nodes(func) if isinstance(node, ast.Await)]
            if not awaits:
                continue
            cfg = self.context.cfg(func)
            values = solve(cfg, ConcurrencyLockset())
            async_tokens = self._awaited_acquire_tokens(func)
            for node in awaits:
                held = lockset_at(cfg, values, module, node) - async_tokens
                held |= with_lock_tokens(module, node, include_async=False)
                if not held:
                    continue
                locks = ", ".join(sorted(held))
                yield self.finding(
                    module,
                    node,
                    f"await inside {func.name}() while holding sync lock(s) "
                    f"{locks}: another task needing them deadlocks the loop; "
                    f"release before awaiting or switch to asyncio.Lock",
                )

    @staticmethod
    def _async_defs(tree: ast.Module) -> list[ast.AsyncFunctionDef]:
        return [
            node for node in ast.walk(tree) if isinstance(node, ast.AsyncFunctionDef)
        ]

    @staticmethod
    def _awaited_acquire_tokens(func: ast.AsyncFunctionDef) -> frozenset[str]:
        """Tokens taken by ``await x.acquire()`` — asyncio locks, which
        the sync-lock check must not count."""
        tokens: set[str] = set()
        for node in own_nodes(func):
            if (
                isinstance(node, ast.Await)
                and lock_call(node.value, ACQUIRE_METHODS)
                and not node.value.args
            ):
                tokens.add(norm_token(ast.unparse(node.value.func.value)))
        return frozenset(tokens)
