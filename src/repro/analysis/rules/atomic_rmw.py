"""ATOMIC-RMW: read-modify-writes on shared attributes must be atomic.

A lost update needs less than a data race: even when every individual
access is guarded, ``self.stats.recorded += 1`` is a read, an add, and a
write — interleave two of them and one increment vanishes.  This rule
judges the *compound*, not the accesses:

* an augmented assignment (``+=``, ``|=``, ...) to a shared attribute
  must run with a lock in its may-held lockset — the declared
  ``GUARDED_BY`` token when one exists, otherwise any lock at all (no
  lock means no atomicity story whatsoever);
* in an async def, a read of a shared attribute followed by a write of
  the same attribute **across an ``await``** is the cooperative-
  scheduling spelling of the same bug: the event loop may run another
  task between the read and the write.  It fires unless one common lock
  spans both ends (an ``async with lock:`` around the whole compound).

Attributes sanctioned with :data:`GUARD_SINGLE_THREADED` are exempt,
same as RACE-LOCKSET.  Silent when the tree declares no
``spec/concurrency.py``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.concurrency import GUARD_SINGLE_THREADED, model_for, norm_token
from repro.analysis.concurrency.model import own_nodes
from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding


class AtomicRmwRule(ProjectRule):
    rule_id = "ATOMIC-RMW"
    family = "concurrency"
    description = "read-modify-write of a shared attribute must hold a lock across the whole compound"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        by_path = {module.path: module for module in modules}
        graph = model.graph

        for attr_key in model.shared_attr_keys():
            guard = model.guards.get(attr_key)
            if guard == GUARD_SINGLE_THREADED:
                continue
            token = norm_token(guard) if guard else None
            reason = model.reason(attr_key)
            sites = model.accesses[attr_key]

            for site in sites:
                if site.kind != "rmw":
                    continue
                module = by_path.get(site.path)
                if module is None:
                    continue
                if token is not None and token not in site.held:
                    held = ", ".join(sorted(site.held)) or "none"
                    yield self.finding(
                        module,
                        site.node,
                        f"read-modify-write of {attr_key} without its declared "
                        f"guard {guard!r} (may-held locks here: {held}; owner is "
                        f"shared: {reason})",
                    )
                elif token is None and not site.held:
                    yield self.finding(
                        module,
                        site.node,
                        f"unsynchronized read-modify-write of shared attribute "
                        f"{attr_key}: the load and the store can interleave with "
                        f"another thread/task (owner is shared: {reason})",
                    )

            # Read ... await ... write of the same attribute inside one
            # async def: the cooperative lost update.
            for def_key in sorted({site.def_key for site in sites if site.in_async}):
                per_def = [site for site in sites if site.def_key == def_key]
                reads = [s for s in per_def if s.kind == "read"]
                writes = [s for s in per_def if s.kind in ("write", "rmw")]
                if not reads or not writes:
                    continue
                await_lines = [
                    node.lineno
                    for node in own_nodes(graph.defs[def_key].node)
                    if isinstance(node, ast.Await)
                ]
                if not await_lines:
                    continue
                for write in writes:
                    module = by_path.get(write.path)
                    if module is None:
                        continue
                    for read in reads:
                        if read.line >= write.line:
                            continue
                        if read.held & write.held:
                            continue  # one lock spans the compound
                        split = [
                            line for line in await_lines if read.line < line <= write.line
                        ]
                        if not split:
                            continue
                        yield self.finding(
                            module,
                            write.node,
                            f"read of {attr_key} at line {read.line} and this "
                            f"write are split by an await at line {split[0]}: "
                            f"another task can run in between (owner is shared: "
                            f"{reason}); hold one lock across the compound",
                        )
                        break  # one finding per write site
