"""STATE-PROTOCOL: typestate over the CFG, SquirrelFS-style.

SquirrelFS (SOSP '24) encodes filesystem state machines in the type
system so an operation that skips a protocol step fails to compile.
raelint cannot lean on a type checker, but the same two protocols this
codebase depends on are checkable as dataflow typestate over the PR-2
CFG (:mod:`repro.analysis.flow.cfg`), whose exceptional edges are
first-class — so "on all paths" includes the path where a hook-injected
fault unwinds the frame:

* **Journal transactions**: ``journal.begin()`` must be matched by a
  ``commit()`` or ``abort()`` on *every* CFG path to the function exit.
  Forward may-analysis: a begin fact that can reach EXIT means some path
  — usually the exceptional edge of a statement between begin and commit
  — leaks an open transaction, which the next mount would replay or
  discard unpredictably.  ``with journal.begin():`` is exempt: the
  context manager's ``__exit__`` is the close.
* **File descriptors**: an fd bound from an ``open()`` call must be
  closed, or handed off, on *some* path.  Forward must-analysis: a fact
  that survives to EXIT on every path is an fd that no path closes.
  Handing the fd off — returning it, yielding it, storing it, aliasing
  it, passing it to a plain function — ends this function's custody and
  kills the fact; passing it to method calls (``fs.read(fd, ...)``) is
  a use, not a hand-off.

Both checks are intraprocedural by design: the protocols are local
idioms (begin/commit in one function body, open/close in one helper),
and the paper's recovery machinery depends on them holding locally so
replay can cut in at any op boundary.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import CFG, CFGNode, build_cfg, function_defs
from repro.analysis.flow.dataflow import GenKillAnalysis, ordered_calls, solve

_JOURNAL_OPEN = frozenset({"begin"})
_JOURNAL_CLOSE = frozenset({"commit", "abort"})
_FD_CLOSE = frozenset({"close", "release"})


def _receiver_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _journal_call(call: ast.Call, methods: frozenset[str]) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in methods
        and "journal" in _receiver_name(call.func.value).lower()
    )


class _JournalAnalysis(GenKillAnalysis):
    """Forward may-analysis: which begin sites can be open here.

    Facts are ``"line:col"`` of the begin call.  ``transfer`` walks the
    node's calls in source order so ``commit(); begin()`` on one line
    still ends with an open transaction.
    """

    may = True

    def __init__(self) -> None:
        self.begin_nodes: dict[str, int] = {}  # fact -> CFG node index
        self.begin_calls: dict[str, ast.Call] = {}

    def transfer(self, node: CFGNode, value: frozenset) -> frozenset:
        if node.kind == "with":
            # `with journal.begin():` — the context manager closes it.
            return value
        for call in ordered_calls(node.payload):
            if _journal_call(call, _JOURNAL_CLOSE):
                value = frozenset()
            if _journal_call(call, _JOURNAL_OPEN):
                fact = f"{call.lineno}:{call.col_offset}"
                self.begin_nodes[fact] = node.index
                self.begin_calls[fact] = call
                value = value | {fact}
        return value


class _FdAnalysis(GenKillAnalysis):
    """Forward must-analysis: which opened fds have been neither closed
    nor handed off on *every* path reaching this point."""

    may = False

    def __init__(self, facts: frozenset[str], gen_at: dict[int, frozenset[str]], kill_at: dict[int, frozenset[str]]):
        self._facts = facts
        self._gen = gen_at
        self._kill = kill_at

    def universe(self) -> frozenset:
        return self._facts

    def gen(self, node: CFGNode) -> frozenset:
        return self._gen.get(node.index, frozenset())

    def kill(self, node: CFGNode) -> frozenset:
        return self._kill.get(node.index, frozenset())


def _fd_open_assign(stmt: ast.stmt) -> tuple[str, ast.Call] | None:
    """``name = <recv>.open(...)`` → ``(name, call)``."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "open"
    ):
        return target.id, value
    return None


def _names_outside_calls(node: ast.AST) -> set[str]:
    """Names in ``node`` excluding call subtrees: in ``x = fs.read(fd)``
    the ``fd`` is a *use* (argument), not an alias of the result."""
    names: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Call):
            continue
        if isinstance(current, ast.Name):
            names.add(current.id)
        stack.extend(ast.iter_child_nodes(current))
    return names


def _fd_releases(node: CFGNode, var: str) -> bool:
    """Does this node close ``var`` or take over its custody?"""
    for part in node.payload:
        for inner in ast.walk(part):
            if isinstance(inner, ast.Call):
                func = inner.func
                arg_names = set()
                for arg in list(inner.args) + [kw.value for kw in inner.keywords]:
                    if isinstance(arg, ast.Name):
                        arg_names.add(arg.id)
                if var in arg_names:
                    if isinstance(func, ast.Attribute) and func.attr in _FD_CLOSE:
                        return True  # fs.close(fd)
                    if isinstance(func, ast.Name):
                        return True  # helper(fd): custody handed off
            elif isinstance(inner, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(inner, "value", None)
                if value is not None and var in _names_outside_calls(value):
                    return True  # escapes to the caller
            elif isinstance(inner, ast.Assign):
                # fd stored or aliased: self._fd = fd / other = fd /
                # pair = (fd, path).  An fd used inside a call on the
                # RHS (res = fs.read(fd, ...)) is a use, not a hand-off.
                if var in _names_outside_calls(inner.value):
                    return True
    return False


class StateProtocolRule(FileRule):
    rule_id = "STATE-PROTOCOL"
    family = "contracts"
    description = "journal begin must commit/abort on every CFG path; opened fds must be closed or handed off on some path"

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for func in function_defs(module.tree):
            yield from self._check_journal(module, func)
            yield from self._check_fds(module, func)

    # -- journal: begin -> commit | abort on all paths -------------------

    def _check_journal(self, module: ParsedModule, func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterable[Finding]:
        if not any(
            _journal_call(call, _JOURNAL_OPEN)
            for call in ast.walk(func)
            if isinstance(call, ast.Call)
        ):
            return
        cfg = self.context.cfg(func)
        analysis = _JournalAnalysis()
        values = solve(cfg, analysis)
        exit_node = cfg.nodes[cfg.exit]
        leaked: set[str] = set()
        for pred in exit_node.pred:
            for fact in values[pred].after:
                begin_index = analysis.begin_nodes.get(fact)
                if begin_index is None:
                    continue
                # The begin node's own edge to EXIT models `begin()`
                # itself raising — no transaction was opened on that
                # path.  (When begin is the last statement, EXIT is also
                # its only fall-through successor, so it does count.)
                if pred == begin_index and len(cfg.nodes[begin_index].succ) > 1:
                    continue
                leaked.add(fact)
        for fact in sorted(leaked, key=lambda f: tuple(int(p) for p in f.split(":"))):
            call = analysis.begin_calls[fact]
            yield self.finding(
                module,
                call,
                f"journal transaction begun at line {call.lineno} in {func.name}() can reach "
                f"the function exit without commit() or abort() — an exceptional or "
                f"early-return path leaks an open transaction",
            )

    # -- fds: open -> ... -> close | hand-off on some path ---------------

    def _check_fds(self, module: ParsedModule, func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterable[Finding]:
        cfg = self.context.cfg(func)
        gen_at: dict[int, frozenset[str]] = {}
        opens: dict[str, tuple[str, ast.Call]] = {}  # fact -> (var, open call)
        for node in cfg.nodes:
            if node.stmt is None or node.kind != "stmt":
                continue
            bound = _fd_open_assign(node.stmt)
            if bound is None:
                continue
            var, call = bound
            fact = f"{var}@{call.lineno}"
            opens[fact] = (var, call)
            gen_at[node.index] = frozenset({fact})
        if not opens:
            return

        kill_at: dict[int, frozenset[str]] = {}
        for node in cfg.nodes:
            killed = frozenset(
                fact for fact, (var, _) in opens.items() if _fd_releases(node, var)
            )
            if killed:
                kill_at[node.index] = killed

        values = solve(cfg, _FdAnalysis(frozenset(opens), gen_at, kill_at))
        surviving = values[cfg.exit].before
        for fact in sorted(surviving, key=lambda f: opens[f][1].lineno):
            var, call = opens[fact]
            yield self.finding(
                module,
                call,
                f"fd '{var}' opened at line {call.lineno} in {func.name}() is never closed "
                f"(and never handed off) on any path to the function exit",
            )
