"""JOURNAL-BEFORE-WRITE: the journal stays ahead of data writeback.

RAE's trust base is the on-disk journal: recovery (both the base's
mount-time replay and the shadow's virtual replay) reconstructs state
from committed transactions, so a metadata home-location write that is
not covered by a prior journal entry is unrecoverable by construction —
exactly the write-ordering class SquirrelFS checks with typestate and B3
only finds after the crash.

This rule runs a forward must-analysis
(:class:`~repro.analysis.flow.dataflow.CallMarkerAnalysis`) over each
function CFG in ``basefs/``: every path from function entry to a raw
write site (``.write_block(...)``, ``.submit_write(...)``, or a cache
``.writeback*(...)`` home-location flush) must first pass a journal
marker — a ``.commit(...)`` call (the filesystem's or the journal
manager's single durability path) or a journal-writer ``.append(...)``.
"May reach the device unjournaled on some path" is the report condition;
joins use logical AND, so one uncovered path is enough.

The analysis is intraprocedural and the codebase has exactly one layer
that is *sanctioned* to write around it (the mount-state stamp, and
ordered-mode data writes that must precede the metadata commit); those
sites carry inline suppressions whose comments state the argument.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import build_cfg, function_defs
from repro.analysis.flow.dataflow import CallMarkerAnalysis, ordered_calls, solve

#: attribute names that put bytes on the device or flush cache to it
WRITE_METHODS = frozenset({"write_block", "submit_write", "writeback", "writeback_some"})


def _is_write(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Attribute) and call.func.attr in WRITE_METHODS


def _is_marker(call: ast.Call) -> bool:
    """A journal-entry call: ``*.commit(...)``, or ``append`` on a
    journal/writer-named receiver."""
    if not isinstance(call.func, ast.Attribute):
        return False
    if call.func.attr == "commit":
        return True
    if call.func.attr != "append":
        return False
    value = call.func.value
    name = value.id if isinstance(value, ast.Name) else getattr(value, "attr", "")
    return "journal" in name.lower() or "writer" in name.lower()


class JournalBeforeWriteRule(FileRule):
    rule_id = "JOURNAL-BEFORE-WRITE"
    family = "core"
    description = "basefs/ device writes must be dominated by a journal commit/append on every path"

    def applies_to(self, module: ParsedModule) -> bool:
        return "basefs" in PurePosixPath(module.path).parts

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if not self.applies_to(module):
            return
        for func in function_defs(module.tree):
            cfg = build_cfg(func)
            values = None
            for node in cfg.nodes:
                calls = ordered_calls(node.payload)
                if not any(_is_write(call) for call in calls):
                    continue
                if values is None:
                    values = solve(cfg, CallMarkerAnalysis(_is_marker))
                # Replay this node's calls in source order so a marker and
                # a write inside one statement are sequenced correctly.
                journaled = values[node.index].before
                for call in calls:
                    if _is_write(call) and not journaled:
                        yield self.finding(
                            module,
                            call,
                            f"{ast.unparse(call.func)}() in {func.name}() is reachable without "
                            "a prior journal commit/append on some path (the journal must "
                            "always be ahead of home-location writes)",
                        )
                    if _is_marker(call):
                        journaled = True
