"""API-PARITY: overrides match the abstract API signature exactly.

Four classes implement ``FilesystemAPI`` (base, shadow, the
supervisor's recording facade, the spec model), and the oplog replays
recorded calls against whichever one is active.  A drifted override —
renamed parameter, reordered arguments, changed default — replays
cleanly against one implementation and breaks (or silently changes
meaning: a different ``perms`` default) against another, which is
precisely the divergence the paper's replay machinery cannot tolerate.

The rule compares every override of an ``@abstractmethod`` of
``FilesystemAPI`` against the abstract signature: parameter names and
order (positional-only, positional, ``*args``, keyword-only,
``**kwargs``) and every default value.  Annotations are deliberately
not compared — they do not affect replay semantics and drift in them is
visible to a type checker, not a lint rule.

Silent on trees with no ``FilesystemAPI`` class (fixture trees).
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.contracts.declared import API_CLASS_NAME, derives_from_api
from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.rules.shadow_reach import graph_for


def _is_abstract(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for deco in node.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else getattr(deco, "id", "")
        if name in {"abstractmethod", "abstractproperty"}:
            return True
    return False


def _signature(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple:
    """The comparable shape of one signature: names, order, defaults.

    Defaults compare by ``ast.dump`` so ``0o755`` and ``493`` are equal
    (same constant) while ``0o755`` and ``0o644`` are not.
    """
    args = node.args
    return (
        tuple(a.arg for a in args.posonlyargs),
        tuple(a.arg for a in args.args),
        args.vararg.arg if args.vararg else None,
        tuple(a.arg for a in args.kwonlyargs),
        args.kwarg.arg if args.kwarg else None,
        tuple(ast.dump(d) for d in args.defaults),
        tuple(ast.dump(d) if d is not None else None for d in args.kw_defaults),
    )


def _render(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    """``(self, path, perms=0o755, opseq=0)`` — names and defaults only."""
    args = node.args
    parts: list[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    defaults: list[ast.expr | None] = [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        parts.append(arg.arg if default is None else f"{arg.arg}={ast.unparse(default)}")
    if args.vararg:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        parts.append(arg.arg if default is None else f"{arg.arg}={ast.unparse(default)}")
    if args.kwarg:
        parts.append(f"**{args.kwarg.arg}")
    return "(" + ", ".join(parts) + ")"


class ApiParityRule(ProjectRule):
    rule_id = "API-PARITY"
    family = "contracts"
    description = "overrides of FilesystemAPI abstract methods must keep its exact parameter names, order, and defaults"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        graph = graph_for(modules, self.context)
        by_path = {module.path: module for module in modules}

        api_info = None
        for key in sorted(graph.classes):
            if graph.classes[key].qualname.split(".")[-1] == API_CLASS_NAME:
                api_info = graph.classes[key]
                break
        if api_info is None:
            return

        abstract: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for stmt in api_info.node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_abstract(stmt):
                abstract[stmt.name] = stmt

        for key in sorted(graph.classes):
            info = graph.classes[key]
            if info is api_info or not derives_from_api(graph, info):
                continue
            module = by_path.get(info.path)
            if module is None:
                continue
            for name in sorted(abstract):
                method_key = info.methods.get(name)
                if method_key is None:
                    continue  # not overridden here (inherited is fine)
                override = graph.defs[method_key].node
                spec = abstract[name]
                if _signature(override) != _signature(spec):
                    yield self.finding(
                        module,
                        override,
                        f"{info.qualname}.{name}{_render(override)} drifts from "
                        f"{API_CLASS_NAME}.{name}{_render(spec)}: replayed oplog calls "
                        f"bind differently across implementations",
                    )
