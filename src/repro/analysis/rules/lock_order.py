"""LOCK-ORDER: nested inode-lock acquisition must be deadlock-free.

``LockManager.acquire`` (basefs/locks.py) enforces a global order at
runtime: a thread holding inode lock *j* may only take *i < j* when it
declares the hierarchy sanction (``acquire(child, parent=held)``), and
``acquire_pair`` sorts its two inodes internally.  The runtime check only
fires on the interleavings a test happens to execute; this rule makes the
discipline static.

Using the forward may-held lockset analysis
(:class:`~repro.analysis.flow.dataflow.LocksetAnalysis`) over each
function's CFG, the rule flags any acquire site in ``basefs/`` that can
execute while another lock is already held, unless the site is
sanctioned:

* ``acquire(..., parent=...)`` — the declared hierarchy edge, PR 1's
  sanction: parent directories outrank children regardless of inode
  numbers, so the declared pair is exempt from the numeric order;
* a first acquire (statically empty lockset) is always clean.

``acquire_pair`` orders its own two inodes but makes no promise relative
to locks *already* held, so a pair acquire under a non-empty lockset is
flagged like a plain nested acquire.  Lock identity is the unparsed
acquire-argument expression: the analysis cannot compare runtime inode
numbers, so *any* unsanctioned nested acquire is reported as an ordering
hazard — the fix is to declare ``parent=`` or use ``acquire_pair``.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import build_cfg, function_defs
from repro.analysis.flow.dataflow import (
    ACQUIRE_METHODS,
    LocksetAnalysis,
    apply_lock_call,
    lock_call,
    ordered_calls,
    solve,
)


class LockOrderRule(FileRule):
    rule_id = "LOCK-ORDER"
    family = "core"
    description = "nested LockManager acquires in basefs/ must declare parent= or use acquire_pair"

    def applies_to(self, module: ParsedModule) -> bool:
        return "basefs" in PurePosixPath(module.path).parts

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        if not self.applies_to(module):
            return
        for func in function_defs(module.tree):
            cfg = self.context.cfg(func)
            values = None
            for node in cfg.nodes:
                calls = ordered_calls(node.payload)
                if not any(lock_call(call, ACQUIRE_METHODS) for call in calls):
                    continue
                if values is None:
                    values = solve(cfg, LocksetAnalysis())
                # Replay the node's calls in source order so a second
                # acquire in the same statement sees the first one held.
                held = values[node.index].before
                for call in calls:
                    if lock_call(call, ACQUIRE_METHODS) and held:
                        is_pair = call.func.attr == "acquire_pair"  # type: ignore[union-attr]
                        sanctioned = any(kw.arg == "parent" for kw in call.keywords)
                        if not sanctioned:
                            what = "acquire_pair" if is_pair else "acquire"
                            yield self.finding(
                                module,
                                call,
                                f"{what}({', '.join(ast.unparse(a) for a in call.args)}) while "
                                f"holding {{{', '.join(sorted(held))}}} has no parent= sanction "
                                "and may invert the inode-number lock order",
                            )
                    held = apply_lock_call(held, call)
