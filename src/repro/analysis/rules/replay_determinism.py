"""REPLAY-DETERMINISM: replay-reachable code must be reproducible.

Constrained-mode recovery (§3.2) re-executes the recorded operations and
cross-checks every outcome against what the base produced; the strict
policy aborts on the first mismatch.  That cross-check is only meaningful
if re-execution is a pure function of the records and the disk image —
a replay that consults the clock, draws randomness, or iterates a hash
set in memory-address order can disagree with the base (or with its own
previous run) without any filesystem being wrong.

The rule computes the call-graph closure of the replay entry points —
``Replayer``/``ReplayEngine.run`` in ``shadowfs/replay.py``, plus every
``ShadowFilesystem`` method (constrained replay dispatches operations
into the shadow through ``FsOp.apply``'s dynamic table, which no static
call graph resolves) — and flags, inside any reached definition:

* calls into nondeterministic stdlib modules: ``time``, ``random``,
  ``uuid``, ``secrets``, ``threading``/``_thread``, and ``os.urandom``,
  whether via module attribute or ``from``-import binding;
* iteration over an unordered ``set``: a ``set``/``frozenset`` literal or
  constructor, a local built as one, or an attribute annotated as one.
  Wrapping the set in ``sorted(...)`` is the sanctioned fix and is not
  flagged (the iterable is then the ``sorted`` call).

Each finding carries the witness chain from the replay entry point so
the reviewer can see *why* the definition is replay-relevant.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable, Iterator, Sequence

from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph, render_chain
from repro.analysis.rules.shadow_reach import graph_for

NONDET_MODULES = frozenset({"time", "random", "uuid", "secrets", "threading", "_thread"})
_REPLAY_CLASSES = frozenset({"Replayer", "ReplayEngine"})
_SET_TYPE_NAMES = frozenset({"set", "frozenset", "Set", "MutableSet", "AbstractSet"})


def _own_nodes(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """The def's own AST, without nested function/class bodies (those are
    their own call-graph nodes and are scanned when reached)."""
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _nondet_bindings(module: ParsedModule) -> tuple[dict[str, str], set[str]]:
    """``(module_aliases, from_names)``: names bound in ``module`` that
    denote nondeterministic modules / their members (incl. os.urandom)."""
    aliases: dict[str, str] = {}
    from_names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in NONDET_MODULES or root == "os":
                    aliases[alias.asname or root] = root
        elif isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            for alias in node.names:
                if root in NONDET_MODULES or (root == "os" and alias.name == "urandom"):
                    from_names.add(alias.asname or alias.name)
    return aliases, from_names


def _set_typed_attrs(module: ParsedModule) -> set[str]:
    """Attribute names annotated as sets anywhere in the module
    (dataclass fields, class-body annotations, ``self.x: set[int]``)."""
    attrs: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.AnnAssign):
            continue
        ann = node.annotation
        if isinstance(ann, ast.Subscript):
            ann = ann.value
        name = ann.id if isinstance(ann, ast.Name) else getattr(ann, "attr", "")
        if name not in _SET_TYPE_NAMES:
            continue
        if isinstance(node.target, ast.Name):
            attrs.add(node.target.id)
        elif isinstance(node.target, ast.Attribute):
            attrs.add(node.target.attr)
    return attrs


def _is_set_expr(expr: ast.expr, set_locals: set[str], set_attrs: set[str]) -> bool:
    if isinstance(expr, ast.Set):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) and expr.func.id in {"set", "frozenset"}:
        return True
    if isinstance(expr, ast.Name):
        return expr.id in set_locals
    if isinstance(expr, ast.Attribute):
        return expr.attr in set_attrs
    return False


class ReplayDeterminismRule(ProjectRule):
    rule_id = "REPLAY-DETERMINISM"
    family = "core"
    description = "code reachable from shadow replay must not use time/random/uuid/threading or unordered-set iteration"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        graph = graph_for(modules, self.context)
        by_path = {module.path: module for module in modules}

        roots = []
        for key, info in graph.defs.items():
            if "shadowfs" not in PurePosixPath(info.path).parts:
                continue
            first = info.qualname.split(".")[0]
            if first in _REPLAY_CLASSES:
                if info.name == "run":
                    roots.append(key)
            elif first == "ShadowFilesystem":
                roots.append(key)
        parents = graph.reachable(sorted(roots))

        for key in sorted(parents):
            info = graph.defs[key]
            module = by_path.get(info.path)
            if module is None:
                continue
            chain = render_chain(graph, graph.chain(parents, key))
            yield from self._scan(module, info.node, chain)

    def _scan(
        self, module: ParsedModule, func: ast.FunctionDef | ast.AsyncFunctionDef, chain: str
    ) -> Iterator[Finding]:
        aliases, from_names = _nondet_bindings(module)
        set_attrs = _set_typed_attrs(module)
        set_locals = {
            node.targets[0].id
            for node in _own_nodes(func)
            if isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_set_expr(node.value, set(), set_attrs)
        }

        for node in _own_nodes(func):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases, from_names, chain)
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it, set_locals, set_attrs):
                    yield self.finding(
                        module,
                        it,
                        f"iteration over unordered set {ast.unparse(it)!r} in {func.name}() "
                        f"(replay-reachable via {chain}); iterate sorted(...) so re-execution "
                        "is bit-identical",
                    )

    def _check_call(
        self,
        module: ParsedModule,
        call: ast.Call,
        aliases: dict[str, str],
        from_names: set[str],
        chain: str,
    ) -> Iterator[Finding]:
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            target = aliases.get(func.value.id)
            if target in NONDET_MODULES or (target == "os" and func.attr == "urandom"):
                yield self.finding(
                    module,
                    call,
                    f"call to {ast.unparse(func)}() is nondeterministic "
                    f"(replay-reachable via {chain}); constrained-mode cross-checks "
                    "require bit-identical re-execution",
                )
        elif isinstance(func, ast.Name) and func.id in from_names:
            yield self.finding(
                module,
                call,
                f"call to {func.id}() (nondeterministic import) "
                f"(replay-reachable via {chain}); constrained-mode cross-checks "
                "require bit-identical re-execution",
            )
