"""SHADOW-REACH: shadow/spec purity is transitive over the call graph.

SHADOW-PURITY (PR 1) polices what ``shadowfs/`` modules import and call
*directly*; nothing stopped shadow or spec code from calling an innocent
helper that, two hops later, mutates a cache or writes the device.  §3.2
is transitive by nature — the shadow "keeps no caches and never writes"
through *any* chain — so this rule checks reachability on the project
call graph (:mod:`repro.analysis.flow.callgraph`).

Protected code: every definition in a module under ``shadowfs/`` or
``spec/`` (the spec model and verifier are the trusted oracle; if they
reach base machinery, cross-checking stops being independent).  Sinks:

* device write paths — ``write_block``/``submit_write``/``flush``
  definitions in ``blockdev/`` or ``basefs/``;
* the basefs hook layer (``basefs/hooks.py``) — nothing to inject into;
* writeback machinery (``basefs/writeback.py``, ``writeback*`` methods);
* cache mutation — mutating methods of the page/dentry/inode/buffer
  caches.

A finding is reported at the **escape call site**: the call edge whose
caller is protected and whose callee (outside ``shadowfs``/``spec``) can
reach a sink, with the witness chain in the message.  Anchoring at the
escape edge keeps the finding — and any sanctioned suppression, such as
the shadow's read-only ``replay_journal(..., apply=False)`` scan — in
the protected file where a reviewer will look for it.
"""

from __future__ import annotations

from pathlib import PurePosixPath
from typing import Iterable, Sequence

from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph, DefInfo, render_chain

PROTECTED_PARTS = frozenset({"shadowfs", "spec"})

_DEVICE_WRITE_NAMES = frozenset({"write_block", "submit_write", "flush"})
_CACHE_MODULES = frozenset({"page_cache.py", "dentry_cache.py", "inode_cache.py", "cache.py"})
_CACHE_MUTATORS = frozenset({
    "insert", "insert_negative", "install", "write", "attach", "detach",
    "invalidate", "invalidate_dir", "invalidate_ino", "mark_dirty",
    "mark_clean", "clean", "drop_ino", "drop_all", "evict", "_evict_excess",
})

# One CallGraph per module set, shared across the flow rules in a run.
# Rules running under the engine pass their RuleContext and share its
# per-run memo; the module-level cache remains for direct invocation
# (unit tests, library callers), keyed by identity of the module
# sequence — holding a strong reference keeps the id stable for the
# cache lifetime.
_GRAPH_CACHE: list[tuple[Sequence[ParsedModule], CallGraph]] = []


def graph_for(modules: Sequence[ParsedModule], context=None) -> CallGraph:
    if context is not None:
        return context.graph(modules)
    for cached_modules, graph in _GRAPH_CACHE:
        if cached_modules is modules:
            return graph
    graph = CallGraph(modules)
    _GRAPH_CACHE.append((modules, graph))
    del _GRAPH_CACHE[:-2]
    return graph


def is_protected(path: str) -> bool:
    return bool(PROTECTED_PARTS & set(PurePosixPath(path).parts))


def sink_reason(info: DefInfo) -> str | None:
    """Why ``info`` is forbidden territory for shadow/spec code."""
    parts = set(PurePosixPath(info.path).parts)
    if not parts & {"blockdev", "basefs"}:
        return None
    basename = PurePosixPath(info.path).name
    if info.name in _DEVICE_WRITE_NAMES:
        return "a device write path (§3.2: the shadow never writes to disk)"
    if basename == "hooks.py":
        return "the basefs hook layer (§2.3: the shadow has no injection hooks)"
    if basename == "writeback.py" or info.name.startswith("writeback"):
        return "writeback machinery (§3.2: the shadow has no deferred state)"
    if basename in _CACHE_MODULES and info.name in _CACHE_MUTATORS:
        return "cache mutation (§3.2: the shadow is cache-free)"
    return None


class ShadowReachRule(ProjectRule):
    rule_id = "SHADOW-REACH"
    family = "core"
    description = "shadowfs/spec code must not reach caches, device writes, hooks, or writeback through any call chain"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        graph = graph_for(modules, self.context)
        by_path = {module.path: module for module in modules}

        sinks = {key: reason for key, info in graph.defs.items() if (reason := sink_reason(info))}
        if not sinks:
            return

        # Which defs can reach a sink: BFS over reversed edges from sinks.
        reverse: dict[str, set[str]] = {}
        for caller, callees in graph.edges.items():
            for callee in callees:
                reverse.setdefault(callee, set()).add(caller)
        tainted: set[str] = set(sinks)
        queue = sorted(sinks)
        while queue:
            current = queue.pop(0)
            for caller in sorted(reverse.get(current, ())):
                if caller not in tainted:
                    tainted.add(caller)
                    queue.append(caller)

        for caller in sorted(graph.edges):
            info = graph.defs[caller]
            if not is_protected(info.path):
                continue
            module = by_path.get(info.path)
            if module is None:
                continue
            for callee in sorted(graph.edges[caller]):
                target = graph.defs[callee]
                if is_protected(target.path) or callee not in tainted:
                    continue
                site = graph.call_sites[(caller, callee)]
                chain, reason = self._witness(graph, callee, sinks)
                yield self.finding(
                    module,
                    site,
                    f"{info.qualname}() escapes the shadow/spec boundary: "
                    f"{render_chain(graph, [caller, *chain])} reaches {reason}",
                )

    @staticmethod
    def _witness(graph: CallGraph, start: str, sinks: dict[str, str]) -> tuple[list[str], str]:
        """Deterministic shortest witness chain from ``start`` to a sink."""
        parents = graph.reachable([start])
        target = min(key for key in parents if key in sinks)
        return graph.chain(parents, target), sinks[target]
