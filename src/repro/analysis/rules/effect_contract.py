"""EFFECT-CONTRACT: implementations stay inside their declared footprint.

The contract table in ``spec/contracts.py`` bounds what each operation
may *do* — device writes and flushes, journal transitions, cache
dirtying, lock traffic, fd-table mutation — separately for the base and
the shadow.  This rule compares those bounds against the transitive
effect summaries from :mod:`repro.analysis.contracts.summaries`.

Three checks, in decreasing order of severity:

* **Shadow device purity** (unconditional): no shadow operation may
  reach ``device-write`` or ``device-flush`` through any chain,
  regardless of what the table says (§3.2 — the shadow never writes).
  SHADOW-REACH polices named sink *definitions*; this check closes the
  gap for effects inferred from receiver conventions the sink list does
  not know about.  The finding carries the witness call chain.
* **Footprint containment**: every inferred effect of an op must be
  declared (``effects`` for base, ``shadow_effects`` for shadow).  A new
  journal transition or lock acquisition inside ``readdir`` is either a
  bug or a contract amendment — both belong in review.
* **Read-only discipline**: ops declared ``read_only`` must not dirty
  caches or acquire locks in the base.  (They may still carry
  ``device-write``: buffer-cache eviction writes back dirty buffers even
  on read paths — the table documents that explicitly.)

Silent when the analyzed tree declares no contract table.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.contracts import (
    EFFECT_CACHE_DIRTY,
    EFFECT_DEVICE_FLUSH,
    EFFECT_DEVICE_WRITE,
    EFFECT_LOCK_ACQUIRE,
    declared_contracts,
    implementation_classes,
    summaries_for,
)
from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph, render_chain
from repro.analysis.rules.shadow_reach import graph_for

_DEVICE_EFFECTS = frozenset({EFFECT_DEVICE_WRITE, EFFECT_DEVICE_FLUSH})
_READ_ONLY_FORBIDDEN = frozenset({EFFECT_CACHE_DIRTY, EFFECT_LOCK_ACQUIRE})


class EffectContractRule(ProjectRule):
    rule_id = "EFFECT-CONTRACT"
    family = "contracts"
    description = "base/shadow operations must stay inside the effect footprint declared in spec/contracts.py"

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        declared = declared_contracts(modules)
        if declared is None:
            return
        _, contracts = declared
        graph = graph_for(modules, self.context)
        engine = summaries_for(modules, self.context)
        by_path = {module.path: module for module in modules}

        for role, info in implementation_classes(graph):
            module = by_path.get(info.path)
            if module is None:
                continue
            for op_name in sorted(contracts):
                contract = contracts[op_name]
                key = info.methods.get(op_name)
                if key is None:
                    continue
                inferred = engine.summaries[key].effects
                node = graph.defs[key].node

                if role == "shadow":
                    for effect in sorted(inferred & _DEVICE_EFFECTS):
                        yield self.finding(
                            module,
                            node,
                            f"{info.qualname}.{op_name}() reaches {effect} "
                            f"(§3.2: the shadow never touches the device): "
                            f"{self._witness(graph, engine, key, effect)}",
                        )

                allowed = contract.shadow_effects if role == "shadow" else contract.effects
                # Device effects on the shadow were already reported with
                # a witness; don't restate them as mere containment.
                skip = _DEVICE_EFFECTS if role == "shadow" else frozenset()
                undeclared = sorted(inferred - allowed - skip)
                if undeclared:
                    yield self.finding(
                        module,
                        node,
                        f"{info.qualname}.{op_name}() has effects not declared for "
                        f"op '{op_name}': {', '.join(undeclared)} "
                        f"({role} allows: {', '.join(sorted(allowed)) or 'none'})",
                    )

                if contract.read_only and role == "base":
                    for effect in sorted(inferred & _READ_ONLY_FORBIDDEN):
                        yield self.finding(
                            module,
                            node,
                            f"{info.qualname}.{op_name}() is declared read-only but "
                            f"reaches {effect}: "
                            f"{self._witness(graph, engine, key, effect)}",
                        )

    @staticmethod
    def _witness(graph: CallGraph, engine, start: str, effect: str) -> str:
        """Deterministic shortest chain from ``start`` to a def whose own
        body originates ``effect``."""
        parents = graph.reachable([start])
        origins = [key for key in parents if effect in engine.local(key).effects]
        if not origins:
            return "(origin inside the operation body itself)"
        target = min(origins)
        return render_chain(graph, graph.chain(parents, target))
