"""CRASH-HOOK-COVERAGE: the crash sweep must be able to reach every
persistence point.

ROADMAP item 3's fault-sweep engine injects crashes at fault-injection
hooks (``VALID_HOOK_NAMES``, fired through ``HookPoints.fire``).  A
persistence point — any classified ``write_block``/flush/writeback/
submit site in basefs/ondisk/blockdev — that is *not* reachable from a
hook-firing function is a blind spot: the sweep can never interrupt
execution there, so whatever crash-consistency bug hides at that point
is untestable by construction.

The rule walks the call graph from every hook-firing def (the
persistence model's coverage pass) and fires on each point in an
unreached function, unless the function carries a ``PERSIST_SANCTIONS``
entry with a written justification (offline tools like ``mkfs``, writes
that *are* the injected fault, ...).  Stale sanctions — the function
got hook coverage, or lost its points — exit 2 from the model, the same
ratchet direction as the baseline.  Silent when the tree declares no
``spec/persistence.py``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.engine import ParsedModule, ProjectRule
from repro.analysis.findings import Finding
from repro.analysis.persistence import model_for


class CrashHookCoverageRule(ProjectRule):
    rule_id = "CRASH-HOOK-COVERAGE"
    family = "persistence"
    description = (
        "every persistence point is reachable from a fault-injection hook "
        "or carries a PERSIST_SANCTIONS justification"
    )

    def check_project(self, modules: Sequence[ParsedModule]) -> Iterable[Finding]:
        model = model_for(modules, self.context)
        if model is None:
            return
        for point in model.uncovered_points():
            if model.sanction_for(point.func_key) is not None:
                continue
            yield Finding(
                path=point.path,
                line=point.line,
                rule_id=self.rule_id,
                severity=self.severity,
                message=(
                    f"persistence point ({point.kind}) in "
                    f"{model.qualname(point.func_key)} is not reachable from "
                    f"any fault-injection hook — the crash sweep cannot "
                    f"exercise it; fire a hook on its call path or add a "
                    f"PERSIST_SANCTIONS entry in spec/persistence.py"
                ),
            )
