"""LOCK-RELEASE: every lock acquisition has a release on every path.

The base's locking discipline (basefs/locks.py) feeds recovery: a crashed
operation's locks are part of the distrusted state, and the error path
relies on ``release``/``release_all`` running before the frame unwinds so
that an injected KernelBug mid-operation cannot leak inode locks into the
next operation.

PR 1 checked this syntactically (acquire lexically inside a ``try`` whose
``finally`` releases).  This version asks the real question on the CFG
from :mod:`repro.analysis.flow.cfg`: **from the acquire site, does every
path to function exit — including the exceptional edges every statement
carries — pass a release call on a lock manager?**  That is the backward
must-analysis :class:`ReleaseOnAllPathsAnalysis`.  Consequences of the
upgrade:

* a release only on the fall-through path (or only in an ``except``
  handler) no longer counts — the unwinding path misses it;
* ``with lock_mgr.acquire(...):`` is now recognized: the context-manager
  protocol guarantees ``__exit__`` runs on every path, so a ``with``-item
  acquire is guarded by construction (PR 1 flagged this form);
* placement stops mattering — any shape that releases on all paths
  passes, whether or not it spells ``try/finally``.

The matched receiver is anything whose final name contains ``lock``
(``self.locks``, ``fs.locks``, a local ``lock_mgr``), the codebase's
naming convention for :class:`LockManager` instances; the manager's own
methods (``self.acquire`` inside ``LockManager``) do not match and are
exempt by construction.  Acquires at module level (outside any function)
fall back to the PR 1 try/finally check, since they have no function CFG.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding
from repro.analysis.flow.cfg import build_cfg, function_defs
from repro.analysis.flow.dataflow import (
    ACQUIRE_METHODS,
    RELEASE_METHODS,
    ReleaseOnAllPathsAnalysis,
    lock_call,
    solve,
)


def _contains(nodes: list[ast.stmt], target: ast.AST) -> bool:
    return any(target is node or target in ast.walk(node) for node in nodes)


class LockReleaseRule(FileRule):
    rule_id = "LOCK-RELEASE"
    family = "core"
    description = "LockManager.acquire must be followed by a release on every path, exceptional edges included"

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        seen: set[int] = set()
        for func in function_defs(module.tree):
            cfg = self.context.cfg(func)
            values = None
            for node in cfg.nodes:
                acquires = [
                    call
                    for part in node.payload
                    for call in ast.walk(part)
                    if lock_call(call, ACQUIRE_METHODS)
                ]
                if not acquires:
                    continue
                for call in acquires:
                    seen.add(id(call))
                    if self._with_managed(module, call):
                        continue
                    if values is None:
                        values = solve(cfg, ReleaseOnAllPathsAnalysis())
                    # Backward "before" = joined over successors: does every
                    # path *leaving* this node pass a release?
                    if values[node.index].before:
                        continue
                    yield self.finding(
                        module,
                        call,
                        f"{ast.unparse(call.func)}() is not released on every path out of "
                        f"{func.name}() (an error unwinding here would leak held locks)",
                    )
        # Module-level acquires have no function CFG; keep the syntactic check.
        for call in ast.walk(module.tree):
            if id(call) in seen or not lock_call(call, ACQUIRE_METHODS):
                continue
            if self._with_managed(module, call) or self._try_finally_guarded(module, call):
                continue
            yield self.finding(
                module,
                call,
                f"{ast.unparse(call.func)}() at module level has no matching release in a "
                "finally block (an error unwinding here would leak held locks)",
            )

    @staticmethod
    def _with_managed(module: ParsedModule, call: ast.Call) -> bool:
        """``with lock_mgr.acquire(...):`` — __exit__ releases on every path."""
        parent = module.parent(call)
        return isinstance(parent, ast.withitem) and parent.context_expr is call

    @staticmethod
    def _try_finally_guarded(module: ParsedModule, call: ast.Call) -> bool:
        for ancestor in module.ancestors(call):
            if not isinstance(ancestor, ast.Try):
                continue
            if not _contains(ancestor.body, call) and not _contains(ancestor.orelse, call):
                continue
            for stmt in ancestor.finalbody:
                if any(lock_call(inner, RELEASE_METHODS) for inner in ast.walk(stmt)):
                    return True
        return False
