"""LOCK-RELEASE: every lock acquisition has a guaranteed release.

The base's locking discipline (basefs/locks.py) feeds recovery: a crashed
operation's locks are part of the distrusted state, and the error path
relies on ``release``/``release_all`` running in a ``finally`` block so
that an injected KernelBug unwinding mid-operation cannot leave inode
locks held into the next operation.  This rule flags any
``*.locks.acquire(...)`` / ``*.locks.acquire_pair(...)`` call that is not
lexically inside a ``try`` whose ``finally`` releases on the same lock
manager.

The matched receiver is anything whose final name contains ``lock``
(``self.locks``, ``fs.locks``, a local ``locks``), which is the
codebase's naming convention for :class:`LockManager` instances; the
manager's own methods (``self.acquire`` inside ``LockManager``) do not
match and are exempt by construction.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileRule, ParsedModule
from repro.analysis.findings import Finding

_ACQUIRE_METHODS = {"acquire", "acquire_pair"}
_RELEASE_METHODS = {"release", "release_all"}


def _lock_receiver(node: ast.expr) -> bool:
    """True when ``node`` names a lock manager (``locks``, ``self.locks``...)."""
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    return False


def _is_lock_call(node: ast.AST, methods: set[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in methods
        and _lock_receiver(node.func.value)
    )


def _contains(nodes: list[ast.stmt], target: ast.AST) -> bool:
    return any(target is node or target in ast.walk(node) for node in nodes)


class LockReleaseRule(FileRule):
    rule_id = "LOCK-RELEASE"
    description = "LockManager.acquire must have a release reachable via try/finally on all paths"

    def check(self, module: ParsedModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not _is_lock_call(node, _ACQUIRE_METHODS):
                continue
            if self._guarded(module, node):
                continue
            yield self.finding(
                module,
                node,
                f"{ast.unparse(node.func)}() has no matching release in a finally block "
                "(an error unwinding here would leak held locks)",
            )

    def _guarded(self, module: ParsedModule, call: ast.Call) -> bool:
        for ancestor in module.ancestors(call):
            if not isinstance(ancestor, (ast.Try,)):
                continue
            # The acquire must be in the protected body — an acquire in a
            # handler or in the finally itself is not covered by it.
            if not _contains(ancestor.body, call) and not _contains(ancestor.orelse, call):
                continue
            for stmt in ancestor.finalbody:
                for inner in ast.walk(stmt):
                    if _is_lock_call(inner, _RELEASE_METHODS):
                        return True
        return False
