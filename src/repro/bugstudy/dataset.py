"""The curated 256-bug dataset.

We cannot mine the real ext4 git log offline, so this module *generates*
256 structured records — realistic titles, commit-message wording,
reproducer/tag metadata — built so that running the actual classifier
(:mod:`repro.bugstudy.records`) over them reproduces the paper's
published marginals exactly:

======================  =======  =====  ====  =======  =====
determinism             NoCrash  Crash  WARN  Unknown  Total
======================  =======  =====  ====  =======  =====
Deterministic                68     78    11        8    165
Non-Deterministic            31     26    19        7     83
Unknown                       5      2     1        0      8
======================  =======  =====  ====  =======  =====

and whose deterministic-bug fix years follow Figure 1's shape (rising
through the decade; the paper prints the bars but not the numbers, so
:data:`PAPER_YEARS` is read off the figure to the nearest bar —
documented as an approximation in EXPERIMENTS.md).  Generation is
seeded, so every build of the dataset is identical.
"""

from __future__ import annotations

from repro.bugstudy.records import BugRecord
from repro.util import make_rng

PAPER_TABLE1: dict[str, dict[str, int]] = {
    "deterministic": {"nocrash": 68, "crash": 78, "warn": 11, "unknown": 8},
    "nondeterministic": {"nocrash": 31, "crash": 26, "warn": 19, "unknown": 7},
    "unknown": {"nocrash": 5, "crash": 2, "warn": 1, "unknown": 0},
}

#: Deterministic bugs per fix year, read off Figure 1 (sums to 165).
PAPER_YEARS: dict[int, int] = {
    2013: 6,
    2014: 8,
    2015: 9,
    2016: 11,
    2017: 12,
    2018: 19,
    2019: 16,
    2020: 18,
    2021: 22,
    2022: 26,
    2023: 18,
}

_SUBSYSTEMS = (
    "ext4_fill_super",
    "ext4_ext_map_blocks",
    "ext4_rename",
    "ext4_symlink",
    "ext4_punch_hole",
    "ext4_writepages",
    "ext4_xattr_set",
    "jbd2_journal_commit",
    "ext4_mb_regular_allocator",
    "ext4_da_write_begin",
    "ext4_readdir",
    "ext4_evict_inode",
)

_CONSEQUENCE_TEXT = {
    "crash": (
        "Syzkaller reported a NULL pointer dereference in {fn} when mounting a crafted image. "
        "The missing sanity check lets a corrupted extent tree reach {fn}, and the kernel "
        "oops takes down the machine."
    ),
    "warn": (
        "Generic/475 hits a WARN_ON in {fn} because i_disksize can lag i_size across the "
        "transaction boundary. The warning at fs/ext4 is harmless but floods the log."
    ),
    "nocrash": (
        "Under the reported workload {fn} computes a bad mapping, leading to data corruption "
        "visible to userspace after remount. No backtrace is produced."
    ),
    "unknown": (
        "Clean up the error path of {fn} and return the correct status to the caller, as "
        "discussed in the report."
    ),
}

_NONDET_FLAVORS = ("no-repro", "io", "thread")


def _title(consequence: str, fn: str, index: int) -> str:
    base = {
        "crash": f"ext4: fix crash in {fn}",
        "warn": f"ext4: avoid spurious warning in {fn}",
        "nocrash": f"ext4: fix corruption in {fn}",
        "unknown": f"ext4: fix error handling in {fn}",
    }[consequence]
    return f"{base} ({index})"


def build_dataset(seed: int = 42) -> list[BugRecord]:
    """Generate the 256 records (deterministically)."""
    rng = make_rng(seed)
    records: list[BugRecord] = []
    index = 0

    # --- deterministic bugs: years follow Figure 1 ---------------------
    det_years: list[int] = []
    for year in sorted(PAPER_YEARS):
        det_years.extend([year] * PAPER_YEARS[year])
    det_consequences: list[str] = []
    for consequence, count in PAPER_TABLE1["deterministic"].items():
        det_consequences.extend([consequence] * count)
    rng.shuffle(det_consequences)
    assert len(det_years) == len(det_consequences) == 165

    for year, consequence in zip(det_years, det_consequences):
        index += 1
        fn = _SUBSYSTEMS[index % len(_SUBSYSTEMS)]
        message = _CONSEQUENCE_TEXT[consequence].format(fn=fn) + " A reliable reproducer is attached to the bugzilla entry."
        records.append(
            BugRecord(
                bug_id=f"ext4-{year}-{index:04d}",
                year=year,
                title=_title(consequence, fn, index),
                message=message,
                has_reproducer=True,
                tags=frozenset(),
                source="bugzilla" if index % 3 else "reported-by",
            )
        )

    # --- non-deterministic bugs ------------------------------------------
    years_cycle = sorted(PAPER_YEARS)
    for consequence, count in PAPER_TABLE1["nondeterministic"].items():
        for i in range(count):
            index += 1
            fn = _SUBSYSTEMS[index % len(_SUBSYSTEMS)]
            flavor = _NONDET_FLAVORS[i % len(_NONDET_FLAVORS)]
            message = _CONSEQUENCE_TEXT[consequence].format(fn=fn)
            if flavor == "no-repro":
                has_reproducer: bool | None = False
                tags: frozenset[str] = frozenset()
                message += " The issue occurs sporadically in production; no reproducer is available."
            elif flavor == "io":
                has_reproducer = True
                tags = frozenset({"io", "blk-mq"})
                message += " Requires multiple inflight requests racing through the block layer."
            else:
                has_reproducer = True
                tags = frozenset({"race", "lock"})
                message += " A race condition between the unlink path and writeback."
            records.append(
                BugRecord(
                    bug_id=f"ext4-nd-{index:04d}",
                    year=years_cycle[index % len(years_cycle)],
                    title=_title(consequence, fn, index),
                    message=message,
                    has_reproducer=has_reproducer,
                    tags=tags,
                    source="bugzilla" if index % 2 else "reported-by",
                )
            )

    # --- unknown determinism -----------------------------------------------
    for consequence, count in PAPER_TABLE1["unknown"].items():
        for _ in range(count):
            index += 1
            fn = _SUBSYSTEMS[index % len(_SUBSYSTEMS)]
            records.append(
                BugRecord(
                    bug_id=f"ext4-u-{index:04d}",
                    year=years_cycle[index % len(years_cycle)],
                    title=_title(consequence, fn, index),
                    message=_CONSEQUENCE_TEXT[consequence].format(fn=fn),
                    has_reproducer=None,
                    tags=frozenset(),
                    source="reported-by",
                )
            )

    assert len(records) == 256, len(records)
    return records
