"""Bug records and the study's classification rules.

A :class:`BugRecord` carries what the paper's methodology extracts from
a kernel commit: the fix year, whether a reproducer exists, subsystem
tags, and the commit message (whose wording carries the consequence
evidence).  The two classifiers implement Table 1's caption:

* **determinism** — non-deterministic iff no reproducer, or tagged/worded
  as IO-interaction (multiple inflight requests, interrupt timing) or
  threading (race, lock, concurrency); ``unknown`` when the record has
  too little signal either way (no reproducer info *and* no tags);
* **consequence** — ``crash`` on oops/BUG()/null-deref/use-after-free
  language, ``warn`` when a WARN_ON/WARN_ONCE path is hit, ``nocrash``
  on corruption/performance/permission/freeze/deadlock symptoms, and
  ``unknown`` "when the commit message does not contain clear clues of
  external symptoms".

Precedence notes (needed to make classification a function): an
explicit WARN path wins over crash words (the WARN prevented the oops);
crash wins over nocrash symptoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CRASH_MARKERS = (
    "null pointer dereference",
    "null-ptr-deref",
    "use-after-free",
    "use after free",
    "kernel bug at",
    "bug()",
    "oops",
    "panic",
    "general protection fault",
    "out-of-bounds",
    "array-index-out-of-bounds",
    "kernel crash",
)
WARN_MARKERS = ("warn_on", "warn_once", "warning at", "hits a warn")
NOCRASH_MARKERS = (
    "data corruption",
    "corrupted",
    "wrong data",
    "stale data",
    "performance regression",
    "slowdown",
    "permission",
    "deadlock",
    "hang",
    "freeze",
    "soft lockup",
    "leak",
    "wrong error code",
    "incorrect result",
)
IO_TAGS = ("io", "blk-mq", "io_uring", "writeback", "bio", "inflight", "interrupt")
THREAD_TAGS = ("race", "lock", "concurrency", "threading", "smp", "rcu")


@dataclass
class BugRecord:
    bug_id: str
    year: int
    title: str
    message: str
    has_reproducer: bool | None  # None = no information
    tags: frozenset[str] = field(default_factory=frozenset)
    source: str = "bugzilla"  # or "reported-by"


def classify_determinism(record: BugRecord) -> str:
    """'deterministic' | 'nondeterministic' | 'unknown' per the caption."""
    text = (record.title + " " + record.message).lower()
    tagged_io = any(tag in record.tags for tag in IO_TAGS) or any(f" {t} " in f" {text} " for t in ("inflight",))
    tagged_thread = any(tag in record.tags for tag in THREAD_TAGS) or "race condition" in text
    if tagged_io or tagged_thread:
        return "nondeterministic"
    if record.has_reproducer is None:
        return "unknown"
    if not record.has_reproducer:
        return "nondeterministic"
    return "deterministic"


def classify_consequence(record: BugRecord) -> str:
    """'crash' | 'warn' | 'nocrash' | 'unknown' per the caption."""
    text = (record.title + " " + record.message).lower()
    if any(marker in text for marker in WARN_MARKERS):
        return "warn"
    if any(marker in text for marker in CRASH_MARKERS):
        return "crash"
    if any(marker in text for marker in NOCRASH_MARKERS):
        return "nocrash"
    return "unknown"


def classify_record(record: BugRecord) -> tuple[str, str]:
    return classify_determinism(record), classify_consequence(record)
