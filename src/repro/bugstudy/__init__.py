"""The ext4 bug study (Table 1 and Figure 1).

The paper mines the ext4 subtree's git log for commits mentioning
"bugzilla" or "reported by" (256 bugs since 2013) and classifies them by
determinism and consequence.  Without network access to the kernel tree,
this package ships:

* :mod:`repro.bugstudy.records` — the record schema and the
  **classification pipeline**, implementing the paper's stated rules
  ("Bugs that do not have reproducers, or are related to the interaction
  with IO ..., or are related to threading, are classified as
  non-deterministic"; WARN = hits a WARN_ON path; Unknown consequence =
  no clear external-symptom clues in the commit message).  The
  classifier is real code that could be pointed at real commit logs.
* :mod:`repro.bugstudy.dataset` — a curated, deterministic 256-record
  dataset whose *classified* marginals reproduce Table 1 exactly and
  whose per-year distribution of deterministic bugs matches Figure 1's
  shape (rising into the 2020s).  This substitution is documented in
  DESIGN.md §2.
* :mod:`repro.bugstudy.tables` — regeneration of Table 1 (counts +
  rendering) and Figure 1 (per-year stacked series + ASCII bars).
"""

from repro.bugstudy.records import BugRecord, classify_consequence, classify_determinism, classify_record
from repro.bugstudy.dataset import PAPER_TABLE1, PAPER_YEARS, build_dataset
from repro.bugstudy.tables import Figure1, Table1, build_figure1, build_table1

__all__ = [
    "BugRecord",
    "classify_record",
    "classify_determinism",
    "classify_consequence",
    "build_dataset",
    "PAPER_TABLE1",
    "PAPER_YEARS",
    "Table1",
    "Figure1",
    "build_table1",
    "build_figure1",
]
