"""Regenerating Table 1 and Figure 1.

``build_table1`` runs the classifier over a record set and tabulates
determinism × consequence; ``build_figure1`` groups the deterministic
bugs by fix year and consequence.  Both objects know how to render
themselves in the paper's layout (a text table, and an ASCII stacked bar
chart), which is what the benchmark harness prints next to the paper's
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bugstudy.records import BugRecord, classify_record

_DETS = ("deterministic", "nondeterministic", "unknown")
_CONS = ("nocrash", "crash", "warn", "unknown")
_DET_LABEL = {"deterministic": "Deterministic", "nondeterministic": "Non-Deterministic", "unknown": "Unknown"}
_CON_LABEL = {"nocrash": "No Crash", "crash": "Crash", "warn": "WARN", "unknown": "Unknown"}


@dataclass
class Table1:
    counts: dict[str, dict[str, int]] = field(
        default_factory=lambda: {d: {c: 0 for c in _CONS} for d in _DETS}
    )

    def row_total(self, determinism: str) -> int:
        return sum(self.counts[determinism].values())

    @property
    def total(self) -> int:
        return sum(self.row_total(d) for d in _DETS)

    @property
    def detected_deterministic(self) -> int:
        """The paper's headline: deterministic bugs whose consequence is
        detectable as a runtime error (Crash or WARN) — 89/165."""
        return self.counts["deterministic"]["crash"] + self.counts["deterministic"]["warn"]

    def render(self) -> str:
        header = f"{'Determinism':<18}" + "".join(f"{_CON_LABEL[c]:>10}" for c in _CONS) + f"{'Total':>8}"
        lines = [header, "-" * len(header)]
        for d in _DETS:
            row = f"{_DET_LABEL[d]:<18}" + "".join(f"{self.counts[d][c]:>10}" for c in _CONS)
            lines.append(row + f"{self.row_total(d):>8}")
        lines.append("-" * len(header))
        lines.append(f"{'Total':<18}" + " " * 40 + f"{self.total:>8}")
        return "\n".join(lines)


def build_table1(records: list[BugRecord]) -> Table1:
    table = Table1()
    for record in records:
        determinism, consequence = classify_record(record)
        table.counts[determinism][consequence] += 1
    return table


@dataclass
class Figure1:
    """Deterministic bugs per year, stacked by consequence."""

    by_year: dict[int, dict[str, int]] = field(default_factory=dict)

    def year_total(self, year: int) -> int:
        return sum(self.by_year.get(year, {}).values())

    @property
    def total(self) -> int:
        return sum(self.year_total(y) for y in self.by_year)

    def series(self, consequence: str) -> list[tuple[int, int]]:
        return [(year, self.by_year[year].get(consequence, 0)) for year in sorted(self.by_year)]

    def render(self, width: int = 40) -> str:
        """ASCII stacked bars: C=crash, N=no-crash, W=warn, U=unknown."""
        lines = ["Deterministic ext4 bugs by fix year (C=crash N=nocrash W=warn U=unknown)"]
        peak = max((self.year_total(y) for y in self.by_year), default=1)
        scale = width / max(peak, 1)
        for year in sorted(self.by_year):
            counts = self.by_year[year]
            bar = (
                "C" * round(counts.get("crash", 0) * scale)
                + "N" * round(counts.get("nocrash", 0) * scale)
                + "W" * round(counts.get("warn", 0) * scale)
                + "U" * round(counts.get("unknown", 0) * scale)
            )
            lines.append(f"{year}  {self.year_total(year):>3}  {bar}")
        return "\n".join(lines)


def build_figure1(records: list[BugRecord]) -> Figure1:
    figure = Figure1()
    for record in records:
        determinism, consequence = classify_record(record)
        if determinism != "deterministic":
            continue
        figure.by_year.setdefault(record.year, {c: 0 for c in _CONS})
        figure.by_year[record.year][consequence] += 1
    return figure
