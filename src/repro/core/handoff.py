"""Metadata downloading: shadow output → rebooted base.

A thin orchestration over the base's absorb interfaces, in the order
that keeps every intermediate state safe:

1. stale preserved pages of inodes the shadow mutated are dropped;
2. metadata blocks land in the buffer cache (dirty, role-tagged);
3. allocator state reloads from those very bitmap blocks and is
   cross-checked against the shadow's reported free counts;
4. authoritative data pages land in the page cache (dirty);
5. the descriptor table is installed.

After hand-off, "the base resumes execution and admits new operations,
at which point all state within the base filesystem is correct and up to
date" — the supervisor then commits, making the recovered state durable
and truncating the op log.
"""

from __future__ import annotations

from repro.basefs.filesystem import BaseFilesystem
from repro.errors import RECOVERY_BOUNDARY_ERRORS, RecoveryFailure
from repro.shadowfs.output import MetadataUpdate


def download_metadata(
    fs: BaseFilesystem,
    update: MetadataUpdate,
    events=None,
    corr_id: int | None = None,
) -> None:
    """Absorb ``update`` into ``fs``.  Raises :class:`RecoveryFailure` on
    any inconsistency (the base must not resume on a bad hand-off).

    ``events``/``corr_id``: when the supervisor's event log is threaded
    through (duck-typed — this module never imports ``repro.obs``), the
    hand-off emits one ``handoff.download`` event carrying the
    triggering op's correlation id and the absorbed-state sizes, so the
    forensic timeline shows *what* was handed off, not just how long it
    took."""
    try:
        for ino in sorted(update.touched_inos):
            fs.page_cache.drop_ino(ino)
        fs.absorb_metadata(update.metadata_blocks, update.roles)
        # Only bitmap groups the shadow actually rewrote need re-journaling.
        dirty_block_groups = set()
        dirty_inode_groups = set()
        for block, role in update.roles.items():
            if role != "bitmap":
                continue
            group = fs.layout.group_of_block(block)
            if block == fs.layout.block_bitmap_block(group):
                dirty_block_groups.add(group)
            elif block == fs.layout.inode_bitmap_block(group):
                dirty_inode_groups.add(group)
        fs.absorb_accounting(
            update.free_blocks,
            update.free_inodes,
            dirty_block_groups=dirty_block_groups,
            dirty_inode_groups=dirty_inode_groups,
        )
        fs.absorb_data_pages(update.data_pages)
        fs.absorb_fd_table(update.fd_table)
    except RECOVERY_BOUNDARY_ERRORS as exc:
        raise RecoveryFailure(f"metadata download failed: {exc}", phase="handoff") from exc
    if events is not None:
        events.emit(
            "handoff.download",
            corr_id=corr_id,
            metadata_blocks=len(update.metadata_blocks),
            data_pages=len(update.data_pages),
            fds=len(update.fd_table),
            touched_inos=len(update.touched_inos),
        )
