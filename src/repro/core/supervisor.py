"""The RAE supervisor: what applications actually mount.

:class:`RAEFilesystem` implements :class:`repro.api.FilesystemAPI` by
delegating to a :class:`BaseFilesystem` in the common case — adding only
operation recording and a write-back tick — and running the full
recovery procedure when the detector classifies an escaped exception as
a runtime error.  From the application's perspective, a deterministic
kernel bug looks like a slightly slow operation that nonetheless returns
the correct result: "high performance in the common case; correctness
and high-availability despite bugs and errors in rare cases" (§5).

New operations are not admitted during recovery (§3.2); since the
supervisor is the single entry point and recovery runs synchronously
inside the failed call, this holds by construction.

If recovery itself fails (:class:`RecoveryFailure`), the exception
propagates: the paper's design has no further fallback, and the caller
decides between remounting from the last durable state or giving up.
The availability benchmark compares exactly these two worlds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict, dataclass, field

from repro.api import FilesystemAPI, FsOp, OpenFlags, OpResult, StatResult
from repro.basefs.filesystem import BaseFilesystem
from repro.basefs.hooks import HookPoints
from repro.basefs.writeback import WritebackPolicy
from repro.blockdev.device import BlockDevice
from repro.core.detector import DetectedError, Detector, WarnPolicy
from repro.core.oplog import OpLog
from repro.core.recovery import RecoveryStats, run_recovery
from repro.errors import Errno, FsError, RecoveryFailure
from repro.obs import BundleStore, CrossCheckCapture, FlightRecorder, Registry, build_bundle
from repro.obs.prof import LayerProfiler
from repro.shadowfs.checks import CheckLevel


@dataclass
class RAEConfig:
    """Supervisor policy knobs, mirroring the paper's configurables."""

    check_level: CheckLevel = CheckLevel.FULL
    strict_crosscheck: bool = True
    warn_policy: WarnPolicy = WarnPolicy.RECOVER
    shadow_in_process: bool = True
    commit_after_recovery: bool = True
    auto_writeback: bool = True
    # Observability: per-op latency/errno instruments plus the recovery
    # span timeline.  Disabled costs one boolean test per operation.
    metrics: bool = True
    # Layer-attribution profiling (repro.obs.prof): wraps the live
    # supervisor/base/device methods to split each op's wall time into
    # per-layer self-time.  On by default — the tier-2 ablation keeps it
    # within the observability noise band — and implied off when
    # ``metrics`` is off (the breakdown lands in registry histograms).
    profile: bool = True
    # Ring-buffer caps for supervisor-lifetime histories (cumulative
    # counts are kept separately and never dropped).
    event_history_limit: int = 256
    detector_history_limit: int = 256
    # Flight recorder: an always-on, fixed-cost ring of recent ops that
    # is frozen at detection time, before the contained reboot discards
    # the failed base's state.  Independent of `metrics` — forensic
    # bundles are produced even when push instruments are off.
    flight: bool = True
    flight_ring_size: int = 64
    # How many forensic bundles to keep in memory (one per recovery;
    # the count of bundles ever built is never lost).
    bundle_history_limit: int = 16


@dataclass
class RAEEvent:
    """One recovery episode, for reporting and examples."""

    seq: int | None
    detected: str
    replayed_ops: int
    total_seconds: float
    discrepancies: int


@dataclass
class RAEStats:
    ops: int = 0
    recoveries: int = 0
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    # Bounded ring (deque with maxlen); recoveries above keeps the
    # lifetime total when old events have been evicted.
    events: deque[RAEEvent] = field(default_factory=deque)


def _stats_dict(stats, **extra) -> dict:
    """A stats dataclass as a flat snapshot dict, plus any derived
    values (``hit_rate`` properties, caller-supplied extras)."""
    data = asdict(stats)
    rate = getattr(stats, "hit_rate", None)
    if rate is not None:
        data["hit_rate"] = rate
    data.update(extra)
    return data


class RAEFilesystem(FilesystemAPI):
    def __init__(
        self,
        device: BlockDevice,
        config: RAEConfig | None = None,
        hooks: HookPoints | None = None,
        writeback_policy: WritebackPolicy | None = None,
        obs: Registry | None = None,
        **base_kwargs,
    ):
        self.device = device
        self.config = config or RAEConfig()
        self.base = BaseFilesystem(
            device, hooks=hooks, writeback_policy=writeback_policy, **base_kwargs
        )
        self.oplog = OpLog()
        self.detector = Detector(
            warn_policy=self.config.warn_policy,
            history_limit=self.config.detector_history_limit,
        )
        self.stats = RAEStats(events=deque(maxlen=self.config.event_history_limit))
        self.seq = 0
        self._in_recovery = False
        self.obs = obs if obs is not None else Registry(enabled=self.config.metrics)
        # Hot-path guard: a single attribute test keeps the disabled
        # configuration within the <5% overhead budget.
        self._obs_on = self.obs.enabled
        # Flight recorder + forensic bundle store: the recorder's ring
        # append is the only always-on per-op cost; stat deltas are
        # sampled at baseline/freeze time, never per op.
        self.flight = FlightRecorder(
            clock=self.obs.clock,
            size=self.config.flight_ring_size,
            enabled=self.config.flight,
            stats_source=self._flight_stat_sample,
        )
        self._flight_on = self.flight.enabled
        self.forensics = BundleStore(limit=self.config.bundle_history_limit)
        # Called with the new base after every contained reboot; the fault
        # injector registers its retarget() here so payload bugs keep
        # pointing at live state.
        self.on_reboot: list = []
        # The superblock write generation as of the current window's
        # durability point.  Updated at every commit callback and at a
        # durable-window truncation; run_recovery compares it against
        # the remounted disk to detect windows the crashing commit
        # sealed before the truncation callback could run.
        self._window_generation = self.base.sb.write_generation
        self._wire_base()
        # Layer-attribution profiler: wraps this supervisor's hot path
        # (and re-wraps after every contained reboot via on_reboot).
        self.profiler = None
        if self.config.profile and self.obs.enabled:
            self.profiler = LayerProfiler(self.obs)
            self.profiler.attach(self)
        self._register_collectors()
        self.flight.rebaseline()

    def _wire_base(self) -> None:
        self.base.on_commit.append(self._on_commit)

    def _on_commit(self, _epoch: int) -> None:
        """Durability point: discard the replayable window (§3.2)."""
        self.oplog.truncate(self.base.fd_table.snapshot())
        self._window_generation = self.base.sb.write_generation

    def _flight_stat_sample(self) -> dict:
        """Cheap subsystem tallies for the flight ring's stat deltas.

        Sampled only at baseline and freeze time (the closure reads
        ``self.base``, so a contained reboot's base swap is picked up);
        the frozen deltas show what the failed base did in its final
        window — journal/writeback/cache/device activity the reboot is
        about to discard."""
        base = self.base
        return {
            "journal.commits": base.journal.stats.commits,
            "journal.blocks_journaled": base.journal.stats.blocks_journaled,
            "writeback.ticks": base.writeback.stats.ticks,
            "writeback.commits": base.writeback.stats.commits,
            "cache.page.hits": base.page_cache.stats.hits,
            "cache.page.misses": base.page_cache.stats.misses,
            "cache.page.evictions": base.page_cache.stats.evictions,
            "oplog.recorded": self.oplog.stats.recorded,
            "device.reads": self.device.io_stats.reads,
            "device.writes": self.device.io_stats.writes,
            "device.flushes": self.device.io_stats.flushes,
        }

    def _register_collectors(self) -> None:
        """Pull-based observability: every subsystem keeps its existing
        stats dataclass and stays free of ``repro.obs`` imports; the
        registry reads them on demand at snapshot time.  The lambdas
        close over ``self`` (not ``self.base``) so a contained reboot's
        base swap is picked up automatically."""
        reg = self.obs.register_collector
        reg("op", lambda: {
            "total": self.stats.ops,
            "recoveries": self.stats.recoveries,
            "window_entries": len(self.oplog),
            "window_bytes": self.oplog.approximate_bytes(),
            "since_reboot": sum(self.base.stats.ops.values()),
        })
        reg("oplog", lambda: _stats_dict(self.oplog.stats))
        reg("cache.page", lambda: _stats_dict(self.base.page_cache.stats))
        reg("cache.inode", lambda: _stats_dict(self.base.inode_cache.stats))
        reg("cache.dentry", lambda: _stats_dict(self.base.dentry_cache.stats))
        reg("cache.buffer", lambda: _stats_dict(self.base.cache.stats))
        reg("journal", lambda: _stats_dict(self.base.journal.stats))
        reg("writeback", lambda: _stats_dict(
            self.base.writeback.stats,
            dirty_pages=self.base.dirty_page_count(),
            dirty_metadata=self.base.dirty_metadata_count(),
            commits_total=self.base.stats.commits,
        ))
        reg("device", lambda: _stats_dict(self.device.io_stats))
        reg("blkmq", lambda: _stats_dict(self.base.blkmq.stats, depth=self.base.blkmq.depth))
        reg("detector", lambda: {
            "total": self.detector.stats.total,
            "history_kept": len(self.detector.history),
            "history_limit": self.detector.history_limit,
            **{f"kind.{kind}": count
               for kind, count in sorted(self.detector.stats.detections.items())},
        })
        reg("forensics", lambda: {
            "bundles_built": self.forensics.built,
            "bundles_kept": len(self.forensics.bundles),
            "bundles_dropped": self.forensics.dropped,
            "flight.enabled": self.flight.enabled,
            "flight.entries": len(self.flight),
            "flight.ops_seen": self.flight.ops_seen,
            "flight.freezes": self.flight.freezes,
        })
        if self.profiler is not None:
            reg("prof", self.profiler.collector_snapshot)
        reg("recovery", lambda: {
            "attempts": self.stats.recovery.attempts,
            "successes": self.stats.recovery.successes,
            "failures": self.stats.recovery.failures,
            "ops_replayed": self.stats.recovery.ops_replayed,
            "failure_phases": list(self.stats.recovery.failure_phases),
            **{f"phase.{phase}.mean_seconds": seconds
               for phase, seconds in self.stats.recovery.mean_seconds().items()},
        })

    # ------------------------------------------------------------------

    def unmount(self) -> None:
        """Unmount with the same protection as any operation: a runtime
        error in the final commit triggers recovery, then one retry."""
        try:
            self.base.unmount()
        except Exception as exc:  # raelint: disable=ERRNO-DISCIPLINE — detector boundary: must see UNEXPECTED faults (§2.1)
            detected = self.detector.classify(exc, op_name="unmount")
            if not self.detector.should_recover(detected):
                raise
            self._recover(detected, inflight=None)
            self.base.unmount()

    @property
    def recovery_count(self) -> int:
        return self.stats.recoveries

    @property
    def last_bundle(self) -> dict | None:
        """The most recent recovery's forensic bundle (JSON-able dict)."""
        return self.forensics.last

    def _call(self, name: str, **args):
        """Execute one operation with recording, detection, recovery."""
        if self._in_recovery:
            raise RecoveryFailure("operation submitted during recovery", phase="admission")
        op = FsOp(name=name, args=args)
        self.seq += 1
        seq = self.seq
        self.stats.ops += 1
        obs_on = self._obs_on
        start = self.obs.clock() if obs_on else 0.0
        try:
            outcome = op.apply(self.base, opseq=seq)
        except Exception as exc:  # raelint: disable=ERRNO-DISCIPLINE — detector boundary: must see UNEXPECTED faults (§2.1)
            detected = self.detector.classify(exc, seq=seq, op_name=name)
            if not self.detector.should_recover(detected):
                # Ignored WARN: the operation aborted midway; its partial
                # effects stay in base state (as after a real WARN_ON that
                # taints state) and EIO — the kernel's catch-all for "it
                # broke" — is surfaced.  The tainted state must not leak
                # into a later replay window: record the op with its EIO
                # outcome (replay skips errno records, so the shadow never
                # re-executes it) and immediately commit, anchoring the
                # next window *after* the partial effects.  Without this,
                # a later recovery would replay a window whose recorded
                # reads saw the partial effects against a disk state that
                # never had them — a cross-check divergence.
                outcome = OpResult(errno=Errno.EIO)
                self.obs.events.emit("warn.ignored", corr_id=seq, op=name)
                if op.is_mutation:
                    self.oplog.record(seq, op, outcome)
                    self._scrub_commit(seq)
            else:
                outcome = self._recover(detected, inflight=(seq, op))
        else:
            if op.is_mutation:
                self.oplog.record(seq, op, outcome)

        if obs_on:
            self.obs.histogram(f"op.latency.{name}").observe(self.obs.clock() - start)
            self.obs.counter(f"op.count.{name}").inc()
            if outcome.errno is not None:
                self.obs.counter(f"op.errno.{outcome.errno.name}").inc()
        # After the latency observation: the recorder shares the obs
        # clock, and its read must not land inside the measured window.
        if self._flight_on:
            self.flight.note_op(
                seq, name, op.describe(),
                outcome.errno.name if outcome.errno else None,
            )

        if self.config.auto_writeback and not self._in_recovery:
            try:
                self.base.writeback.tick()
            except Exception as exc:  # raelint: disable=ERRNO-DISCIPLINE — detector boundary: must see UNEXPECTED faults (§2.1)
                detected = self.detector.classify(exc, seq=seq, op_name="writeback")
                if self.detector.should_recover(detected):
                    self._recover(detected, inflight=None)

        if outcome.errno is not None:
            raise FsError(outcome.errno, f"{name} failed")
        return outcome.value

    def _scrub_commit(self, seq: int) -> None:
        """Persist base state right after an ignored WARN.

        The commit truncates the op log and re-snapshots the fd table,
        so the partial effects become part of the durable baseline that
        future replays start from instead of un-replayable window
        history.  If the tainted state makes the commit itself blow up,
        that error goes through the normal detect-and-recover path — and
        because the aborted op was recorded first (with its EIO
        outcome), the replay window is complete."""
        try:
            self.base.commit()
        except Exception as exc:  # raelint: disable=ERRNO-DISCIPLINE — detector boundary: must see UNEXPECTED faults (§2.1)
            detected = self.detector.classify(exc, seq=seq, op_name="warn-scrub-commit")
            if self.detector.should_recover(detected):
                self._recover(detected, inflight=None)

    def _recover(self, detected: DetectedError, inflight: tuple[int, FsOp] | None, depth: int = 0) -> OpResult:
        """Run the full recovery procedure; returns the in-flight op's
        outcome (empty success result when there was none).

        ``depth`` guards the nested case: a bug firing during the
        post-recovery commit triggers another recovery (the hand-off
        state is safely replayable because the in-flight op is recorded
        before the commit is attempted); three consecutive failures give
        up, surfacing RecoveryFailure."""
        tracer = self.obs.tracer
        events = self.obs.events
        # Everything emitted from here on belongs to this episode's
        # bundle; the mark makes the slice exact even for nested
        # recoveries (the inner episode's events land in both bundles,
        # which is the correct causal picture).
        event_mark = events.emitted
        events.emit(
            "detect",
            corr_id=detected.seq,
            error_kind=detected.kind.value,
            op=detected.op_name,
            nesting=depth,
        )
        # Freeze BEFORE the contained reboot: the ring and the stat
        # deltas describe the failed base's final window, state the
        # reboot is about to discard.
        frozen = self.flight.freeze(detected.describe(), trigger_seq=detected.seq)
        bounds = self.oplog.window_bounds()
        window = {
            "entries": len(self.oplog),
            "bytes": self.oplog.approximate_bytes(),
            "first_seq": bounds[0] if bounds else None,
            "last_seq": bounds[1] if bounds else None,
            "inflight": inflight[1].describe() if inflight is not None else None,
        }
        capture = CrossCheckCapture()
        with tracer.span(
            "recovery", kind=detected.kind.value, seq=detected.seq, nesting=depth
        ):
            self._in_recovery = True
            self.stats.recovery.attempts += 1
            try:
                outcome = run_recovery(
                    self.base,
                    self.device,
                    self.oplog,
                    inflight,
                    check_level=self.config.check_level,
                    strict_crosscheck=self.config.strict_crosscheck,
                    in_process=self.config.shadow_in_process,
                    tracer=tracer,
                    corr_id=detected.seq,
                    events=events,
                    crosscheck=capture,
                    window_generation=self._window_generation,
                )
            except RecoveryFailure as failure:
                self.stats.recovery.failures += 1
                self.stats.recovery.note_failure(
                    failure.phase or "unknown", failure.phase_seconds
                )
                events.emit(
                    "recovery.failed",
                    corr_id=detected.seq,
                    phase=failure.phase or "unknown",
                )
                phases = {
                    name: float(seconds)
                    for name, seconds in failure.phase_seconds.items()
                }
                phases["total"] = sum(phases.values())
                self.forensics.add(build_bundle(
                    outcome="failure",
                    trigger=detected.as_dict(),
                    window=window,
                    flight=frozen.as_dict() if frozen is not None else None,
                    phases=phases,
                    replay=None,
                    crosschecks=capture.as_dict(),
                    events=[e.as_dict() for e in events.since(event_mark)],
                    nesting=depth,
                    failure={
                        "phase": failure.phase or "unknown",
                        "message": str(failure),
                    },
                ))
                raise
            finally:
                self._in_recovery = False

            self.base = outcome.fs
            self._wire_base()
            for callback in self.on_reboot:
                callback(self.base)
            if outcome.window_durable:
                # The crashing commit already sealed the whole window on
                # disk (replay skipped it); acknowledge the durability
                # point now, exactly as the missed commit callback would
                # have — otherwise the stale entries replay (and
                # double-apply) at the next recovery.  The in-flight
                # result recorded below lands in the fresh window.
                self.oplog.truncate(self.base.fd_table.snapshot())
                self._window_generation = self.base.sb.write_generation
            # The failed base is gone; subsequent flight stat deltas are
            # relative to the rebooted base's counters.
            self.flight.rebaseline()
            replayed = outcome.report.constrained_ops + outcome.report.autonomous_ops
            self.stats.recovery.successes += 1
            self.stats.recovery.ops_replayed += replayed
            self.stats.recovery.note(
                outcome.reboot_seconds, outcome.replay_seconds, outcome.handoff_seconds
            )
            self.stats.recoveries += 1
            self.stats.events.append(
                RAEEvent(
                    seq=detected.seq,
                    detected=detected.describe(),
                    replayed_ops=replayed,
                    total_seconds=outcome.total_seconds,
                    discrepancies=len(outcome.report.discrepancies),
                )
            )
            events.emit(
                "recovery.succeeded",
                corr_id=detected.seq,
                replayed=replayed,
                seconds=outcome.total_seconds,
            )
            # Bundle the §3.2 procedure now, before the post-commit: a
            # commit failure is its own detection and its own bundle.
            self.forensics.add(build_bundle(
                outcome="success",
                trigger=detected.as_dict(),
                window=window,
                flight=frozen.as_dict() if frozen is not None else None,
                phases={
                    "reboot": outcome.reboot_seconds,
                    "replay": outcome.replay_seconds,
                    "handoff": outcome.handoff_seconds,
                    "total": outcome.total_seconds,
                },
                replay={
                    "mode": "in-process" if self.config.shadow_in_process else "process",
                    "window_durable": outcome.window_durable,
                    "constrained_ops": outcome.report.constrained_ops,
                    "autonomous_ops": outcome.report.autonomous_ops,
                    "skipped_errors": outcome.report.skipped_errors,
                    "skipped_fsyncs": outcome.report.skipped_fsyncs,
                    "checks_run": outcome.report.checks_run,
                    "discrepancies": [str(d) for d in outcome.report.discrepancies],
                },
                crosschecks=capture.as_dict(),
                events=[e.as_dict() for e in events.since(event_mark)],
                nesting=depth,
            ))

            result = outcome.update.inflight_result
            delegated_fsync = result is not None and result.value == "fsync-delegated"
            if (
                inflight is not None
                and result is not None
                and result.errno is None
                and not delegated_fsync
            ):
                # The in-flight op is now a completed op of the replayable
                # window.  Record it BEFORE any commit attempt: if that commit
                # itself fails and triggers a nested recovery, the op's effects
                # must be reconstructible from the log.
                self.oplog.record(inflight[0], inflight[1], result)

            if self.config.commit_after_recovery or delegated_fsync:
                # Persist the recovered state (this truncates the op log via
                # the on_commit callback) and perform any delegated fsync.
                with tracer.span("recovery.post-commit"):
                    try:
                        self.base.commit()
                    except Exception as exc:  # raelint: disable=ERRNO-DISCIPLINE — detector boundary: must see UNEXPECTED faults (§2.1)
                        nested = self.detector.classify(exc, op_name="post-recovery-commit")
                        if depth >= 2 or not self.detector.should_recover(nested):
                            raise RecoveryFailure(
                                f"post-recovery commit failed: {exc}", phase="post-commit"
                            ) from exc
                        self._recover(nested, inflight=None, depth=depth + 1)

            if result is None or delegated_fsync:
                return OpResult()
            return result

    # ==================================================================
    # FilesystemAPI — thin recording wrappers

    def mkdir(self, path: str, perms: int = 0o755, opseq: int = 0) -> None:
        return self._call("mkdir", path=path, perms=perms)

    def rmdir(self, path: str, opseq: int = 0) -> None:
        return self._call("rmdir", path=path)

    def unlink(self, path: str, opseq: int = 0) -> None:
        return self._call("unlink", path=path)

    def rename(self, src: str, dst: str, opseq: int = 0) -> None:
        return self._call("rename", src=src, dst=dst)

    def link(self, existing: str, new: str, opseq: int = 0) -> None:
        return self._call("link", existing=existing, new=new)

    def symlink(self, target: str, path: str, opseq: int = 0) -> None:
        return self._call("symlink", target=target, path=path)

    def readlink(self, path: str) -> str:
        return self._call("readlink", path=path)

    def readdir(self, path: str) -> list[str]:
        return self._call("readdir", path=path)

    def stat(self, path: str) -> StatResult:
        return self._call("stat", path=path)

    def lstat(self, path: str) -> StatResult:
        return self._call("lstat", path=path)

    def truncate(self, path: str, size: int, opseq: int = 0) -> None:
        return self._call("truncate", path=path, size=size)

    def open(self, path: str, flags: OpenFlags = OpenFlags.NONE, perms: int = 0o644, opseq: int = 0) -> int:
        return self._call("open", path=path, flags=int(flags), perms=perms)

    def close(self, fd: int, opseq: int = 0) -> None:
        return self._call("close", fd=fd)

    def read(self, fd: int, length: int, opseq: int = 0) -> bytes:
        return self._call("read", fd=fd, length=length)

    def write(self, fd: int, data: bytes, opseq: int = 0) -> int:
        return self._call("write", fd=fd, data=data)

    def lseek(self, fd: int, offset: int, whence: int = 0, opseq: int = 0) -> int:
        return self._call("lseek", fd=fd, offset=offset, whence=whence)

    def fsync(self, fd: int, opseq: int = 0) -> None:
        return self._call("fsync", fd=fd)

    def fstat_ino(self, fd: int) -> int:
        return self.base.fstat_ino(fd)

    # ------------------------------------------------------------------

    def report(self) -> str:
        """Human-readable supervisor summary (examples and operators)."""
        lines = [
            f"RAE supervisor: {self.stats.ops} operations, "
            f"{self.stats.recoveries} recoveries "
            f"({self.stats.recovery.failures} failed), "
            f"{len(self.oplog)} ops in the current window",
        ]
        for event in self.stats.events:
            lines.append(
                f"  - {event.detected}: replayed {event.replayed_ops} ops in "
                f"{event.total_seconds * 1000:.1f} ms"
                + (f", {event.discrepancies} discrepancies" if event.discrepancies else "")
            )
        lines.append(
            f"  history: keeping {len(self.stats.events)}/"
            f"{self.stats.events.maxlen} recovery events, "
            f"{len(self.detector.history)}/{self.detector.history_limit} detections "
            f"(cumulative counts are unbounded)"
        )
        if self.forensics.built:
            lines.append(
                f"  forensic bundles: {self.forensics.built} built, "
                f"keeping {len(self.forensics.bundles)}/{self.forensics.limit} "
                f"(see rae-report bundle)"
            )
        if self.stats.recovery.failure_phases:
            lines.append(
                "  failed recoveries by phase: "
                + ", ".join(sorted(set(self.stats.recovery.failure_phases)))
            )
        detections = self.detector.stats.detections
        if detections:
            by_kind = ", ".join(f"{kind}={count}" for kind, count in sorted(detections.items()))
            lines.append(f"  detections by kind: {by_kind}")
        return "\n".join(lines)
