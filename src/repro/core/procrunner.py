"""Run the shadow in a separate OS process.

§3.2: "The shadow filesystem is launched as a separate userspace process
to ensure the strong isolation of faults and a clean interface between
the base and shadow."  In-process execution (the default in this
reproduction, for determinism and speed) shares a Python heap with the
base; this module provides the paper-faithful alternative: the shadow
runs in a child process that opens the image file read-only itself, and
only plain-data messages cross the pipe.

Requirements: the device must be a :class:`FileBlockDevice` (the child
needs a path), and the base must have **flushed the replayed journal
state** before the child starts (contained reboot guarantees this).
A crash of the child — any exception, or the process dying outright —
is reported as :class:`RecoveryFailure` without harming the parent,
which is precisely the isolation the paper wants.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

from repro.api import FsOp
from repro.basefs.vfs import FdState
from repro.blockdev.device import FileBlockDevice
from repro.core.oplog import OpRecord
from repro.errors import RECOVERY_BOUNDARY_ERRORS, RecoveryFailure
from repro.ondisk.layout import BLOCK_SIZE
from repro.ondisk.superblock import Superblock
from repro.shadowfs.checks import CheckLevel
from repro.shadowfs.filesystem import ShadowFilesystem
from repro.shadowfs.output import MetadataUpdate
from repro.shadowfs.replay import ReplayEngine, ReplayReport


def open_image_readonly(path: str) -> FileBlockDevice:
    """Open an image file read-only, sizing the device from its
    superblock."""
    with open(path, "rb") as f:
        sb = Superblock.unpack(f.read(BLOCK_SIZE), verify=False)
    return FileBlockDevice(path, block_size=BLOCK_SIZE, block_count=sb.block_count, readonly=True)


@dataclass
class _ShadowJob:
    image_path: str
    records: list[OpRecord]
    fd_snapshot: dict[int, FdState]
    inflight: tuple[int, FsOp] | None
    check_level: CheckLevel
    strict: bool
    shared_pages: dict[tuple[int, int], bytes]


def _shadow_child(job: _ShadowJob, pipe) -> None:
    """Child entry point: mount, replay, ship the result back."""
    try:
        device = open_image_readonly(job.image_path)
        shadow = ShadowFilesystem(device, check_level=job.check_level, shared_pages=job.shared_pages)
        engine = ReplayEngine(shadow, strict=job.strict)
        update = engine.run(job.records, job.fd_snapshot, job.inflight)
        pipe.send(("ok", update, engine.report))
    except RECOVERY_BOUNDARY_ERRORS as exc:
        # Catalog and decode failures cross the pipe as data; anything
        # else (ShadowWriteAttempt, a reproduction bug) kills the child,
        # which the parent reports as RecoveryFailure via the EOF path.
        pipe.send(("error", f"{type(exc).__name__}: {exc}", None))
    finally:
        pipe.close()


def run_shadow_process(
    image_path: str,
    records: list[OpRecord],
    fd_snapshot: dict[int, FdState],
    inflight: tuple[int, FsOp] | None,
    check_level: CheckLevel = CheckLevel.FULL,
    strict: bool = True,
    shared_pages: dict[tuple[int, int], bytes] | None = None,
    timeout_s: float = 60.0,
) -> tuple[MetadataUpdate, ReplayReport]:
    """Execute recovery replay in a child process; returns its output."""
    if not os.path.exists(image_path):
        raise RecoveryFailure(f"image path {image_path!r} does not exist", phase="shadow-process")
    job = _ShadowJob(
        image_path=image_path,
        records=records,
        fd_snapshot=fd_snapshot,
        inflight=inflight,
        check_level=check_level,
        strict=strict,
        shared_pages=shared_pages or {},
    )
    parent_pipe, child_pipe = multiprocessing.Pipe(duplex=False)
    process = multiprocessing.Process(target=_shadow_child, args=(job, child_pipe), daemon=True)
    process.start()
    child_pipe.close()
    try:
        if not parent_pipe.poll(timeout_s):
            raise RecoveryFailure("shadow process timed out", phase="shadow-process")
        status, payload, report = parent_pipe.recv()
    except EOFError as exc:
        raise RecoveryFailure("shadow process died without a result", phase="shadow-process") from exc
    finally:
        process.join(timeout=5.0)
        if process.is_alive():
            process.terminate()
        parent_pipe.close()
    if status != "ok":
        raise RecoveryFailure(f"shadow process failed: {payload}", phase="shadow-process")
    return payload, report
